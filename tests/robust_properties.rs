//! Property tests of the continuous BNT machinery: the minimum-norm-point
//! solver and the robust-descent loop invariants.

use cliffguard::prelude::*;
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 2..4), 1..6)
        .prop_filter("same dim", |pts| {
            pts.iter().all(|p| p.len() == pts[0].len())
        })
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mnp_no_larger_than_any_vertex(pts in arb_points()) {
        let z = cliffguard::robust::min_norm_point(&pts, 1e-12);
        let min_vertex = pts.iter().map(|p| norm(p)).fold(f64::INFINITY, f64::min);
        prop_assert!(norm(&z) <= min_vertex + 1e-6);
    }

    #[test]
    fn mnp_is_hull_member_like(pts in arb_points()) {
        // The MNP must not be "better than possible": its dot with every
        // point is at least its squared norm minus tolerance (optimality
        // condition of projection onto a convex set).
        let z = cliffguard::robust::min_norm_point(&pts, 1e-12);
        let zz: f64 = z.iter().map(|x| x * x).sum();
        for p in &pts {
            let dot: f64 = z.iter().zip(p).map(|(a, b)| a * b).sum();
            prop_assert!(dot >= zz - 1e-5, "point {:?} violates optimality vs {:?}", p, z);
        }
    }

    #[test]
    fn descent_direction_is_unit_and_separating(pts in arb_points()) {
        if let Some(d) = descent_direction(&pts, 1e-7) {
            prop_assert!((norm(&d) - 1.0).abs() < 1e-6);
            // d strictly separates the origin from the hull: d·p < 0 ∀p.
            for p in &pts {
                let dot: f64 = d.iter().zip(p).map(|(a, b)| a * b).sum();
                prop_assert!(dot < 1e-6, "direction {:?} does not move away from {:?}", d, p);
            }
        }
    }

    #[test]
    fn bnt_never_returns_worse_worst_case(cx in -2.0f64..2.0, cy in -2.0f64..2.0, x0 in -3.0f64..3.0, y0 in -3.0f64..3.0) {
        let f = testfns::bowl(vec![cx, cy]);
        let opt = BntOptimizer::new(0.4);
        let g_start = opt.finder.worst_case_cost(&f, &[x0, y0]);
        let r = opt.minimize(&f, &[x0, y0]);
        prop_assert!(r.worst_case <= g_start + 1e-6);
        prop_assert!(r.worst_case >= r.nominal - 1e-6);
    }
}

#[test]
fn worst_case_cost_upper_bounds_nominal_on_benchmark() {
    let f = testfns::bnt_polynomial();
    let finder = cliffguard::robust::WorstNeighborFinder::new(0.5);
    for p in [[2.8, 4.0], [0.0, 0.0], [2.2, 3.0]] {
        assert!(finder.worst_case_cost(&f, &p) >= f.eval(&p) - 1e-9);
    }
}
