//! Integration tests of the streaming ingest path: `LogStream` totality
//! and chunk-boundary obliviousness, and end-to-end replay determinism
//! of the online drift advisor over a scripted [`LogTape`].
//!
//! The contract under test (DESIGN.md §15): the audit stream — window
//! indices, δ/Γ bit patterns, trigger decisions — is a pure function of
//! the log bytes. Chunk sizes, split offsets, and worker thread counts
//! must all be unobservable.

use cliffguard::prelude::*;
use cliffguard::workload::{LogStream, SimpleResolver};
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny two-table resolver for the byte-soup tests.
fn soup_resolver() -> SimpleResolver {
    let mut r = SimpleResolver::new();
    r.add_table("t0", &["c0", "c1", "c2"]);
    r.add_table("t1", &["c0", "c1"]);
    r
}

/// Runs `bytes` through a fresh [`LogStream`] split at the given cut
/// points, returning every arrival `(ts, query id)` plus the final
/// stats. Two runs over the same bytes must return identical values no
/// matter how the cuts fall.
fn run_stream(bytes: &[u8], cuts: &[usize], resolver: &SimpleResolver) -> (Vec<(u64, u32)>, u64) {
    let mut stream = LogStream::new();
    let mut arrivals: Vec<(u64, u32)> = Vec::new();
    {
        let mut sink = |ts: u64, id: QueryId, _q: &Arc<Query>| arrivals.push((ts, id.0));
        let mut prev = 0usize;
        for &cut in cuts {
            stream.feed(&bytes[prev..cut], resolver, &mut sink);
            prev = cut;
        }
        stream.feed(&bytes[prev..], resolver, &mut sink);
        stream.finish(resolver, &mut sink);
    }
    (arrivals, stream.stats().total())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Totality: arbitrary byte soup — including invalid UTF-8, NULs,
    /// and enormous "lines" — never panics the stream, and the parse is
    /// identical whether the soup arrives whole or split anywhere.
    #[test]
    fn byte_soup_never_panics_and_splits_are_unobservable(
        raw in proptest::collection::vec(0u16..256, 0..2048),
        cut_seed in 0u64..u64::MAX,
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let resolver = soup_resolver();
        let whole = run_stream(&bytes, &[], &resolver);
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        let split = run_stream(&bytes, &[cut], &resolver);
        prop_assert_eq!(whole, split);
    }

    /// SQL-shaped soup: interleave plausible log lines with garbage so
    /// the parser's accept path is exercised too, split at two points.
    #[test]
    fn sql_flavoured_soup_parses_identically_under_splits(
        picks in proptest::collection::vec(0usize..6, 0..24),
        garbage in "[ -~]{0,40}",
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
    ) {
        let parts: Vec<&str> = picks
            .iter()
            .map(|&i| match i {
                0 => "17\tSELECT c0 FROM t0 WHERE c1 = 3",
                1 => "18\tselect c0, c1 from t1 order by c1",
                2 => "19\tSELECT c2 FROM t0 GROUP BY c2",
                3 => "not a log line at all",
                4 => "20\tDELETE FROM t0",
                _ => garbage.as_str(),
            })
            .collect();
        let bytes = parts.join("\n").into_bytes();
        let resolver = soup_resolver();
        let mut cuts = [
            (a as usize) % (bytes.len() + 1),
            (b as usize) % (bytes.len() + 1),
        ];
        cuts.sort_unstable();
        let whole = run_stream(&bytes, &[], &resolver);
        let split = run_stream(&bytes, &cuts, &resolver);
        prop_assert_eq!(whole, split);
    }
}

/// Exhaustive split coverage: a real drift tape cut at *every* byte
/// offset parses identically to the whole file.
#[test]
fn every_split_offset_matches_whole_file_parsing() {
    let tape = LogTape::generate(LogTapeConfig {
        tables: 2,
        cols_per_table: 4,
        windows: 4,
        window_len: 12,
        statements_per_regime: 3,
        episodes: vec![2],
        ..LogTapeConfig::default()
    });
    let bytes = tape.text().as_bytes();
    let resolver = tape.resolver();
    let whole = run_stream(bytes, &[], resolver);
    assert!(whole.0.len() >= 48, "the tape must actually parse");
    for cut in 0..=bytes.len() {
        let split = run_stream(bytes, &[cut], resolver);
        assert_eq!(whole, split, "split at byte {cut} diverged");
    }
}

/// The full pipeline — stream into the online advisor — over one tape,
/// fed in `chunk` byte chunks. Returns the rendered audit lines (δ and
/// Γ as IEEE-754 bit patterns, so string equality is bit equality).
fn audit_lines(tape: &LogTape, chunk: usize) -> Vec<String> {
    let mut config = OnlineAdvisorConfig::new(tape.n_columns());
    config.window = WindowPolicy::Count(tape.config().window_len);
    config.gamma = GammaPolicy::Fixed(tape.suggested_gamma());
    let mut advisor = OnlineAdvisor::new(config, SessionClock::virtual_clock());
    let mut stream = LogStream::new();
    let mut lines: Vec<String> = Vec::new();
    {
        let advisor = &mut advisor;
        let lines = &mut lines;
        let mut sink = |ts: u64, _id: QueryId, q: &Arc<Query>| {
            lines.extend(advisor.observe(ts, q).iter().map(|a| a.line()));
        };
        for piece in tape.text().as_bytes().chunks(chunk.max(1)) {
            stream.feed(piece, tape.resolver(), &mut sink);
        }
        stream.finish(tape.resolver(), &mut sink);
    }
    lines.extend(advisor.finish().iter().map(|a| a.line()));
    let episodes: Vec<u64> = tape.episodes().iter().map(|&e| e as u64).collect();
    assert_eq!(
        advisor.triggers(),
        episodes,
        "triggers must fire exactly at the scripted drift episodes"
    );
    lines
}

/// Replay determinism: the default drift tape yields a byte-identical
/// audit stream at 1 B, 4 KiB, and 1 MiB chunks, and at 1 vs 8 worker
/// threads — and the triggers land exactly on the scripted episodes
/// (asserted inside [`audit_lines`]), with zero false positives.
#[test]
fn audit_stream_is_byte_identical_across_chunk_sizes_and_threads() {
    let tape = LogTape::generate(LogTapeConfig::default());
    let saved = current_threads();
    set_threads(1);
    let baseline = audit_lines(&tape, 1 << 20);
    assert_eq!(
        baseline.len(),
        tape.config().windows,
        "every scripted window must close"
    );
    for chunk in [1usize, 4096] {
        assert_eq!(
            audit_lines(&tape, chunk),
            baseline,
            "chunk size {chunk} diverged"
        );
    }
    set_threads(8);
    assert_eq!(
        audit_lines(&tape, 4096),
        baseline,
        "8 worker threads diverged from 1"
    );
    set_threads(saved);
}

/// Different seeds script different tapes (the harness is not constant),
/// but each seed's audit stream is stable across reruns.
#[test]
fn seeds_vary_the_tape_but_reruns_are_stable() {
    let a = LogTape::generate(LogTapeConfig {
        seed: 3,
        ..LogTapeConfig::default()
    });
    let b = LogTape::generate(LogTapeConfig {
        seed: 4,
        ..LogTapeConfig::default()
    });
    assert_ne!(a.text(), b.text(), "seeds must script different tapes");
    assert_eq!(audit_lines(&a, 512), audit_lines(&a, 512));
    assert_eq!(audit_lines(&b, 512), audit_lines(&b, 512));
}
