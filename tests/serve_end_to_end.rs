//! End-to-end tests of the `cliffguard serve` daemon.
//!
//! All runs go through the deterministic [`ServeHarness`]: virtual
//! clocks, scripted request tapes, in-memory I/O. The assertions are the
//! daemon's core promises — daemon output equals one-shot pipeline
//! output bit-for-bit, output is byte-identical across worker counts and
//! reruns, killed sessions resume bit-identically from the state
//! directory, and every request terminates in a response under every
//! fault plan.

use cliffguard_serve::harness::{design_line, design_reports, parse_output, ServeHarness};
use cliffguard_serve::{run_design, testdata, RunOutcome, RunnerOptions};
use serde::{map_get, Value};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

/// The CI fault matrix: the same three plans the `fault-matrix` job
/// exports as `CLIFFGUARD_FAULTS` (keep in sync with
/// `.github/workflows/ci.yml` and `tests/resilience.rs`).
const FAULT_SPECS: [&str; 3] = [
    "seed=101,rate=0.3",
    "seed=202,rate=0.6,stall-ms=20",
    "fail@1,stall@2:40,overbudget@3,empty@4,stale@5",
];

const TENANT_SEEDS: [(&str, u64); 4] = [("acme", 11), ("bravo", 22), ("corp", 33), ("delta", 44)];

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cliffguard-serve-e2e-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tenant_tape() -> Vec<String> {
    let mut tape: Vec<String> = TENANT_SEEDS
        .iter()
        .map(|(tenant, seed)| design_line(&testdata::design_request(tenant, *seed)))
        .collect();
    tape.push(r#"{"op":"drain"}"#.into());
    tape
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    map_get(v.as_map().expect("response is an object"), key)
}

fn str_field(v: &Value, key: &str) -> String {
    match field(v, key) {
        Value::Str(s) => s.clone(),
        other => panic!("field {key}: expected string, got {other:?}"),
    }
}

fn u64_field(v: &Value, key: &str) -> u64 {
    match field(v, key) {
        Value::U64(n) => *n,
        other => panic!("field {key}: expected u64, got {other:?}"),
    }
}

#[test]
fn concurrent_tenants_match_one_shot_pipeline_at_1_and_8_workers() {
    // Ground truth: each tenant's request run one-shot, no daemon.
    let oneshot_opts = RunnerOptions {
        virtual_time: true,
        ..RunnerOptions::default()
    };
    let expected: Vec<u64> = TENANT_SEEDS
        .iter()
        .map(|(tenant, seed)| {
            let req = testdata::design_request(tenant, *seed);
            match run_design(&req, &oneshot_opts, None, &mut |_| {}) {
                RunOutcome::Done(report) => report.fingerprint,
                other => panic!("one-shot run for {tenant} did not finish: {other:?}"),
            }
        })
        .collect();

    let tape = tenant_tape();
    let out1 = ServeHarness::new().with_max_concurrent(1).run_tape(&tape);
    let out8 = ServeHarness::new().with_max_concurrent(8).run_tape(&tape);
    assert_eq!(
        out1, out8,
        "worker count must be unobservable in the output stream"
    );

    let responses = parse_output(&out1);
    assert_eq!(responses.len(), TENANT_SEEDS.len() + 1, "{out1}");
    for (i, (tenant, _)) in TENANT_SEEDS.iter().enumerate() {
        let resp = &responses[i];
        assert_eq!(str_field(resp, "status"), "done", "tenant {tenant}");
        assert_eq!(str_field(resp, "tenant"), *tenant);
        assert_eq!(u64_field(resp, "seq"), i as u64 + 1, "admission order");
        let report = field(resp, "report");
        assert_eq!(
            u64_field(report, "fingerprint"),
            expected[i],
            "daemon design for {tenant} must be bit-identical to the one-shot pipeline"
        );
        assert!(u64_field(report, "structures") > 0);
    }
    assert_eq!(
        u64_field(&responses[TENANT_SEEDS.len()], "completed"),
        TENANT_SEEDS.len() as u64
    );

    // And the whole stream is reproducible.
    assert_eq!(
        out1,
        ServeHarness::new().with_max_concurrent(1).run_tape(&tape)
    );
}

#[test]
fn killed_daemon_resumes_bit_identically_from_state_dir() {
    let tape = tenant_tape();

    // Reference: an uninterrupted daemon on its own state directory.
    let clean_dir = tmpdir("clean");
    let clean_out = ServeHarness::new()
        .with_state_dir(&clean_dir)
        .run_tape(&tape);
    let clean_reports = design_reports(&clean_out);
    assert_eq!(clean_reports.len(), TENANT_SEEDS.len(), "{clean_out}");

    // Kill: every session aborts before iteration 1, checkpoints persist,
    // no design responses are emitted.
    let kill_dir = tmpdir("killed");
    let killed_out = ServeHarness::new()
        .with_state_dir(&kill_dir)
        .with_kill_after(1)
        .run_tape(&tape);
    assert!(
        design_reports(&killed_out).is_empty(),
        "killed sessions must not answer: {killed_out}"
    );

    // Restart on the same directory: pending sessions are re-admitted in
    // original order and complete before the new drain frame answers.
    let restart_out = ServeHarness::new()
        .with_state_dir(&kill_dir)
        .run_tape(&[r#"{"op":"drain"}"#.into()]);
    let responses = parse_output(&restart_out);
    assert_eq!(responses.len(), TENANT_SEEDS.len() + 1, "{restart_out}");
    for (i, (tenant, _)) in TENANT_SEEDS.iter().enumerate() {
        let resp = &responses[i];
        assert_eq!(str_field(resp, "tenant"), *tenant);
        assert_eq!(str_field(resp, "status"), "done");
        assert_eq!(field(resp, "resumed"), &Value::Bool(true));
        assert_eq!(
            u64_field(resp, "seq"),
            i as u64 + 1,
            "resumed sessions keep their original sequence numbers"
        );
    }

    // The audit trail — final design, worst-case trace, call counts, DDL —
    // is byte-identical to the uninterrupted run's.
    assert_eq!(design_reports(&restart_out), clean_reports);

    // A second restart finds nothing pending: results were persisted.
    let idle_out = ServeHarness::new()
        .with_state_dir(&kill_dir)
        .run_tape(&[r#"{"op":"drain"}"#.into()]);
    assert!(
        design_reports(&idle_out).is_empty(),
        "completed sessions must not re-run: {idle_out}"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

#[test]
fn every_fault_plan_terminates_every_request() {
    for spec in FAULT_SPECS {
        let mut tape: Vec<String> = TENANT_SEEDS[..2]
            .iter()
            .map(|(tenant, seed)| design_line(&testdata::design_request(tenant, *seed)))
            .collect();
        tape.push("definitely not json".into());
        tape.push(r#"{"op":"drain"}"#.into());
        let harness = ServeHarness::new().with_faults(spec);
        let out = harness.run_tape(&tape);
        let responses = parse_output(&out);
        // One response per frame: garbage gets `error`, every design
        // request terminates — no panics, no silent drops.
        assert_eq!(responses.len(), tape.len(), "plan `{spec}`: {out}");
        let mut design_count = 0;
        for resp in &responses {
            match str_field(resp, "op").as_str() {
                "design" => {
                    design_count += 1;
                    let status = str_field(resp, "status");
                    assert!(
                        ["done", "degraded", "rejected"].contains(&status.as_str()),
                        "plan `{spec}`: unexpected terminal status {status}"
                    );
                }
                "error" | "drain" => {}
                other => panic!("plan `{spec}`: unexpected op {other}"),
            }
        }
        assert_eq!(design_count, 2, "plan `{spec}`: {out}");
        // Faulty runs are still deterministic.
        assert_eq!(out, harness.run_tape(&tape), "plan `{spec}`");
    }
}

#[test]
fn per_request_fault_spec_shows_up_in_the_audit() {
    let (tenant, seed) = TENANT_SEEDS[0];
    let mut req = testdata::design_request(tenant, seed);
    req.faults = Some("fail@1,fail@2".into());
    let out = ServeHarness::new().run_tape(&[design_line(&req), r#"{"op":"drain"}"#.into()]);
    let responses = parse_output(&out);
    let report = field(&responses[0], "report");
    assert_eq!(u64_field(report, "faults"), 2, "{out}");
    assert_eq!(u64_field(report, "retries"), 2, "{out}");
    // Retries absorb the faults: same design as a clean run.
    let clean = testdata::design_request(tenant, seed);
    let RunOutcome::Done(clean_report) = run_design(
        &clean,
        &RunnerOptions {
            virtual_time: true,
            ..RunnerOptions::default()
        },
        None,
        &mut |_| {},
    ) else {
        panic!("clean run must finish");
    };
    assert_eq!(u64_field(report, "fingerprint"), clean_report.fingerprint);
}

#[test]
fn dropped_tcp_client_does_not_kill_the_daemon() {
    use cliffguard_serve::{Daemon, ServeConfig};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut daemon = Daemon::new(ServeConfig {
            virtual_time: true,
            ..ServeConfig::default()
        })
        .expect("daemon builds");
        daemon
            .serve_tcp(listener)
            .expect("a dropped client must not end the daemon");
    });

    // First client admits a session and vanishes without ever reading —
    // the daemon hits end-of-input (or a broken pipe at the final drain
    // barrier) with a response it cannot deliver, absorbs it, and keeps
    // accepting.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone stream");
        let (tenant, seed) = TENANT_SEEDS[1];
        writeln!(
            writer,
            "{}",
            design_line(&testdata::design_request(tenant, seed))
        )
        .unwrap();
        writer.flush().unwrap();
    }

    // Second client gets a full request/response cycle.
    let stream = TcpStream::connect(addr).expect("reconnect after a dropped client");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let (tenant, seed) = TENANT_SEEDS[2];
    writeln!(
        writer,
        "{}",
        design_line(&testdata::design_request(tenant, seed))
    )
    .unwrap();
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    writer.flush().unwrap();
    let mut design_resp = String::new();
    reader.read_line(&mut design_resp).unwrap();
    assert!(design_resp.contains(r#""status":"done""#), "{design_resp}");
    assert!(design_resp.contains(&format!(r#""tenant":"{tenant}""#)));
    let mut shutdown_resp = String::new();
    reader.read_line(&mut shutdown_resp).unwrap();
    assert!(
        shutdown_resp.contains(r#""op":"shutdown""#),
        "{shutdown_resp}"
    );
    server.join().expect("server thread exits after shutdown");
}

#[test]
fn tcp_scrape_connections_get_an_immediate_snapshot_and_a_clean_close() {
    use cliffguard_serve::{Daemon, ServeConfig};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut daemon = Daemon::new(ServeConfig {
            virtual_time: true,
            ..ServeConfig::default()
        })
        .expect("daemon builds");
        daemon.serve_tcp(listener).expect("serve_tcp runs");
    });

    // A monitoring client sends a bare status/metrics frame and — unlike
    // a protocol client — never half-closes its write side. The daemon
    // must answer from the live snapshot and close the connection itself;
    // without the scrape fast path this client would wedge the daemon.
    for op in ["status", "metrics"] {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        writeln!(writer, r#"{{"op":"{op}"}}"#).unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("scrape answered");
        assert!(resp.contains(&format!(r#""op":"{op}""#)), "{resp}");
        let mut rest = String::new();
        let n = reader
            .read_line(&mut rest)
            .expect("read until server close");
        assert_eq!(n, 0, "server must close the scrape connection: {rest}");
    }

    // The daemon is still fully functional for protocol clients.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let (tenant, seed) = TENANT_SEEDS[0];
    writeln!(
        writer,
        "{}",
        design_line(&testdata::design_request(tenant, seed))
    )
    .unwrap();
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    writer.flush().unwrap();
    let mut design_resp = String::new();
    reader.read_line(&mut design_resp).unwrap();
    assert!(design_resp.contains(r#""status":"done""#), "{design_resp}");
    server.join().expect("server thread exits after shutdown");
}

#[test]
fn tcp_listener_serves_the_same_protocol() {
    use cliffguard_serve::{Daemon, ServeConfig};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut daemon = Daemon::new(ServeConfig {
            virtual_time: true,
            ..ServeConfig::default()
        })
        .expect("daemon builds");
        daemon.serve_tcp(listener).expect("serve_tcp runs");
    });

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let (tenant, seed) = TENANT_SEEDS[0];
    writeln!(
        writer,
        "{}",
        design_line(&testdata::design_request(tenant, seed))
    )
    .unwrap();
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    writer.flush().unwrap();

    let mut design_resp = String::new();
    reader.read_line(&mut design_resp).unwrap();
    assert!(design_resp.contains(r#""status":"done""#), "{design_resp}");
    assert!(design_resp.contains(&format!(r#""tenant":"{tenant}""#)));
    let mut shutdown_resp = String::new();
    reader.read_line(&mut shutdown_resp).unwrap();
    assert!(
        shutdown_resp.contains(r#""op":"shutdown""#),
        "{shutdown_resp}"
    );
    server.join().expect("server thread exits after shutdown");
}

// ------------------------------------------------------- streaming ingest --

use cliffguard_serve::harness::ingest_line;
use cliffguard_serve::{GammaSpec, IngestRequest};
use cliffguard_workload::{LogTape, LogTapeConfig};

/// Renders `tape` as `n_frames` ingest protocol lines for `tenant`,
/// cutting the text at deliberately awkward offsets (mid-line). The
/// first frame carries the catalog and the window/Γ knobs; the last
/// carries `eof`.
fn ingest_frames(tenant: &str, catalog: &Value, tape: &LogTape, n_frames: usize) -> Vec<String> {
    let text = tape.text();
    let step = text.len() / n_frames;
    let mut cuts: Vec<usize> = (1..n_frames)
        .map(|i| (i * step + 3).min(text.len()))
        .collect();
    cuts.push(text.len());
    let mut frames = Vec::new();
    let mut prev = 0usize;
    for (i, &cut) in cuts.iter().enumerate() {
        let chunk = &text[prev..cut];
        let mut req = if i == 0 {
            let mut r = IngestRequest::new(tenant, catalog.clone(), chunk);
            r.window = Some(tape.config().window_len as u64);
            r.gamma = GammaSpec::Fixed(tape.suggested_gamma());
            r
        } else {
            IngestRequest::chunk_only(tenant, chunk)
        };
        req.eof = i == cuts.len() - 1;
        frames.push(ingest_line(&req));
        prev = cut;
    }
    frames
}

/// Concatenates the `audits` arrays of every ingest response, in order.
fn ingest_audits(out: &str) -> Vec<String> {
    parse_output(out)
        .iter()
        .filter(|v| str_field(v, "op") == "ingest")
        .flat_map(|v| match field(v, "audits") {
            Value::Seq(items) => items
                .iter()
                .map(|a| match a {
                    Value::Str(s) => s.clone(),
                    other => panic!("audit line: expected string, got {other:?}"),
                })
                .collect::<Vec<_>>(),
            other => panic!("audits: expected array, got {other:?}"),
        })
        .collect()
}

#[test]
fn ingest_frames_close_windows_and_fire_exactly_on_the_scripted_episodes() {
    let (catalog, tape) = testdata::ingest_fixture(LogTapeConfig::default());
    let episodes: Vec<u64> = tape.episodes().iter().map(|&e| e as u64).collect();

    let harness = ServeHarness::new();
    let coarse = harness.run_tape(&ingest_frames("acme", &catalog, &tape, 3));
    let audits = ingest_audits(&coarse);
    assert_eq!(
        audits.len(),
        tape.config().windows,
        "every scripted window must close: {coarse}"
    );

    // The last response carries the cumulative trigger history.
    let responses = parse_output(&coarse);
    let last = responses.last().unwrap();
    assert_eq!(field(last, "closed"), &Value::Bool(true));
    let triggers: Vec<u64> = match field(last, "triggers") {
        Value::Seq(items) => items
            .iter()
            .map(|v| match v {
                Value::U64(n) => *n,
                other => panic!("trigger index: {other:?}"),
            })
            .collect(),
        other => panic!("triggers: {other:?}"),
    };
    assert_eq!(triggers, episodes, "zero false triggers: {coarse}");

    // Frame boundaries are unobservable: 17 awkward frames replay the
    // identical audit stream.
    let fine = harness.run_tape(&ingest_frames("acme", &catalog, &tape, 17));
    assert_eq!(ingest_audits(&fine), audits, "frame count must not matter");
}

#[test]
fn killed_daemon_resumes_ingest_with_an_identical_trigger_history() {
    let (catalog, tape) = testdata::ingest_fixture(LogTapeConfig::default());
    let frames = ingest_frames("acme", &catalog, &tape, 6);

    // Ground truth: one daemon sees the whole tape.
    let clean = ServeHarness::new().run_tape(&frames);
    let want = ingest_audits(&clean);
    assert_eq!(want.len(), tape.config().windows);

    // Kill mid-stream: daemon #1 ingests half the frames (no eof) and
    // dies at end of input; the session snapshot is on disk.
    let dir = tmpdir("ingest-resume");
    let first_out = ServeHarness::new()
        .with_state_dir(&dir)
        .run_tape(&frames[..3]);
    let mut got = ingest_audits(&first_out);

    // Daemon #2 on the same state directory: the next chunk-only frame
    // lazily reloads the snapshot and the stream continues byte-exactly.
    let second_out = ServeHarness::new()
        .with_state_dir(&dir)
        .run_tape(&frames[3..]);
    got.extend(ingest_audits(&second_out));
    assert_eq!(
        got, want,
        "kill/resume must replay the audit and trigger history byte-identically"
    );
    let last = parse_output(&second_out);
    let last = last.last().unwrap();
    let episodes: Vec<u64> = tape.episodes().iter().map(|&e| e as u64).collect();
    let triggers: Vec<u64> = match field(last, "triggers") {
        Value::Seq(items) => items
            .iter()
            .map(|v| match v {
                Value::U64(n) => *n,
                other => panic!("trigger index: {other:?}"),
            })
            .collect(),
        other => panic!("triggers: {other:?}"),
    };
    assert_eq!(triggers, episodes);

    // eof tore the snapshot down: a fresh chunk-only frame for the same
    // tenant now needs a catalog again.
    let probe = ServeHarness::new()
        .with_state_dir(&dir)
        .run_tape(&[ingest_line(&IngestRequest::chunk_only(
            "acme",
            "1\tSELECT c0 FROM t0\n",
        ))]);
    let probe_resp = parse_output(&probe);
    assert_eq!(str_field(&probe_resp[0], "op"), "error", "{probe}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_catalog_frame_resets_a_stale_abandoned_session() {
    let (catalog, tape) = testdata::ingest_fixture(LogTapeConfig::default());
    let frames = ingest_frames("acme", &catalog, &tape, 6);
    let want = ingest_audits(&ServeHarness::new().run_tape(&frames));

    // Abandon a session mid-tape (no eof): its snapshot stays on disk.
    let dir = tmpdir("ingest-reset");
    let _ = ServeHarness::new()
        .with_state_dir(&dir)
        .run_tape(&frames[..3]);

    // A client starting over sends a fresh catalog-bearing first frame:
    // the stale snapshot must not shadow it — the whole tape replays
    // from window 0 exactly as on a clean daemon, with the new frame's
    // knobs in effect.
    let out = ServeHarness::new().with_state_dir(&dir).run_tape(&frames);
    assert_eq!(
        ingest_audits(&out),
        want,
        "a catalog frame must discard the abandoned session"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
