//! Property-based tests for the workload distance metrics: the paper's
//! requirements R2 (intra-query similarity), R3 (symmetry), and R4
//! (triangle property), plus sampler guarantees, on randomized workloads.

use cliffguard::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const N_COLS: usize = 24;

/// A random query over up to `N_COLS` columns of table 0.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(0..N_COLS as u32, 1..5),
        proptest::collection::vec((0..N_COLS as u32, 0.001f64..0.9), 0..3),
        proptest::collection::vec(0..N_COLS as u32, 0..3),
    )
        .prop_map(|(sel, filt, group)| {
            let mut b = QueryBuilder::new(TableId(0)).select(&sel);
            for (c, s) in filt {
                b = b.filter(c, PredOp::Eq, s);
            }
            if !group.is_empty() {
                b = b.group_by(&group);
            }
            b.build()
        })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    proptest::collection::vec((arb_query(), 1.0f64..50.0), 1..8).prop_map(Workload::from_queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_symmetric(a in arb_workload(), b in arb_workload()) {
        let d = DeltaEuclidean::new(N_COLS);
        prop_assert!((d.distance(&a, &b) - d.distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn euclidean_identity_and_nonnegative(a in arb_workload(), b in arb_workload()) {
        let d = DeltaEuclidean::new(N_COLS);
        prop_assert_eq!(d.distance(&a, &a), 0.0);
        prop_assert!(d.distance(&a, &b) >= 0.0);
        prop_assert!(d.distance(&a, &b) <= 1.0 + 1e-9);
    }

    #[test]
    fn sqrt_euclidean_triangle(
        a in arb_workload(),
        b in arb_workload(),
        c in arb_workload()
    ) {
        // The paper states δ is triangular (R4). As a quadratic form the
        // raw δ cannot be (δ scales with the square of the mass moved);
        // the metric that provably satisfies the triangle inequality is
        // √δ, and that is what gradient-style reasoning needs. We verify
        // √δ's triangle property on random workloads.
        let d = DeltaEuclidean::new(N_COLS);
        let ab = d.distance(&a, &b).sqrt();
        let bc = d.distance(&b, &c).sqrt();
        let ac = d.distance(&a, &c).sqrt();
        prop_assert!(ac <= ab + bc + 1e-9, "ac {} > ab {} + bc {}", ac, ab, bc);
    }

    #[test]
    fn separate_dominates_union_view(a in arb_workload(), b in arb_workload()) {
        // δ_separate sees every change δ_euclidean sees (clause moves add
        // information): if the union metric says "different", so must the
        // separate one.
        let du = DeltaEuclidean::new(N_COLS);
        let ds = DeltaSeparate::new(N_COLS);
        if du.distance(&a, &b) > 1e-12 {
            prop_assert!(ds.distance(&a, &b) > 0.0);
        }
    }

    #[test]
    fn sampler_respects_gamma(
        w in arb_workload(),
        gamma in 0.0005f64..0.02,
        seed in 0u64..100
    ) {
        let metric = DeltaEuclidean::new(N_COLS);
        // A pool disjoint-ish from the workload: shifted column ids.
        let pool: Vec<Arc<Query>> = (0..12)
            .map(|i| {
                Arc::new(
                    QueryBuilder::new(TableId(0))
                        .select(&[(i * 5) % N_COLS as u32, (i * 7 + 3) % N_COLS as u32])
                        .filter((i * 11 + 1) % N_COLS as u32, PredOp::Eq, 0.01)
                        .build(),
                )
            })
            .collect();
        let mut sampler = NeighborhoodSampler::new(metric, pool, seed);
        for s in sampler.sample_neighborhood(&w, gamma, 5) {
            prop_assert!(metric.distance(&w, &s) <= gamma * 1.001);
        }
    }

    #[test]
    fn latency_metric_interpolates(a in arb_workload(), b in arb_workload()) {
        let base = |q: &Query| 1.0 + q.select.len() as f64;
        let d0 = DeltaLatency::new(N_COLS, 0.0, base);
        let d1 = DeltaLatency::new(N_COLS, 1.0, base);
        let dh = DeltaLatency::new(N_COLS, 0.5, base);
        let lo = d0.distance(&a, &b);
        let hi = d1.distance(&a, &b);
        let mid = dh.distance(&a, &b);
        prop_assert!(mid >= lo.min(hi) - 1e-12 && mid <= lo.max(hi) + 1e-12);
    }
}

#[test]
fn r2_intra_query_similarity_on_clause_sets() {
    // Moving mass to a near-identical query must register a smaller δ than
    // moving it to a disjoint query (requirement R2).
    let d = DeltaEuclidean::new(N_COLS);
    let q = |sel: &[u32]| QueryBuilder::new(TableId(0)).select(sel).build();
    let base = Workload::from_queries([(q(&[1, 2, 3]), 10.0)]);
    let near = Workload::from_queries([(q(&[1, 2, 3]), 5.0), (q(&[1, 2, 4]), 5.0)]);
    let far = Workload::from_queries([(q(&[1, 2, 3]), 5.0), (q(&[10, 11, 12]), 5.0)]);
    assert!(d.distance(&base, &near) < d.distance(&base, &far));
}
