//! The headline claim, end to end: under workload drift, CliffGuard's
//! designs degrade gracefully while the nominal designer's fall off the
//! cliff — and with no drift, CliffGuard costs (almost) nothing.

use cliffguard::prelude::*;

fn run(profile: WorkloadProfile, seed: u64) -> (EvalSummary, EvalSummary, EvalSummary) {
    let mut config = profile.config(seed).scaled(0.3);
    config.n_windows = 6;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let metric = DeltaEuclidean::new(shape.column_count());
    let opts = EvalOptions {
        budget_bytes: 60 << 30,
        designable_factor: 3.0,
    };
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");

    let exist = evaluate_strategy(
        &engine,
        &mut ExistingDesigner::new(&nominal),
        &windows,
        &metric,
        &opts,
    );
    let mut cg = CliffGuardStrategy::new(&nominal, metric, GammaPolicy::KMaxPastDeltas(1.5), 13);
    let robust = evaluate_strategy(&engine, &mut cg, &windows, &metric, &opts);
    let oracle = evaluate_strategy(
        &engine,
        &mut FutureKnowingDesigner::new(&nominal),
        &windows,
        &metric,
        &opts,
    );
    (exist, robust, oracle)
}

#[test]
fn cliffguard_beats_nominal_under_drift() {
    let (exist, robust, oracle) = run(WorkloadProfile::R1, 31);
    assert!(
        robust.mean_avg_ms < exist.mean_avg_ms,
        "avg: robust {:.0} vs nominal {:.0}",
        robust.mean_avg_ms,
        exist.mean_avg_ms
    );
    assert!(
        robust.mean_max_ms < exist.mean_max_ms,
        "max: robust {:.0} vs nominal {:.0}",
        robust.mean_max_ms,
        exist.mean_max_ms
    );
    // And the oracle lower-bounds everything.
    assert!(oracle.mean_avg_ms <= robust.mean_avg_ms * 1.01);
}

#[test]
fn cliffguard_harmless_without_drift() {
    // S1 is near-static: the nominal designer is already fine, and
    // CliffGuard must stay close (paper: "performs no worse than the
    // nominal designer").
    let (exist, robust, _) = run(WorkloadProfile::S1, 32);
    assert!(
        robust.mean_avg_ms <= exist.mean_avg_ms * 1.15,
        "robust {:.0} should track nominal {:.0} on static workloads",
        robust.mean_avg_ms,
        exist.mean_avg_ms
    );
}

#[test]
fn per_window_worst_case_improves_not_just_average() {
    let (exist, robust, _) = run(WorkloadProfile::S2, 33);
    // Count windows where CliffGuard's max latency is at least as good.
    let better = exist
        .windows
        .iter()
        .zip(&robust.windows)
        .filter(|(e, r)| r.max_ms <= e.max_ms * 1.001)
        .count();
    assert!(
        better * 2 >= exist.windows.len(),
        "CliffGuard should match or beat the nominal max in most windows ({better}/{})",
        exist.windows.len()
    );
}
