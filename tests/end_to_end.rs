//! End-to-end pipeline: generator → catalog → parser-compatible queries →
//! windows → designers → evaluation, across both engines.

use cliffguard::prelude::*;

fn small_r1() -> (SchemaShape, Vec<Workload>) {
    let mut config = WorkloadProfile::R1.config(9).scaled(0.25);
    config.n_windows = 5;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    (shape, windows)
}

#[test]
fn columnar_pipeline_runs_and_orders_strategies() {
    let (shape, windows) = small_r1();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let metric = DeltaEuclidean::new(shape.column_count());
    let opts = EvalOptions {
        budget_bytes: 60 << 30,
        designable_factor: 3.0,
    };
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");

    let none = evaluate_strategy(&engine, &mut NoDesign, &windows, &metric, &opts);
    let exist = evaluate_strategy(
        &engine,
        &mut ExistingDesigner::new(&nominal),
        &windows,
        &metric,
        &opts,
    );
    let oracle = evaluate_strategy(
        &engine,
        &mut FutureKnowingDesigner::new(&nominal),
        &windows,
        &metric,
        &opts,
    );
    let mut cg = CliffGuardStrategy::new(&nominal, metric, GammaPolicy::KMaxPastDeltas(1.5), 3);
    let robust = evaluate_strategy(&engine, &mut cg, &windows, &metric, &opts);

    // Sanity ordering on a drifting workload (paper's Figure 7a shape):
    // the oracle is best, NoDesign is worst, CliffGuard beats Existing.
    assert!(oracle.mean_avg_ms < none.mean_avg_ms);
    assert!(exist.mean_avg_ms <= none.mean_avg_ms * 1.001);
    assert!(
        robust.mean_avg_ms < exist.mean_avg_ms,
        "CliffGuard {:.1} should beat ExistingDesigner {:.1}",
        robust.mean_avg_ms,
        exist.mean_avg_ms
    );
    assert!(oracle.mean_avg_ms <= robust.mean_avg_ms * 1.001);
    // All strategies produced one record per evaluated window.
    assert_eq!(none.windows.len(), windows.len() - 1);
    assert_eq!(robust.windows.len(), windows.len() - 1);
}

#[test]
fn row_pipeline_runs() {
    let (shape, windows) = small_r1();
    let catalog = CatalogGenerator {
        fact_rows: 4_000_000,
        ..CatalogGenerator::default()
    }
    .generate(&shape);
    let engine = RowEngine::new(catalog);
    let metric = DeltaEuclidean::new(shape.column_count());
    let opts = EvalOptions {
        budget_bytes: 10 << 30,
        designable_factor: 3.0,
    };
    let advisor = GreedyDesigner::new(&engine, RowCandidates, "advisor");

    let none = evaluate_strategy(&engine, &mut NoDesign, &windows, &metric, &opts);
    let mut cg = CliffGuardStrategy::new(&advisor, metric, GammaPolicy::KMaxPastDeltas(1.5), 3);
    let robust = evaluate_strategy(&engine, &mut cg, &windows, &metric, &opts);
    assert!(robust.mean_avg_ms < none.mean_avg_ms);
}

#[test]
fn generated_queries_survive_sql_round_trip() {
    // Render generated queries to SQL and re-parse them against the
    // catalog: clause column sets must survive.
    let (shape, windows) = small_r1();
    let catalog = CatalogGenerator::default().generate(&shape);
    let mut checked = 0;
    for (q, _) in windows[0].iter().take(25) {
        let sql = catalog.render_sql(q);
        let parsed = parse_query(&sql, &catalog).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(parsed.anchor, q.anchor, "{sql}");
        assert_eq!(parsed.select, q.select, "{sql}");
        assert_eq!(parsed.filter, q.filter, "{sql}");
        assert_eq!(parsed.group_by, q.group_by, "{sql}");
        checked += 1;
    }
    assert!(checked > 0);
}
