//! Integration tests for the fault-injected, deadline-aware session
//! runtime: degenerate sessions under fault injection never panic, fault
//! schedules are deterministic across runs and thread counts, and a
//! killed session resumes — through the serialized checkpoint — to a
//! final design bit-identical to an uninterrupted run.

use cliffguard::prelude::*;
use std::sync::Arc;

fn catalog() -> Catalog {
    Catalog::new(vec![TableDef {
        name: "fact".into(),
        columns: (0..12)
            .map(|i| ColumnDef {
                name: format!("c{i}"),
                width_bytes: 8,
                stats: ColumnStats::uniform(100_000),
            })
            .collect(),
        rows: 8_000_000,
    }])
}

fn query(sel: &[u32], filt: u32) -> Query {
    QueryBuilder::new(TableId(0))
        .select(sel)
        .filter(filt, PredOp::Eq, 0.0001)
        .build()
}

fn w0() -> Workload {
    Workload::from_queries([(query(&[1, 2], 3), 50.0), (query(&[3, 4], 5), 50.0)])
}

fn pool() -> Vec<Arc<Query>> {
    (5..11)
        .map(|c| Arc::new(query(&[c, c + 1], c - 1)))
        .collect()
}

const BUDGET: u64 = 10_000_000_000;

/// Every fault spec a CI matrix leg might set via `CLIFFGUARD_FAULTS`.
const FAULT_SPECS: &[&str] = &[
    "seed=1,rate=0.3",
    "seed=2,rate=0.6,stall-ms=20",
    "fail@1,stall@2:40,overbudget@3,empty@4,stale@5",
];

fn run_under_plan(plan: &FaultPlan, gamma: f64, pool: &[Arc<Query>]) -> (ColumnarDesign, String) {
    let e = ColumnarEngine::new(catalog());
    let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
    let clock = SessionClock::virtual_clock();
    let injector: FaultyDesigner<ColumnarEngine, _> =
        FaultyDesigner::new(&nominal, plan.clone(), clock.clone());
    let options = SessionOptions {
        clock,
        ..SessionOptions::default()
    };
    let session = DesignSession::new(
        &e,
        injector,
        DeltaEuclidean::new(12),
        CliffGuardConfig::new(gamma),
        options,
    )
    .expect("valid config");
    let (d, trace) = session.run(&w0(), BUDGET, pool).into_design();
    // No panic escapes: the session either succeeded or degraded with a
    // reason — and a degraded design is still within budget.
    assert!(d.price_bytes(e.catalog()) <= BUDGET);
    let audit = format!(
        "calls={} retries={} faults={} degraded={:?} worst={:?}",
        trace.designer_calls,
        trace.retries,
        trace.faults,
        trace.degraded,
        trace
            .worst_case_per_iter
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
    );
    (d, audit)
}

#[test]
fn degenerate_sessions_never_panic_under_any_fault_spec() {
    for spec in FAULT_SPECS {
        let plan = FaultPlan::from_spec(spec).expect("valid spec");
        // Empty pool: the neighborhood degenerates to W0 alone.
        run_under_plan(&plan, 0.01, &[]);
        // Γ = 0: nominal-only session.
        run_under_plan(&plan, 0.0, &pool());
        // Both at once.
        run_under_plan(&plan, 0.0, &[]);
        // The full descent.
        run_under_plan(&plan, 0.01, &pool());
    }
}

#[test]
fn first_call_failure_returns_usable_design_or_degrades() {
    // The very first (nominal) call fails; retries are clean, so the
    // session recovers to the exact clean answer.
    let plan = FaultPlan::from_spec("fail@1").unwrap();
    let (d, audit) = run_under_plan(&plan, 0.01, &pool());
    let (d_clean, _) = run_under_plan(&FaultPlan::none(), 0.01, &pool());
    assert_eq!(d, d_clean, "one retried outage must not change the answer");
    assert!(audit.contains("retries=1"), "{audit}");

    // First call fails AND there are no retries left: the session must
    // degrade to an empty design with a reason, not panic.
    let e = ColumnarEngine::new(catalog());
    let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
    let clock = SessionClock::virtual_clock();
    let all_fail = FaultPlan::seeded(0, 1.0); // every call faulted
    let injector: FaultyDesigner<ColumnarEngine, _> =
        FaultyDesigner::new(&nominal, all_fail, clock.clone());
    let options = SessionOptions {
        clock,
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        ..SessionOptions::default()
    };
    let session = DesignSession::new(
        &e,
        injector,
        DeltaEuclidean::new(12),
        CliffGuardConfig::new(0.01),
        options,
    )
    .unwrap();
    let (d, trace) = session.run(&w0(), BUDGET, &pool()).into_design();
    if trace.degraded.is_none() {
        // A stall/stale fault can still yield a real design; otherwise
        // the session must have degraded.
        assert!(!d.is_empty());
    }
}

#[test]
fn same_fault_seed_gives_identical_audit_across_runs() {
    for spec in FAULT_SPECS {
        let plan = FaultPlan::from_spec(spec).unwrap();
        let (d1, a1) = run_under_plan(&plan, 0.01, &pool());
        let (d2, a2) = run_under_plan(&plan, 0.01, &pool());
        assert_eq!(a1, a2, "audit must be deterministic for {spec}");
        assert_eq!(d1, d2, "design must be deterministic for {spec}");
    }
}

#[test]
fn fault_schedule_is_identical_at_any_thread_count() {
    let plan = FaultPlan::from_spec(FAULT_SPECS[0]).unwrap();
    let saved = current_threads();
    let (d1, a1) = {
        set_threads(1);
        run_under_plan(&plan, 0.01, &pool())
    };
    let (d8, a8) = {
        set_threads(8);
        run_under_plan(&plan, 0.01, &pool())
    };
    set_threads(saved);
    assert_eq!(a1, a8, "audit must not depend on the thread count");
    assert_eq!(d1, d8, "design must not depend on the thread count");
}

#[test]
fn kill_and_resume_through_serialized_checkpoint_is_bit_identical() {
    let e = ColumnarEngine::new(catalog());
    let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
    let metric = DeltaEuclidean::new(12);
    let cfg = CliffGuardConfig::new(0.005);

    let mk = |abort: Option<usize>| {
        DesignSession::new(
            &e,
            Reliable(&nominal),
            metric,
            cfg.clone(),
            SessionOptions {
                abort_after_iterations: abort,
                ..SessionOptions::default()
            },
        )
        .unwrap()
    };
    let (d_full, t_full) = mk(None).run(&w0(), BUDGET, &pool()).into_design();

    for k in 0..3 {
        let SessionEnd::Interrupted(ckpt) = mk(Some(k)).run(&w0(), BUDGET, &pool()) else {
            panic!("abort at iteration {k} must interrupt");
        };
        // Through the wire: serialize, "crash", deserialize in a new
        // session, resume.
        let json = ckpt.to_json();
        let restored: DescentCheckpoint<ColumnarDesign> =
            DescentCheckpoint::from_json(&json).expect("checkpoint parses");
        let (d_res, t_res) = mk(None)
            .resume(&w0(), BUDGET, &pool(), &restored)
            .expect("checkpoint accepted")
            .into_design();
        assert_eq!(d_res, d_full, "kill at iteration {k}");
        let full_bits: Vec<u64> = t_full
            .worst_case_per_iter
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let res_bits: Vec<u64> = t_res
            .worst_case_per_iter
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(res_bits, full_bits, "kill at iteration {k}");
        assert!(t_res.resumed);
    }
}

#[test]
fn resume_rejects_checkpoints_from_other_inputs() {
    let e = ColumnarEngine::new(catalog());
    let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
    let metric = DeltaEuclidean::new(12);
    let cfg = CliffGuardConfig::new(0.005);
    let mk = |abort: Option<usize>| {
        DesignSession::new(
            &e,
            Reliable(&nominal),
            metric,
            cfg.clone(),
            SessionOptions {
                abort_after_iterations: abort,
                ..SessionOptions::default()
            },
        )
        .unwrap()
    };
    let SessionEnd::Interrupted(ckpt) = mk(Some(0)).run(&w0(), BUDGET, &pool()) else {
        panic!("must interrupt");
    };
    // Different budget → different fingerprint → rejected.
    let err = mk(None)
        .resume(&w0(), BUDGET / 2, &pool(), &ckpt)
        .unwrap_err();
    assert!(matches!(err, ResumeError::FingerprintMismatch { .. }));
}

#[test]
fn env_fault_plan_is_survived() {
    // CI's fault-matrix job sets CLIFFGUARD_FAULTS; whatever plan it
    // carries, a full design session must end without panicking — either
    // recovered or degraded with a reason. Without the env var this is a
    // clean-run smoke test.
    let plan = FaultPlan::from_env()
        .expect("CLIFFGUARD_FAULTS, when set, must parse")
        .unwrap_or_else(FaultPlan::none);
    let (_, audit) = run_under_plan(&plan, 0.01, &pool());
    if plan.is_none() {
        assert!(audit.contains("faults=0"), "{audit}");
    }
}

#[test]
fn env_spec_grammar_round_trips() {
    for spec in FAULT_SPECS {
        let plan = FaultPlan::from_spec(spec).unwrap();
        assert!(!plan.is_none(), "{spec} must describe at least one fault");
    }
    assert!(FaultPlan::from_spec("").unwrap().is_none());
    assert!(FaultPlan::from_spec("bogus@x").is_err());
    assert_eq!(FAULTS_ENV, "CLIFFGUARD_FAULTS");
}
