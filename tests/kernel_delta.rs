//! Delta epochs and the persistent warm-start cache: bit-identity and
//! fallback properties.
//!
//! Three contracts pinned here:
//!
//! 1. **Delta == full, bit-for-bit.** [`CostKernel::epoch_from`] re-costs
//!    only the queries whose plans depend on a touched structure and
//!    splices them into a clone of the base epoch. For any base/target
//!    design pair and any thread count, the result must carry the exact
//!    bits a from-scratch build produces (property-tested at 1 and 8
//!    threads).
//! 2. **Warm starts change nothing but time.** Two identical design
//!    sessions — one on a cold epoch cache, one warm-started from the
//!    first's persisted snapshots — must emit byte-identical audits and
//!    designs.
//! 3. **Poisoned caches degrade to rebuilds.** A cache entry with a wrong
//!    engine tag, a truncated body, or a flipped latency bit is rejected
//!    and rebuilt from scratch; the rebuild overwrites the bad entry.

use cliffguard::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static THREAD_KNOB: Mutex<()> = Mutex::new(());

/// Thread counts the identity must hold at (1 = fully inline baseline).
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// A self-cleaning scratch directory (no tempfile dependency).
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cliffguard-delta-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Small drifting-workload fixture (same shape as `kernel_identity.rs`).
fn fixture(seed: u64) -> (ColumnarEngine, Vec<Workload>) {
    let mut config = WorkloadProfile::R1.config(seed).scaled(0.15);
    config.n_windows = 3;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    let catalog = CatalogGenerator::default().generate(&shape);
    (ColumnarEngine::new(catalog), windows)
}

/// A design assembled from candidate structures picked by two free indices.
fn design_from(engine: &ColumnarEngine, w: &Workload, a: usize, b: usize) -> ColumnarDesign {
    let candidates = ColumnarCandidates.candidates(engine, w);
    assert!(!candidates.is_empty(), "fixture must yield candidates");
    ColumnarDesign::from_structures(vec![
        candidates[a % candidates.len()].clone(),
        candidates[b % candidates.len()].clone(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `epoch_from(base, target)` carries the exact bits of a from-scratch
    /// `epoch(target)` for single-structure touches, at 1 and 8 threads.
    #[test]
    fn delta_epoch_equals_full_build_bit_identically(
        seed in 0u64..10_000,
        a in 0usize..64,
        b in 0usize..64,
        c in 0usize..64,
    ) {
        let _guard = THREAD_KNOB.lock().unwrap();
        let (engine, windows) = fixture(seed);
        // Base and target share structure `a`; `b` → `c` is the touch.
        let base = design_from(&engine, &windows[0], a, b);
        let target = design_from(&engine, &windows[0], a, c);

        for threads in THREAD_COUNTS {
            set_threads(threads);
            // Delta path: base epoch first, then the incremental rebuild.
            let (kernel, interned) = CostKernel::build(&engine, &windows);
            let _ = kernel.epoch(&base);
            let delta = kernel.epoch_from(&base, &target);

            // Reference: an untouched kernel that can only build fully.
            let (fresh, _) = CostKernel::build(&engine, &windows);
            let full = fresh.epoch(&target);
            prop_assert_eq!(fresh.stats().delta_builds, 0);

            prop_assert_eq!(delta.fingerprint(), full.fingerprint());
            for (i, (d, f)) in delta.latencies().iter().zip(full.latencies()).enumerate() {
                prop_assert_eq!(
                    d.to_bits(), f.to_bits(),
                    "delta diverged from full build at query {} with {} threads",
                    i, threads
                );
            }
            // The folds downstream of the epoch agree too.
            for iw in &interned {
                let dc = kernel.workload_cost(iw, &delta);
                let fc = fresh.workload_cost(iw, &full);
                prop_assert_eq!(dc.avg_ms.to_bits(), fc.avg_ms.to_bits());
                prop_assert_eq!(dc.max_ms.to_bits(), fc.max_ms.to_bits());
                prop_assert_eq!(dc.total_ms.to_bits(), fc.total_ms.to_bits());
            }
            // Identical designs are a no-touch delta: nothing re-costed.
            let before = kernel.stats().recosted_queries;
            let same = kernel.epoch_from(&base, &base);
            prop_assert_eq!(same.fingerprint(), base.fingerprint());
            prop_assert_eq!(kernel.stats().recosted_queries, before);
        }
        set_threads(1);
    }
}

/// Runs one deterministic robust design session against `cache_dir` and
/// renders its audit (design fingerprint, DDL, worst-case trace bits) as
/// one comparable string.
fn session_audit(cache_dir: &std::path::Path) -> String {
    let (engine, windows) = fixture(77);
    let (w0, history) = windows.split_last().expect("fixture has windows");
    let metric = DeltaEuclidean::new(engine.catalog().column_count());
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let pool: Vec<Arc<Query>> = history
        .iter()
        .flat_map(|w| w.queries())
        .cloned()
        .collect();
    let options = SessionOptions {
        epoch_cache: Some(EpochCacheStore::open(cache_dir).expect("open epoch cache")),
        ..SessionOptions::default()
    };
    let session = DesignSession::new(
        &engine,
        Reliable(&nominal),
        metric,
        CliffGuardConfig::new(0.08),
        options,
    )
    .expect("valid session config");
    let (design, trace) = session.run(w0, 512 << 20, &pool).into_design();
    let worst_bits: Vec<String> = trace
        .worst_case_per_iter
        .iter()
        .map(|x| format!("{:016x}", x.to_bits()))
        .collect();
    format!(
        "fp={:016x} calls={} worst=[{}]\n{}",
        design.fingerprint(),
        trace.designer_calls,
        worst_bits.join(","),
        cliffguard::sim::ddl::columnar_script(&design, engine.catalog()),
    )
}

/// A warm-started session (second run over a shared cache directory) is
/// byte-identical to the cold run that populated the cache.
#[test]
fn warm_start_session_audit_is_byte_identical() {
    let _guard = THREAD_KNOB.lock().unwrap();
    set_threads(1);
    let scratch = Scratch::new("warm");
    let cold = session_audit(scratch.path());
    let snapshots = std::fs::read_dir(scratch.path())
        .expect("read cache dir")
        .count();
    assert!(snapshots > 0, "cold run must persist epoch snapshots");
    let warm = session_audit(scratch.path());
    assert_eq!(cold, warm, "warm start must not change a single byte");
}

/// Every poisoning mode — wrong engine tag, truncation, a flipped latency
/// bit — is rejected on load; the kernel rebuilds from scratch and the
/// rebuilt bits match an uncached kernel exactly.
#[test]
fn poisoned_cache_entries_fall_back_to_clean_rebuilds() {
    let _guard = THREAD_KNOB.lock().unwrap();
    set_threads(1);
    let (engine, windows) = fixture(11);
    let design = design_from(&engine, &windows[0], 3, 19);
    let (reference, _) = CostKernel::build(&engine, &windows);
    let want = reference.epoch(&design);

    let poisons: [(&str, fn(&str) -> String); 3] = [
        ("wrong-tag", |text| text.replacen("columnar-v1", "columnar-v0", 1)),
        ("truncated", |text| text[..text.len() / 2].to_string()),
        ("bit-flip", |text| {
            // Flip the low bit of the first persisted latency word.
            let start = text.find("\"lat_bits\":[").expect("lat_bits field") + 12;
            let end = start
                + text[start..]
                    .find([',', ']'])
                    .expect("list delimiter");
            let bits: u64 = text[start..end].parse().expect("latency bits");
            format!("{}{}{}", &text[..start], bits ^ 1, &text[end..])
        }),
    ];
    for (label, poison) in poisons {
        let scratch = Scratch::new(label);
        let store = EpochCacheStore::open(scratch.path()).expect("open epoch cache");
        // Populate, then corrupt every snapshot in place.
        let (writer, _) = CostKernel::build_with(
            &engine,
            &windows,
            KernelOptions {
                epoch_cache: Some(store.clone()),
                ..KernelOptions::default()
            },
        );
        let _ = writer.epoch(&design);
        let mut corrupted = 0;
        for entry in std::fs::read_dir(scratch.path()).expect("read cache dir") {
            let path = entry.expect("dir entry").path();
            let text = std::fs::read_to_string(&path).expect("read snapshot");
            std::fs::write(&path, poison(&text)).expect("write poisoned snapshot");
            corrupted += 1;
        }
        assert!(corrupted > 0, "{label}: no snapshots to poison");

        // A cold kernel over the poisoned store: the load must miss and
        // the full rebuild must reproduce the reference bits.
        let (kernel, _) = CostKernel::build_with(
            &engine,
            &windows,
            KernelOptions {
                epoch_cache: Some(store),
                ..KernelOptions::default()
            },
        );
        let got = kernel.epoch(&design);
        let stats = kernel.stats();
        assert_eq!(stats.disk_hits, 0, "{label}: poisoned entry must not load");
        assert_eq!(stats.epoch_builds, 1, "{label}: expected a full rebuild");
        assert_eq!(got.fingerprint(), want.fingerprint());
        for (g, w) in got.latencies().iter().zip(want.latencies()) {
            assert_eq!(g.to_bits(), w.to_bits(), "{label}: rebuild diverged");
        }
    }
}
