//! Reproducibility: every randomized component is seeded, so identical
//! seeds must give identical results across the whole pipeline.

use cliffguard::prelude::*;

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut config = WorkloadProfile::R1.config(77).scaled(0.2);
        config.n_windows = 4;
        let mut generator = DriftingGenerator::new(config.clone());
        let shape = generator.shape().clone();
        let windows = generator.generate().windows_days(config.window_days);
        let catalog = CatalogGenerator::default().generate(&shape);
        let engine = ColumnarEngine::new(catalog);
        let metric = DeltaEuclidean::new(shape.column_count());
        let opts = EvalOptions {
            budget_bytes: 60 << 30,
            designable_factor: 3.0,
        };
        let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
        let mut cg = CliffGuardStrategy::new(&nominal, metric, GammaPolicy::KMaxPastDeltas(1.5), 5);
        let r = evaluate_strategy(&engine, &mut cg, &windows, &metric, &opts);
        (
            r.mean_avg_ms,
            r.mean_max_ms,
            r.windows.iter().map(|w| w.price_bytes).collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn different_seeds_change_the_workload_not_the_contracts() {
    let gen = |seed| {
        let mut config = WorkloadProfile::S2.config(seed).scaled(0.2);
        config.n_windows = 3;
        DriftingGenerator::new(config.clone())
            .generate()
            .windows_days(config.window_days)
    };
    let a = gen(1);
    let b = gen(2);
    // Same shape...
    assert_eq!(a.len(), b.len());
    // ...different content.
    let metric = DeltaEuclidean::new(SchemaShape::analytic_default().column_count());
    assert!(metric.distance(&a[0], &b[0]) > 0.0);
}

#[test]
fn distance_deterministic_across_calls() {
    let mut config = WorkloadProfile::R1.config(3).scaled(0.2);
    config.n_windows = 2;
    let windows = DriftingGenerator::new(config.clone())
        .generate()
        .windows_days(config.window_days);
    let metric = DeltaEuclidean::new(SchemaShape::analytic_default().column_count());
    let d1 = metric.distance(&windows[0], &windows[1]);
    let d2 = metric.distance(&windows[0], &windows[1]);
    assert_eq!(d1, d2);
}
