//! End-to-end test of the `cliffguard` CLI binary: generate → stats →
//! design → evaluate over real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cliffguard")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cliffguard-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_design_evaluate_pipeline() {
    let dir = tmpdir("pipeline");
    let log = dir.join("log.tsv");
    let catalog = dir.join("catalog.json");

    // generate
    let out = Command::new(bin())
        .args([
            "generate",
            "--profile",
            "R1",
            "--seed",
            "5",
            "--windows",
            "4",
            "--scale",
            "0.2",
            "--out",
            log.to_str().unwrap(),
            "--catalog-out",
            catalog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(log.exists() && catalog.exists());
    let log_text = std::fs::read_to_string(&log).unwrap();
    assert!(log_text.lines().count() > 100);
    assert!(log_text.contains('\t'));

    // stats
    let out = Command::new(bin())
        .args([
            "stats",
            "--catalog",
            catalog.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inter-window delta"), "{stdout}");
    assert!(stdout.contains("suggested gamma"), "{stdout}");

    // design (robust) emits projection DDL
    let out = Command::new(bin())
        .args([
            "design",
            "--catalog",
            catalog.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--gamma",
            "auto",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ddl = String::from_utf8_lossy(&out.stdout);
    assert!(ddl.contains("CREATE PROJECTION"), "{ddl}");
    assert!(ddl.contains("ORDER BY"), "{ddl}");

    // design (nominal) also works
    let out = Command::new(bin())
        .args([
            "design",
            "--catalog",
            catalog.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--nominal",
            "true",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_design_is_deterministic_and_schema_valid() {
    let dir = tmpdir("telemetry");
    let log = dir.join("log.tsv");
    let catalog = dir.join("catalog.json");
    let out = Command::new(bin())
        .args([
            "generate",
            "--profile",
            "R1",
            "--seed",
            "5",
            "--windows",
            "4",
            "--scale",
            "0.2",
            "--out",
            log.to_str().unwrap(),
            "--catalog-out",
            catalog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Two traced, fault-injected runs at different thread counts on the
    // virtual clock: byte-identical trace and DDL, valid metrics JSON.
    let run = |trace: &PathBuf, metrics: &PathBuf, threads: &str| {
        let out = Command::new(bin())
            .args([
                "design",
                "--catalog",
                catalog.to_str().unwrap(),
                "--log",
                log.to_str().unwrap(),
                "--gamma",
                "auto",
                "--virtual-clock",
                "--log-level",
                "debug",
                "--threads",
                threads,
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                metrics.to_str().unwrap(),
            ])
            .env("CLIFFGUARD_FAULTS", "seed=1,rate=0.3")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let (t1, m1) = (dir.join("t1.jsonl"), dir.join("m1.json"));
    let (t2, m2) = (dir.join("t2.jsonl"), dir.join("m2.json"));
    let ddl1 = run(&t1, &m1, "1");
    let ddl2 = run(&t2, &m2, "8");
    assert_eq!(ddl1, ddl2, "DDL must not depend on the thread count");
    let trace1 = std::fs::read_to_string(&t1).unwrap();
    let trace2 = std::fs::read_to_string(&t2).unwrap();
    assert_eq!(trace1, trace2, "trace must be byte-identical at 1 vs 8");
    assert!(trace1.contains("\"cliffguard.core.descent.iter\""));
    let metrics = std::fs::read_to_string(&m1).unwrap();
    assert!(metrics.contains("cliffguard.core.designer_call_ms"));

    // validate-trace accepts the emitted trace against the golden schema.
    let schema = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace.schema.json"
    );
    let out = Command::new(bin())
        .args([
            "validate-trace",
            "--trace",
            t1.to_str().unwrap(),
            "--schema",
            schema,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A corrupted line is rejected with a line number.
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, format!("{trace1}{{\"t\":0,\"bogus\":1}}\n")).unwrap();
    let out = Command::new(bin())
        .args([
            "validate-trace",
            "--trace",
            bad.to_str().unwrap(),
            "--schema",
            schema,
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema violation"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_daemon_round_trips_over_stdin() {
    use cliffguard::serve::{harness::design_line, testdata};
    use std::io::Write;
    use std::process::Stdio;

    let mut child = Command::new(bin())
        .args(["serve", "--virtual-clock", "--max-concurrent", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        "{}",
        design_line(&testdata::design_request("acme", 7))
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"metrics"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains(r#""status":"done""#), "{}", lines[0]);
    assert!(lines[0].contains(r#""tenant":"acme""#), "{}", lines[0]);
    assert!(lines[1].contains(r#""op":"metrics""#), "{}", lines[1]);
    // The daemon keeps a metrics registry even without --metrics-out, so
    // the `metrics` verb reports real counters.
    assert!(lines[1].contains("cliffguard.serve"), "{}", lines[1]);
    assert!(lines[2].contains(r#""op":"shutdown""#), "{}", lines[2]);
}

#[test]
fn duplicate_flags_are_rejected() {
    let out = Command::new(bin())
        .args([
            "stats",
            "--catalog",
            "a.json",
            "--catalog",
            "b.json",
            "--log",
            "l.tsv",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--catalog"), "{stderr}");
    assert!(stderr.contains("more than once"), "{stderr}");
}

#[test]
fn cli_rejects_bad_input() {
    // unknown command
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // missing flags
    let out = Command::new(bin()).arg("design").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required flag"));

    // unreadable catalog
    let out = Command::new(bin())
        .args([
            "stats",
            "--catalog",
            "/nonexistent.json",
            "--log",
            "/nonexistent.tsv",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = Command::new(bin()).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}
