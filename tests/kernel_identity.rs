//! Property tests for the dense cost kernel's bit-identity contract.
//!
//! The kernel's entire value proposition rests on one invariant: for any
//! workload, any design, and any thread count, [`CostKernel`] returns the
//! **exact bits** that a direct (uncached, serial) [`Engine`] evaluation
//! would. These tests draw random workload families and random designs and
//! check that invariant at 1 and 8 worker threads, plus the interner's
//! round-trip guarantee (re-materializing an interned workload preserves
//! its engine cost bit-for-bit).
//!
//! The thread count is process-global, so every test serializes on one
//! lock — same pattern as `parallel_equivalence.rs`.

use cliffguard::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

static THREAD_KNOB: Mutex<()> = Mutex::new(());

/// Thread counts the identity must hold at (1 = fully inline baseline).
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Builds a small drifting-workload fixture: an engine plus a family of
/// workload windows that share most of their queries (the shape the
/// interner is built for).
fn fixture(seed: u64) -> (ColumnarEngine, Vec<Workload>) {
    let mut config = WorkloadProfile::R1.config(seed).scaled(0.15);
    config.n_windows = 3;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    let catalog = CatalogGenerator::default().generate(&shape);
    (ColumnarEngine::new(catalog), windows)
}

/// A design assembled from candidate structures picked by two free indices
/// (any pair of indices yields a valid design for the fixture's catalog).
fn design_from(engine: &ColumnarEngine, w: &Workload, a: usize, b: usize) -> ColumnarDesign {
    let candidates = ColumnarCandidates.candidates(engine, w);
    assert!(!candidates.is_empty(), "fixture must yield candidates");
    ColumnarDesign::from_structures(vec![
        candidates[a % candidates.len()].clone(),
        candidates[b % candidates.len()].clone(),
    ])
}

proptest! {
    // Each case builds a generator fixture and compiles plans, so keep the
    // case count modest; seeds still cover many distinct workload shapes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kernel costs == direct engine costs, bit-for-bit, at 1 and 8 threads.
    #[test]
    fn kernel_matches_direct_engine_bit_identically(
        seed in 0u64..10_000,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let _guard = THREAD_KNOB.lock().unwrap();
        let (engine, windows) = fixture(seed);
        let design = design_from(&engine, &windows[0], a, b);

        // Direct reference: serial, no cache, no kernel.
        set_threads(1);
        let reference: Vec<(u64, u64, u64)> = windows
            .iter()
            .map(|w| {
                let c = engine.workload_cost(w, &design);
                (c.avg_ms.to_bits(), c.max_ms.to_bits(), c.total_ms.to_bits())
            })
            .collect();

        for threads in THREAD_COUNTS {
            set_threads(threads);
            let (kernel, interned) = CostKernel::build(&engine, &windows);
            let epoch = kernel.epoch(&design);
            for (i, (iw, want)) in interned.iter().zip(&reference).enumerate() {
                let c = kernel.workload_cost(iw, &epoch);
                let got = (c.avg_ms.to_bits(), c.max_ms.to_bits(), c.total_ms.to_bits());
                prop_assert_eq!(
                    got, *want,
                    "kernel diverged from direct engine at window {} with {} threads",
                    i, threads
                );
            }
            // Per-query path (the descent's move_workload closure) must
            // agree with the engine too, including for queries the kernel
            // never interned (fallback-cache path).
            for q in windows[0].queries().take(8) {
                prop_assert_eq!(
                    kernel.query_latency_ms(q, &design, &epoch).to_bits(),
                    engine.query_latency_ms(q, &design).to_bits(),
                    "per-query latency diverged at {} threads", threads
                );
            }
        }
        set_threads(1);
    }

    /// Interning then re-materializing a workload preserves its cost
    /// bit-for-bit: the interner neither reorders entries nor alters
    /// weights, so the engine's fold visits identical values in an
    /// identical order.
    #[test]
    fn interner_roundtrip_preserves_workload_cost(
        seed in 0u64..10_000,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let _guard = THREAD_KNOB.lock().unwrap();
        set_threads(1);
        let (engine, windows) = fixture(seed);
        let design = design_from(&engine, &windows[0], a, b);

        let mut interner = WorkloadInterner::new();
        for w in &windows {
            let interned = interner.intern(w);
            prop_assert_eq!(interned.len(), w.len());
            prop_assert_eq!(
                interned.total_weight().to_bits(),
                w.total_weight().to_bits(),
                "interning must not perturb the weight sum"
            );

            // Rebuild a workload from the interner's dense ids and weights.
            let mut rebuilt = Workload::new();
            for &(id, wt) in interned.entries() {
                rebuilt.add(Arc::clone(interner.query(id)), wt);
            }
            let want = engine.workload_cost(w, &design);
            let got = engine.workload_cost(&rebuilt, &design);
            prop_assert_eq!(got.avg_ms.to_bits(), want.avg_ms.to_bits());
            prop_assert_eq!(got.max_ms.to_bits(), want.max_ms.to_bits());
            prop_assert_eq!(got.total_ms.to_bits(), want.total_ms.to_bits());
        }
        // Dedup across the family: distinct queries never exceed raw
        // entries, and drifting windows share queries so they are fewer.
        prop_assert!(interner.len() as u64 <= interner.raw_entries());
        prop_assert!(interner.dedup_ratio() >= 1.0);
    }
}
