//! Property tests over workload and column-set algebra.

use cliffguard::prelude::*;
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = ColumnSet> {
    proptest::collection::btree_set(0..200u32, 0..12)
        .prop_map(|s| ColumnSet::from_iter(s.into_iter().map(ColumnId)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn colset_union_contains_both(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
        prop_assert_eq!(u.len(), a.len() + b.len() - a.intersection(&b).len());
    }

    #[test]
    fn colset_difference_disjoint_from_other(a in arb_set(), b in arb_set()) {
        let d = a.difference(&b);
        prop_assert!(d.is_disjoint(&b));
        prop_assert!(d.is_subset(&a));
    }

    #[test]
    fn colset_hamming_is_symmetric_difference(a in arb_set(), b in arb_set()) {
        let sym = a.difference(&b).union(&b.difference(&a));
        prop_assert_eq!(a.hamming(&b), sym.len());
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn colset_hamming_triangle(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn colset_iter_roundtrip(a in arb_set()) {
        let rebuilt = ColumnSet::from_iter(a.iter());
        prop_assert_eq!(rebuilt, a.clone());
        // iteration ascending
        let ids: Vec<u32> = a.iter().map(|c| c.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted);
    }

    #[test]
    fn workload_union_weight_additive(
        ws in proptest::collection::vec((proptest::collection::vec(0..30u32, 1..4), 0.5f64..20.0), 1..8)
    ) {
        let queries: Vec<(Query, f64)> = ws
            .into_iter()
            .map(|(sel, w)| (QueryBuilder::new(TableId(0)).select(&sel).build(), w))
            .collect();
        let a = Workload::from_queries(queries.clone());
        let u = a.union(&a);
        prop_assert!((u.total_weight() - 2.0 * a.total_weight()).abs() < 1e-9);
        prop_assert_eq!(u.len(), a.len());
        // Normalized frequencies are invariant under self-union.
        let metric = DeltaEuclidean::new(32);
        prop_assert!(metric.distance(&a, &u) < 1e-12);
    }

    #[test]
    fn compress_preserves_heaviest(
        ws in proptest::collection::vec((0..40u32, 0.5f64..50.0), 2..10),
        mass in 0.1f64..1.0
    ) {
        let queries: Vec<(Query, f64)> = ws
            .into_iter()
            .map(|(c, w)| (QueryBuilder::new(TableId(0)).select(&[c]).build(), w))
            .collect();
        let w = Workload::from_queries(queries);
        let c = w.compress_top_mass(mass);
        prop_assert!(!c.is_empty());
        prop_assert!(c.len() <= w.len());
        prop_assert!(c.total_weight() <= w.total_weight() + 1e-9);
        // The heaviest query always survives.
        let heaviest = w
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(q, _)| q.signature())
            .unwrap();
        prop_assert!(c.weight_of_sig(heaviest) > 0.0);
    }

    #[test]
    fn move_workload_superset_invariants(
        w0_ws in proptest::collection::vec((0..20u32, 1.0f64..20.0), 1..5),
        n_ws in proptest::collection::vec((20..40u32, 1.0f64..20.0), 1..5),
        alpha in 0.1f64..4.0
    ) {
        let mk = |ws: Vec<(u32, f64)>| {
            Workload::from_queries(
                ws.into_iter()
                    .map(|(c, w)| (QueryBuilder::new(TableId(0)).select(&[c]).build(), w)),
            )
        };
        let w0 = mk(w0_ws);
        let n = mk(n_ws);
        let moved = move_workload(&w0, &[&n], |_| 1.0, alpha);
        // Every W0 query keeps at least its weight; every neighbor query
        // appears; weights finite.
        for (q, wt) in w0.iter() {
            prop_assert!(moved.weight_of(q) >= wt - 1e-9);
        }
        for (q, _) in n.iter() {
            prop_assert!(moved.weight_of(q) > 0.0);
        }
        for (_, wt) in moved.iter() {
            prop_assert!(wt.is_finite() && wt > 0.0);
        }
    }
}
