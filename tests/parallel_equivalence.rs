//! The determinism contract of the parallel cost-evaluation layer: every
//! parallelized path — `CliffGuard::design`, `GreedyDesigner::design`,
//! `evaluate_strategy` — must produce **byte-identical** results at 1, 2,
//! and 8 threads.
//!
//! The thread count is process-global, so every test here serializes on
//! one lock; within a test, the 1-thread result is the baseline and each
//! higher count is compared field-by-field with `f64::to_bits` (no
//! epsilon: re-associated float reductions would differ in the low bits,
//! and catching exactly that is the point).

use cliffguard::prelude::*;
use std::sync::{Arc, Mutex};

static THREAD_KNOB: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> (SchemaShape, Vec<Workload>) {
    let mut config = WorkloadProfile::R1.config(13).scaled(0.2);
    config.n_windows = 4;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    (shape, windows)
}

fn pool_of(windows: &[Workload]) -> Vec<Arc<Query>> {
    let mut pool = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for w in windows {
        for q in w.queries() {
            if seen.insert(q.signature()) {
                pool.push(Arc::clone(q));
            }
        }
    }
    pool
}

#[test]
fn cliffguard_design_is_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let metric = DeltaEuclidean::new(shape.column_count());
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let cg = CliffGuard::new(&engine, &nominal, metric, CliffGuardConfig::new(0.01));
    let w0 = &windows[windows.len() - 2];
    let pool = pool_of(&windows[..windows.len() - 2]);
    let budget = 40u64 << 30;

    let mut baseline: Option<(ColumnarDesign, Vec<u64>)> = None;
    for threads in THREAD_COUNTS {
        set_threads(threads);
        let (design, trace) = cg.design(w0, budget, &pool);
        let trace_bits: Vec<u64> = trace
            .worst_case_per_iter
            .iter()
            .map(|x| x.to_bits())
            .collect();
        match &baseline {
            None => baseline = Some((design, trace_bits)),
            Some((d1, t1)) => {
                assert_eq!(d1, &design, "design diverged at {threads} threads");
                assert_eq!(t1, &trace_bits, "trace diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn greedy_design_is_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let w0 = &windows[0];
    let budget = 40u64 << 30;

    let mut baseline: Option<(ColumnarDesign, u64)> = None;
    for threads in THREAD_COUNTS {
        set_threads(threads);
        let design = nominal.design(w0, budget);
        let cost_bits = engine.cost_f(w0, &design).to_bits();
        match &baseline {
            None => baseline = Some((design, cost_bits)),
            Some((d1, c1)) => {
                assert_eq!(d1, &design, "greedy design diverged at {threads} threads");
                assert_eq!(*c1, cost_bits, "design cost diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn evaluate_strategy_is_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let metric = DeltaEuclidean::new(shape.column_count());
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let opts = EvalOptions {
        budget_bytes: 40 << 30,
        designable_factor: 3.0,
    };

    // (window, avg, max, deployment, price, structures) per record —
    // everything deterministic; design wall-clock is excluded.
    type Row = (usize, u64, u64, u64, u64, usize);
    let run = |threads: usize| -> Vec<Row> {
        set_threads(threads);
        let mut strategy =
            CliffGuardStrategy::new(&nominal, metric, GammaPolicy::KMaxPastDeltas(1.5), 5);
        let summary = evaluate_strategy(&engine, &mut strategy, &windows, &metric, &opts);
        summary
            .windows
            .iter()
            .map(|r| {
                (
                    r.window,
                    r.avg_ms.to_bits(),
                    r.max_ms.to_bits(),
                    r.deployment_ms.to_bits(),
                    r.price_bytes,
                    r.structures,
                )
            })
            .collect()
    };

    let baseline = run(THREAD_COUNTS[0]);
    assert!(
        !baseline.is_empty(),
        "fixture must evaluate at least one window"
    );
    for threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            baseline,
            run(*threads),
            "evaluation diverged at {threads} threads"
        );
    }
}

#[test]
fn cached_engine_is_identical_to_uncached_in_parallel() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let design = nominal.design(&windows[0], 40 << 30);

    set_threads(8);
    let cached = CachedEngine::new(&engine);
    for w in &windows {
        let plain = engine.workload_cost(w, &design);
        // Twice: the second pass must be all hits and still bit-identical.
        for _ in 0..2 {
            let memo = cached.workload_cost(w, &design);
            assert_eq!(plain.avg_ms.to_bits(), memo.avg_ms.to_bits());
            assert_eq!(plain.max_ms.to_bits(), memo.max_ms.to_bits());
            assert_eq!(plain.total_ms.to_bits(), memo.total_ms.to_bits());
        }
    }
    let stats = cached.cache_stats();
    assert!(stats.hits > 0);
    assert_eq!(stats.lookups(), stats.hits + stats.misses);
    set_threads(1);
}
