//! Property test: structural queries rendered to SQL and re-parsed against
//! the catalog must recover their clause column sets exactly.

use cliffguard::prelude::*;
use proptest::prelude::*;

fn catalog() -> Catalog {
    CatalogGenerator::default().generate(&SchemaShape::new(vec![8, 6, 4]))
}

/// A random structural query over table `t` of the 3-table catalog.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        0..3u32,
        proptest::collection::btree_set(0..4u32, 1..4),
        proptest::collection::btree_set(0..4u32, 0..3),
        proptest::collection::btree_set(0..3u32, 0..2),
        proptest::collection::vec(0..4u32, 0..2),
        proptest::collection::vec((0..3usize, 0.001f64..0.5), 0..2),
    )
        .prop_map(|(t, sel, filt, group, order, ops)| {
            let shape = SchemaShape::new(vec![8, 6, 4]);
            let table = TableId(t);
            let base = shape.column_range(table).start;
            let ncols = shape.columns_of(table);
            let mut b = QueryBuilder::new(table);
            let sel: Vec<u32> = sel.into_iter().map(|c| base + c % ncols).collect();
            b = b.select(&sel);
            for (i, c) in filt.into_iter().enumerate() {
                let op = match ops.get(i).map(|x| x.0).unwrap_or(0) {
                    0 => PredOp::Eq,
                    1 => PredOp::Range,
                    _ => PredOp::In,
                };
                let s = ops.get(i).map(|x| x.1).unwrap_or(0.01);
                b = b.filter(base + c % ncols, op, s);
            }
            let group: Vec<u32> = group.into_iter().map(|c| base + c % ncols).collect();
            if !group.is_empty() {
                b = b.group_by(&group);
            }
            let order: Vec<u32> = order.into_iter().map(|c| base + c % ncols).collect();
            b.order_by(&order).build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_parse_roundtrip(q in arb_query()) {
        let cat = catalog();
        let sql = cat.render_sql(&q);
        let parsed = parse_query(&sql, &cat)
            .unwrap_or_else(|e| panic!("failed to reparse `{sql}`: {e}"));
        prop_assert_eq!(parsed.anchor, q.anchor, "{}", sql);
        prop_assert_eq!(&parsed.select, &q.select, "{}", sql);
        prop_assert_eq!(&parsed.filter, &q.filter, "{}", sql);
        prop_assert_eq!(&parsed.group_by, &q.group_by, "{}", sql);
        prop_assert_eq!(&parsed.order_by, &q.order_by, "{}", sql);
    }

    #[test]
    fn parse_is_deterministic(q in arb_query()) {
        let cat = catalog();
        let sql = cat.render_sql(&q);
        let a = parse_query(&sql, &cat).unwrap();
        let b = parse_query(&sql, &cat).unwrap();
        prop_assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn garbage_never_panics(s in "[a-zA-Z0-9 ,.*()='<>_-]{0,80}") {
        // The parser must reject or accept, never panic.
        let cat = catalog();
        let _ = parse_query(&s, &cat);
    }
}
