//! Cross-crate designer invariants: budgets, monotonicity, greedy-vs-ILP
//! agreement, and designer behavior on generated workloads with real
//! catalogs.

use cliffguard::prelude::*;
use proptest::prelude::*;

fn setup() -> (ColumnarEngine, Vec<Workload>) {
    let mut config = WorkloadProfile::S2.config(17).scaled(0.2);
    config.n_windows = 3;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    let catalog = CatalogGenerator::default().generate(&shape);
    (ColumnarEngine::new(catalog), windows)
}

#[test]
fn designs_always_fit_budget_on_generated_workloads() {
    let (engine, windows) = setup();
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    for budget in [1u64 << 28, 1 << 32, 1 << 36] {
        for w in &windows {
            let d = designer.design(w, budget);
            assert!(d.price_bytes(engine.catalog()) <= budget);
        }
    }
}

#[test]
fn bigger_budget_never_hurts_cost() {
    let (engine, windows) = setup();
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let w = &windows[0];
    let mut prev = f64::INFINITY;
    for budget in [1u64 << 28, 1 << 31, 1 << 34, 1 << 37] {
        let d = designer.design(w, budget);
        let cost = engine.cost_f(w, &d);
        assert!(
            cost <= prev * 1.0001,
            "cost should not grow with budget: {cost} after {prev}"
        );
        prev = cost;
    }
}

#[test]
fn designed_workload_runs_faster_than_bare() {
    let (engine, windows) = setup();
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let w = &windows[0];
    let d = designer.design(w, 60 << 30);
    let tuned = engine.workload_cost(w, &d);
    let bare = engine.workload_cost(w, &ColumnarDesign::empty());
    assert!(tuned.avg_ms < bare.avg_ms);
    assert!(tuned.max_ms <= bare.max_ms * 1.0001);
}

#[test]
fn ilp_never_worse_than_greedy_on_generated_workload() {
    let (engine, windows) = setup();
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let m = designer.matrix(&windows[0]);
    for budget in [1u64 << 30, 1 << 33] {
        let g = m.cost_of_set(&m.greedy_select(budget));
        let i = m.cost_of_set(&IlpSelector::default().select(&m, budget));
        assert!(i <= g + 1e-6, "ilp {i} vs greedy {g} at {budget}");
    }
}

#[test]
fn row_designer_mirrors_columnar_contracts() {
    let mut config = WorkloadProfile::S1.config(5).scaled(0.2);
    config.n_windows = 2;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    let catalog = CatalogGenerator {
        fact_rows: 4_000_000,
        ..CatalogGenerator::default()
    }
    .generate(&shape);
    let engine = RowEngine::new(catalog);
    let designer = GreedyDesigner::new(&engine, RowCandidates, "advisor");
    let d = designer.design(&windows[0], 10 << 30);
    assert!(d.price_bytes(engine.catalog()) <= 10 << 30);
    let tuned = engine.workload_cost(&windows[0], &d);
    let bare = engine.workload_cost(&windows[0], &RowDesign::empty());
    assert!(tuned.avg_ms <= bare.avg_ms);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_budgets_respected(budget in 0u64..(1 << 38)) {
        let (engine, windows) = setup();
        let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
        let d = designer.design(&windows[0], budget);
        prop_assert!(d.price_bytes(engine.catalog()) <= budget);
    }
}
