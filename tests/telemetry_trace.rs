//! Trace-determinism integration tests: a seeded, fault-injected design
//! session on a virtual clock must emit a **byte-identical** JSONL trace
//! across reruns and across thread counts, and every line must validate
//! against the golden schema in `schemas/trace.schema.json`.
//!
//! This is the observable half of the determinism contract: trace events
//! are emitted only from serial session code with virtual-clock
//! timestamps, while parallel workers record metrics through lock-free
//! atomics only — so the subscriber sees the same bytes at 1 thread and
//! at 8.

use cliffguard::prelude::*;
use cliffguard::trace_schema::TraceSchema;
use std::sync::{Arc, Mutex};

/// Telemetry globals are process-wide; every test that installs a
/// subscriber serializes on this lock.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn catalog() -> Catalog {
    Catalog::new(vec![TableDef {
        name: "fact".into(),
        columns: (0..12)
            .map(|i| ColumnDef {
                name: format!("c{i}"),
                width_bytes: 8,
                stats: ColumnStats::uniform(100_000),
            })
            .collect(),
        rows: 8_000_000,
    }])
}

fn query(sel: &[u32], filt: u32) -> Query {
    QueryBuilder::new(TableId(0))
        .select(sel)
        .filter(filt, PredOp::Eq, 0.0001)
        .build()
}

fn w0() -> Workload {
    Workload::from_queries([(query(&[1, 2], 3), 50.0), (query(&[3, 4], 5), 50.0)])
}

fn pool() -> Vec<Arc<Query>> {
    (5..11)
        .map(|c| Arc::new(query(&[c, c + 1], c - 1)))
        .collect()
}

const BUDGET: u64 = 10_000_000_000;

/// Runs one seeded, fault-injected session with tracing to memory and
/// returns the captured JSONL trace.
fn traced_run(spec: &str) -> String {
    let session_clock = SessionClock::virtual_clock();
    let trace_clock = {
        let c = session_clock.clone();
        TraceClock::shared_ms(move || c.now_ms())
    };
    let guard = install(TelemetryConfig {
        trace: Some(TraceSink::Memory),
        level: Level::Debug,
        clock: trace_clock,
        metrics: true,
    })
    .expect("memory sink installs");

    let e = ColumnarEngine::new(catalog());
    let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
    let plan = FaultPlan::from_spec(spec).expect("valid fault spec");
    let injector: FaultyDesigner<ColumnarEngine, _> =
        FaultyDesigner::new(&nominal, plan, session_clock.clone());
    let session = DesignSession::new(
        &e,
        injector,
        DeltaEuclidean::new(12),
        CliffGuardConfig::new(0.01),
        SessionOptions {
            clock: session_clock,
            ..SessionOptions::default()
        },
    )
    .expect("valid config");
    let (d, _) = session.run(&w0(), BUDGET, &pool()).into_design();
    assert!(d.price_bytes(e.catalog()) <= BUDGET);
    guard.memory().expect("memory sink captured").to_jsonl()
}

const SPEC: &str = "seed=1,rate=0.3";

#[test]
fn trace_is_byte_identical_across_reruns() {
    let _lock = TELEMETRY.lock().unwrap();
    let t1 = traced_run(SPEC);
    let t2 = traced_run(SPEC);
    assert!(!t1.is_empty(), "trace must capture events");
    assert_eq!(t1, t2, "same seed + virtual clock must replay identically");
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    let _lock = TELEMETRY.lock().unwrap();
    let saved = current_threads();
    set_threads(1);
    let t1 = traced_run(SPEC);
    set_threads(8);
    let t8 = traced_run(SPEC);
    set_threads(saved);
    assert_eq!(t1, t8, "trace must not depend on the thread count");
}

#[test]
fn trace_validates_against_golden_schema() {
    let _lock = TELEMETRY.lock().unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace.schema.json"
    );
    let schema_text = std::fs::read_to_string(path).expect("golden schema present");
    let schema = TraceSchema::parse(&schema_text).expect("golden schema parses");

    // A faulted run exercises the fault/retry/degraded events too.
    let trace = traced_run("fail@1,stall@2:40");
    let n = schema
        .check_trace(&trace)
        .unwrap_or_else(|errs| panic!("schema violations: {errs:?}"));
    assert!(n >= 3, "expected start + iters + finish, got {n} lines");
    assert!(trace.contains("\"cliffguard.core.session.start\""));
    assert!(trace.contains("\"cliffguard.core.descent.iter\""));
    assert!(trace.contains("\"cliffguard.core.session.finish\""));
    assert!(trace.contains("\"cliffguard.core.session.fault\""));
}

#[test]
fn metrics_snapshot_covers_every_layer() {
    let _lock = TELEMETRY.lock().unwrap();
    let session_clock = SessionClock::virtual_clock();
    let guard = install(TelemetryConfig {
        metrics: true,
        ..Default::default()
    })
    .expect("metrics-only install");
    let e = ColumnarEngine::new(catalog());
    let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
    let session = DesignSession::new(
        &e,
        Reliable(&nominal),
        DeltaEuclidean::new(12),
        CliffGuardConfig::new(0.01),
        SessionOptions {
            clock: session_clock,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    let _ = session.run(&w0(), BUDGET, &pool()).into_design();
    let snap = guard.registry().expect("registry present").snapshot();
    assert!(snap.counter("cliffguard.core.sessions") >= Some(1));
    assert!(snap.counter("cliffguard.core.designer_attempts") >= Some(1));
    let calls = snap
        .histogram("cliffguard.core.designer_call_ms")
        .expect("designer-call histogram recorded");
    assert!(calls.count >= 1);
    assert!(calls.p95() >= calls.p50());
    assert!(
        snap.histogram("cliffguard.core.iter_ms").is_some(),
        "per-iteration timings recorded"
    );
    // Deterministic, sorted JSON export round-trips through the shim.
    let json = snap.to_json();
    assert!(json.contains("cliffguard.core.designer_call_ms"));
}
