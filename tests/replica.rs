//! Replication properties: the router's argmin/tie-break contract, the
//! permutation invariance of the fleet fingerprint and routed costs, the
//! byte-identity of the replicated pipeline across thread counts (with
//! crash faults injected through `CLIFFGUARD_FAULTS`), and the R=1/k=0
//! reduction of the failure-aware objective to the uniform minimax —
//! bit-for-bit, no epsilon.

use cliffguard::prelude::*;
use cliffguard::sim::{combine_fingerprints, QueryRouter};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// `set_threads` is process-global; the thread-count tests serialize.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn epochs(lat: &[Vec<f64>], ids: &[u64]) -> Vec<Arc<DesignEpoch>> {
    lat.iter()
        .zip(ids)
        .map(|(l, &id)| Arc::new(DesignEpoch::from_parts(id, l.clone())))
        .collect()
}

/// Fleets of 1–4 replicas over 1–12 queries, with latencies drawn from a
/// coarse grid so exact ties actually occur and exercise the tie-break.
fn arb_latencies() -> impl Strategy<Value = Vec<Vec<f64>>> {
    let cell = (1u32..9).prop_map(|t| t as f64 * 0.5);
    let full = proptest::collection::vec(proptest::collection::vec(cell, 12), 4);
    (1usize..5, 1usize..13, full).prop_map(|(r, q, m)| {
        m.into_iter()
            .take(r)
            .map(|row| row.into_iter().take(q).collect())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routes_are_the_lowest_index_argmin(lat in arb_latencies()) {
        let ids: Vec<u64> = (0..lat.len() as u64).collect();
        let router = QueryRouter::new(epochs(&lat, &ids));
        for q in 0..router.query_count() {
            let mut best = 0usize;
            for r in 1..lat.len() {
                // Strict <: on a tie the earlier (lower) index wins.
                if lat[r][q] < lat[best][q] {
                    best = r;
                }
            }
            prop_assert_eq!(router.route(QueryId(q as u32)), best);
        }
    }

    #[test]
    fn permuting_replicas_preserves_fingerprint_and_routed_latency(
        lat in arb_latencies(),
        rot in 0usize..4,
    ) {
        // Rotate the fleet: replica identities travel with their epochs.
        let r = lat.len();
        let rot = rot % r;
        let ids: Vec<u64> = (0..r as u64).map(|i| 0x517c_c1b7_2722_0a95 ^ i).collect();
        let mut lat_p = lat.clone();
        let mut ids_p = ids.clone();
        lat_p.rotate_left(rot);
        ids_p.rotate_left(rot);
        let a = QueryRouter::new(epochs(&lat, &ids));
        let b = QueryRouter::new(epochs(&lat_p, &ids_p));
        // The set fingerprint is order-insensitive.
        prop_assert_eq!(
            combine_fingerprints(a.fingerprints().into_iter()),
            combine_fingerprints(b.fingerprints().into_iter())
        );
        // Under every failure mask (mapped through the rotation), the
        // routed latency is bit-identical: a tie may route to a different
        // replica *identity*, but never to a different latency.
        for mask in 0u32..(1 << r) {
            let mask_p = (0..r).fold(0u32, |m, i| {
                let old = (i + rot) % r;
                if mask & (1 << old) != 0 { m | (1 << i) } else { m }
            });
            for q in 0..a.query_count() {
                let id = QueryId(q as u32);
                let la = a.routed_latency_ms(id, mask, 1.0);
                let lb = b.routed_latency_ms(id, mask_p, 1.0);
                prop_assert_eq!(la.map(f64::to_bits), lb.map(f64::to_bits));
            }
        }
    }
}

fn fixture() -> (SchemaShape, Vec<Workload>) {
    let mut config = WorkloadProfile::R1.config(13).scaled(0.2);
    config.n_windows = 4;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    (shape, windows)
}

#[test]
fn degenerate_fleet_reduces_bit_for_bit_to_the_uniform_minimax() {
    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let budget = 1u64 << 24;
    let base = designer.design(windows.last().unwrap(), budget);
    let out = design_replicated(
        &engine,
        &designer,
        &base,
        &windows,
        budget,
        &ReplicaOptions::default(),
    )
    .expect("R=1/k=0 runs");
    // The two-axis objective with one replica and no crash budget is
    // exactly the session's uniform worst-case fold.
    let (kernel, interned) = CostKernel::build(&engine, &windows);
    let epoch = kernel.epoch(&base);
    let direct = interned
        .iter()
        .map(|w| kernel.workload_cost(w, &epoch).avg_ms)
        .fold(0.0f64, f64::max);
    assert_eq!(out.audit.worst_case_bits, direct.to_bits());
    assert_eq!(out.audit.worst_mask, 0);
    assert_eq!(out.design.len(), 1);
    assert_eq!(
        out.design.set_fingerprint(),
        combine_fingerprints(std::iter::once(base.fingerprint()))
    );
}

#[test]
fn env_injected_crash_faults_never_panic_and_audit_identically_across_threads() {
    let _guard = THREAD_KNOB.lock().unwrap();
    // The plan arrives the way a deployment injects it: via the
    // CLIFFGUARD_FAULTS environment variable.
    std::env::set_var(FAULTS_ENV, "replica-crash@1:1,replica-slow@2:0");
    let plan = FaultPlan::from_env()
        .expect("env spec parses")
        .expect("env spec present");
    std::env::remove_var(FAULTS_ENV);

    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let budget = 1u64 << 24;
    let base = designer.design(windows.last().unwrap(), budget);
    let opts = ReplicaOptions {
        replicas: 3,
        max_failures: 1,
        faults: Some(plan),
        ..ReplicaOptions::default()
    };

    let mut baseline: Option<String> = None;
    for threads in [1usize, 8] {
        set_threads(threads);
        let out = design_replicated(&engine, &designer, &base, &windows, budget, &opts)
            .expect("crash faults degrade, never fail");
        let audit = &out.audit;
        // The crash landed (replica 1), the fleet degraded instead of
        // dying, and the failover is on the audit trail.
        assert_eq!(audit.crashed_mask, 0b010, "{}", audit.to_json());
        assert_ne!(audit.slowed_mask, 0, "{}", audit.to_json());
        assert!(
            audit.failovers.iter().any(|f| f.kind == "replica-crash"),
            "{}",
            audit.to_json()
        );
        let shares = audit.routing_shares();
        assert_eq!(
            shares[1].to_bits(),
            0.0f64.to_bits(),
            "crashed replica serves nothing"
        );
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let json = audit.to_json();
        match &baseline {
            None => baseline = Some(json),
            Some(b) => assert_eq!(
                b, &json,
                "audit must be byte-identical at {threads} threads"
            ),
        }
    }
    set_threads(1);
}

#[test]
fn divergent_fleets_are_never_worse_than_uniform_under_any_crash_budget() {
    let (shape, windows) = fixture();
    let catalog = CatalogGenerator::default().generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let designer = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let budget = 1u64 << 24;
    let base = designer.design(windows.last().unwrap(), budget);
    for (replicas, max_failures) in [(2usize, 0usize), (2, 1), (3, 1), (3, 2)] {
        let opts = ReplicaOptions {
            replicas,
            max_failures,
            ..ReplicaOptions::default()
        };
        let out = design_replicated(&engine, &designer, &base, &windows, budget, &opts)
            .expect("fleet design runs");
        assert!(
            out.audit.worst_case() <= out.audit.uniform_worst_case(),
            "R={replicas} k={max_failures}: divergent {} > uniform {}",
            out.audit.worst_case(),
            out.audit.uniform_worst_case()
        );
        for replica in &out.design.replicas {
            assert!(replica.price_bytes(engine.catalog()) <= budget);
        }
    }
}
