//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha stream-cipher core (Bernstein 2008) as a
//! counter-mode generator, exposing [`ChaCha8Rng`], [`ChaCha12Rng`], and
//! [`ChaCha20Rng`] with the `rand` [`SeedableRng`] interface. The word
//! stream is deterministic per seed and platform-independent; it is not
//! byte-for-byte identical to upstream `rand_chacha` (which this workspace
//! never relies on — only on self-consistency across runs).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Counter-mode ChaCha generator with `R` double-rounds... `R` is the
/// round count (8/12/20), applied as `R/2` column+diagonal passes.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key (8 words) + stream id (2 words), fixed after seeding.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    word_pos: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    /// Total 32-bit words drawn from the keystream since seeding.
    ///
    /// This is the generator's logical position: two generators with the
    /// same seed and the same `words_consumed()` produce the same stream
    /// from here on. Checkpoint/resume machinery records it to verify a
    /// resumed session replayed its sampling phase exactly.
    pub fn words_consumed(&self) -> u64 {
        // Before the first refill the counter is 0 and `word_pos` parks at
        // 16 ("block exhausted"); afterwards `counter` is one past the
        // block currently being read.
        if self.counter == 0 {
            0
        } else {
            (self.counter - 1) * 16 + self.word_pos as u64
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

/// ChaCha with 8 rounds — fastest, used for simulation sampling.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds — the original cipher strength.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn words_consumed_tracks_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(a.words_consumed(), 0);
        a.next_u32();
        assert_eq!(a.words_consumed(), 1);
        a.next_u64(); // two words
        assert_eq!(a.words_consumed(), 3);
        for _ in 0..20 {
            a.next_u32(); // crosses a block boundary
        }
        assert_eq!(a.words_consumed(), 23);
        // A fresh generator fast-forwarded by the same number of words
        // continues with the identical stream.
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..23 {
            b.next_u32();
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_uniform_unit() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
