//! Offline stand-in for the `criterion` crate.
//!
//! A small wall-clock benchmarking harness with criterion's calling
//! convention: `Criterion::bench_function`, `benchmark_group` +
//! `sample_size` + `finish`, and the `criterion_group!` /
//! `criterion_main!` macros. Differences from upstream:
//!
//! * In test mode (`--test` on the command line, which is what
//!   `cargo test --benches` passes), every benchmark body runs exactly
//!   once for correctness checking and no timing is reported.
//! * Measurement is a simple warmup + fixed-sample median/mean report on
//!   stdout; there is no HTML report, outlier analysis, or state saving.
//! * A positional command-line argument filters benchmarks by substring,
//!   as with real criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the harness was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run every benchmark once, no timing (`--test`).
    Test,
    /// Warm up and measure.
    Bench,
    /// Compile-only check (`--list` prints names without running).
    List,
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Bench;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--list" => mode = Mode::List,
                "--bench" => {}
                a if a.starts_with("--") => {} // ignore unknown flags
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            mode,
            filter,
            sample_size: 60,
        }
    }
}

impl Criterion {
    /// Runs (or checks) one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks sharing settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run<F>(&self, name: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        match self.mode {
            Mode::List => {
                println!("{name}: benchmark");
            }
            Mode::Test => {
                let mut b = Bencher {
                    mode: Mode::Test,
                    samples: Vec::new(),
                    target_samples: 1,
                };
                f(&mut b);
                println!("test {name} ... ok");
            }
            Mode::Bench => {
                let mut b = Bencher {
                    mode: Mode::Bench,
                    samples: Vec::with_capacity(sample_size),
                    target_samples: sample_size,
                };
                f(&mut b);
                b.report(name);
            }
        }
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs (or checks) one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(&full, n, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; measures the closure handed to
/// [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f`, or runs it once in test mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Warmup + per-iteration timing until we have the target samples or
        // a time budget of ~3s runs out.
        black_box(f());
        let budget = Duration::from_secs(3);
        let started = Instant::now();
        let target = self.target_samples.max(10);
        while self.samples.len() < target && started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

impl Bencher {
    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let n = self.samples.len();
        let total: Duration = self.samples.iter().sum();
        let mean = total / n as u32;
        let median = self.samples[n / 2];
        println!(
            "{name:<44} mean {:>12} median {:>12} ({n} samples)",
            fmt_duration(mean),
            fmt_duration(median)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
