//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock, Condvar}` behind `parking_lot`'s
//! poison-free API: `lock()` / `read()` / `write()` return guards directly
//! instead of `Result`s (a poisoned std lock — a panic while holding the
//! guard — is unwrapped, matching parking_lot's behavior of not
//! propagating poison).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, TryLockError};

/// Mutual exclusion primitive (poison-free API over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock (poison-free API over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_shared_reads() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
