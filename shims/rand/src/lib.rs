//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand` 0.9: the [`RngCore`]
//! / [`Rng`] / [`SeedableRng`] traits, uniform `random()` /
//! `random_range()` sampling, and a `prelude`. Only what the workspace
//! actually calls is implemented. Determinism is the priority: every
//! generator here is seedable and produces an identical stream on every
//! platform and every run.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (deterministic, as
    /// in upstream `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for b in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the generator's full output range
/// (the `StandardUniform` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges samplable uniformly (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` using the widening-multiply method
/// (deterministic, negligible bias for the spans this workspace uses).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its standard range (`[0,1)` for
    /// floats, full width for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with random data (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used for seed expansion and as a simple default generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a 64-bit state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];
    fn from_seed(seed: [u8; 8]) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A small, fast generator (here: SplitMix64).
    pub type SmallRng = super::SplitMix64;
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SplitMix64::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(3..10u32);
            assert!((3..10).contains(&x));
            let y = r.random_range(2..=20u64);
            assert!((2..=20).contains(&y));
            let z = r.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
