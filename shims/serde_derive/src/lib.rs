//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (which are `Value`-based, see `shims/serde`). The input token
//! stream is parsed by hand — no `syn`/`quote` are available offline — so
//! the supported grammar is exactly what this workspace uses:
//!
//! * structs with named fields (optionally `#[serde(skip)]` per field)
//! * tuple structs (newtypes serialize transparently as the inner value)
//! * enums whose variants are unit or tuple variants
//!
//! Generics are intentionally unsupported (no derived type in the
//! workspace is generic); the macro panics with a clear message if it
//! meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct NamedField {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<NamedField>),
    /// Tuple fields: arity only (types are never needed for codegen).
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Returns `true` if an attribute group's tokens are `serde(... skip ...)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes a run of leading attributes; reports whether any was
/// `#[serde(skip)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // Optional `!` for inner attributes (not expected, but harmless).
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '!' {
                        tokens.next();
                    }
                }
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if attr_is_serde_skip(&g) {
                            skip = true;
                        }
                    }
                    other => panic!("serde_derive: malformed attribute near {other:?}"),
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes `pub`, `pub(...)` if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let skip = skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        consume_type_until_comma(&mut tokens);
        fields.push(NamedField { name, skip });
    }
    fields
}

/// Skips type tokens up to (and including) the next top-level comma,
/// tracking `<...>` nesting so commas inside generics don't terminate.
fn consume_type_until_comma(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    for t in tokens.by_ref() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        consume_type_until_comma(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive shim: struct variant `{name}` is not supported")
            }
            _ => Fields::Unit,
        };
        // Eat up to and including the separating comma (covers `= disc` too).
        for t in tokens.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut s =
                        String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
                    for f in fs.iter().filter(|f| !f.skip) {
                        s.push_str(&format!(
                            "m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                            n = f.name
                        ));
                    }
                    s.push_str("::serde::Value::Map(m)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(f0))]),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({b}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Seq(vec![{vl}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            vl = vals.join(", ")
                        ));
                    }
                    Fields::Named(_) => unreachable!(),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut s = format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::Error::msg(\"{name}: expected map\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n"
                    );
                    for f in fs {
                        if f.skip {
                            s.push_str(&format!(
                                "{n}: ::std::default::Default::default(),\n",
                                n = f.name
                            ));
                        } else {
                            s.push_str(&format!(
                                "{n}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{n}\"))?,\n",
                                n = f.name
                            ));
                        }
                    }
                    s.push_str("})");
                    s
                }
                Fields::Tuple(1) => {
                    format!(
                        "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                    )
                }
                Fields::Tuple(n) => {
                    let mut s = format!(
                        "let seq = v.as_seq().ok_or_else(|| ::serde::Error::msg(\"{name}: expected sequence\"))?;\n\
                         if seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"{name}: wrong tuple arity\")); }}\n\
                         ::std::result::Result::Ok({name}("
                    );
                    for i in 0..*n {
                        s.push_str(&format!("::serde::Deserialize::from_value(&seq[{i}])?, "));
                    }
                    s.push_str("))");
                    s
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Fields::Tuple(1) => map_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(val)?)),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{v}\" => {{\n\
                             let seq = val.as_seq().ok_or_else(|| ::serde::Error::msg(\"{name}::{v}: expected sequence\"))?;\n\
                             if seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"{name}::{v}: wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}(",
                            v = v.name
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::from_value(&seq[{i}])?, "
                            ));
                        }
                        arm.push_str("))\n},\n");
                        map_arms.push_str(&arm);
                    }
                    Fields::Named(_) => unreachable!(),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(&format!(\"{name}: unknown variant {{other}}\"))),\n}},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (k, val) = &m[0];\n\
                 match k.as_str() {{\n{map_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(&format!(\"{name}: unknown variant {{other}}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"{name}: expected variant\")),\n\
                 }}\n}}\n}}"
            )
        }
    }
}
