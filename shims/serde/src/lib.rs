//! Offline stand-in for the `serde` crate.
//!
//! Real serde is a generic serializer framework; this workspace only ever
//! converts values to and from JSON (via the sibling `serde_json` shim), so
//! the traits here go through one concrete intermediate representation,
//! [`Value`], instead of a generic `Serializer`/`Deserializer` pair:
//!
//! * [`Serialize::to_value`] renders a value into a [`Value`] tree;
//! * [`Deserialize::from_value`] rebuilds a value from a [`Value`] tree.
//!
//! The derive macros (`shims/serde_derive`) target these traits and honor
//! `#[serde(skip)]`. Maps are kept as ordered `Vec<(String, Value)>` so
//! serialization order is deterministic (declaration order).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model (a superset of JSON: integers keep their
/// 64-bit width instead of flattening to f64).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in a serialized map, yielding [`Value::Null`] when absent
/// (so `Option` fields deserialize to `None` rather than erroring, matching
/// upstream serde's treatment of missing optional fields).
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Alias matching serde's `Error::custom`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A value rebuildable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitives -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| Error::msg("tuple too short"))?
                )?,)+))
            }
        }
    )+};
}
impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn map_get_missing_is_null() {
        let m = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(map_get(&m, "a"), &Value::U64(1));
        assert_eq!(map_get(&m, "b"), &Value::Null);
    }
}
