//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core of proptest without shrinking:
//! a [`Strategy`] produces values from a deterministic per-test RNG, and
//! the [`proptest!`] macro runs each property for `ProptestConfig::cases`
//! generated inputs. On failure the offending inputs are printed (they
//! are `Debug`), but no shrinking is attempted — the seed is fixed per
//! test name, so failures reproduce exactly on re-run.
//!
//! Supported surface (what this workspace uses):
//! * integer / float `Range` strategies (`0..10u32`, `-5.0f64..5.0`)
//! * tuples of strategies up to arity 6
//! * [`collection::vec`] and [`collection::btree_set`] with `Range<usize>`
//!   size bounds
//! * [`Strategy::prop_map`] and [`Strategy::prop_filter`]
//! * `&str` regex-subset strategies (char classes + `{m,n}` counts)
//! * [`Just`], `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//! * `#![proptest_config(ProptestConfig::with_cases(n))]`

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng, SplitMix64};
use std::fmt;
use std::ops::Range;

/// How many times a filter or set-insertion may retry before giving up.
const MAX_REJECTS: usize = 10_000;

/// Per-test deterministic random source.
pub struct TestRng(SplitMix64);

impl TestRng {
    /// Seeds the generator from a test's fully qualified name, so each
    /// property gets a distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(SplitMix64::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The produced value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retains only values passing `pred`, regenerating on rejection.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Boxes the strategy (API-compat convenience).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {MAX_REJECTS} consecutive values",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.new_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Regex-subset string strategy: a pattern of char classes / literals with
/// optional `{m}`, `{m,n}`, `*`, `+`, `?` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

mod regex_gen {
    use super::TestRng;
    use rand::Rng;

    enum Atom {
        /// One of these chars, uniformly.
        Class(Vec<char>),
        /// Exactly this char.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    let negated = chars.get(i) == Some(&'^');
                    if negated {
                        i += 1;
                    }
                    let mut class_chars = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        // Range like `a-z` (a `-` that is not last in class).
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).map(|&c| c != ']').unwrap_or(false)
                        {
                            let hi = chars[i + 2];
                            for x in c..=hi {
                                class_chars.push(x);
                            }
                            i += 3;
                        } else {
                            class_chars.push(c);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    if negated {
                        // Printable ASCII minus the class.
                        for b in 0x20u8..0x7f {
                            let c = b as char;
                            if !class_chars.contains(&c) {
                                set.push(c);
                            }
                        }
                    } else {
                        set = class_chars;
                    }
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::Class((0x20u8..0x7f).map(|b| b as char).collect())
                }
                '\\' => {
                    i += 1;
                    let c = unescape(*chars.get(i).unwrap_or(&'\\'));
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .expect("regex strategy: unterminated `{`");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("regex strategy: bad bound"),
                            hi.trim().parse().expect("regex strategy: bad bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("regex strategy: bad count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.random_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "regex strategy: empty char class");
                        out.push(set[rng.random_range(0..set.len())]);
                    }
                }
            }
        }
        out
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng, MAX_REJECTS};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.min..self.max)
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Generates `BTreeSet`s whose elements come from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < MAX_REJECTS {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            // Like upstream proptest, a small element domain may yield fewer
            // elements than requested; the minimum is still enforced when
            // reachable, and `target >= min` always holds here.
            set
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

// Re-export for macro hygiene-free use in expansions.
#[doc(hidden)]
pub use std as __std;

/// Runs properties over generated inputs (see crate docs for the supported
/// grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($tail)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($tail:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&{ $strat }, &mut rng);)+
                let __inputs = format!(
                    concat!("case {} of ", stringify!($name), ":",
                        $(" ", stringify!($arg), " = {:?}",)+),
                    __case, $(&$arg,)+
                );
                let __guard = $crate::FailureContext::new(__inputs);
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_items! { ($cfg) $($tail)* }
    };
}

/// Prints the generated inputs if the test body panics (poor man's
/// counterexample report; no shrinking).
pub struct FailureContext {
    inputs: Option<String>,
}

impl FailureContext {
    /// Arms the context with a description of the generated inputs.
    pub fn new(inputs: String) -> Self {
        Self {
            inputs: Some(inputs),
        }
    }

    /// Disarms the context (the case passed).
    pub fn disarm(mut self) {
        self.inputs = None;
    }
}

impl Drop for FailureContext {
    fn drop(&mut self) {
        if let Some(inputs) = &self.inputs {
            if std::thread::panicking() {
                eprintln!("proptest failure inputs: {inputs}");
            }
        }
    }
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0..10u32, y in -2.0f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0..5u8, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn btree_set_bounds(s in crate::collection::btree_set(0..100u32, 1..5)) {
            prop_assert!(!s.is_empty() && s.len() < 5);
        }

        #[test]
        fn map_and_filter(v in (0..100u32).prop_map(|x| x * 2).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn regex_strings(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s: &dyn Fn(&mut TestRng) -> u32 = &|r| Strategy::new_value(&(0..1000u32), r);
        for _ in 0..50 {
            assert_eq!(s(&mut a), s(&mut b));
        }
    }
}
