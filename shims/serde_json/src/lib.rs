//! Offline stand-in for `serde_json`.
//!
//! Serializes the shim `serde::Value` model to JSON text and parses JSON
//! text back, providing the three entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`]. Integers keep
//! 64-bit precision; non-finite floats serialize as `null` (matching
//! `serde_json::Value`'s behavior). Object key order is preserved.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when known.
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Self {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// A JSON serialization result.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip float formatting; force a
                // fractional part so the value re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::at("expected a JSON value", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::at("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::at("bad \\u escape", start))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::at("bad \\u escape", start))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::at("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at("invalid utf-8", start))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(v, 42);
        let v: f64 = from_str(&to_string(&1.25f64).unwrap()).unwrap();
        assert_eq!(v, 1.25);
        let v: String = from_str(&to_string("a\"b\\c\nd").unwrap()).unwrap();
        assert_eq!(v, "a\"b\\c\nd");
        let v: Option<u32> = from_str("null").unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn roundtrip_structures() {
        let data = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string_pretty(&data).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn float_always_reparses_as_float() {
        let json = to_string(&3.0f64).unwrap();
        assert_eq!(json, "3.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
