//! Weighted workloads.
//!
//! A workload `W` is a weighted multiset of queries. Weights are raw
//! occurrence counts (or importance weights after a `MoveWorkload` step);
//! the distance metrics operate on *normalized* frequencies `r_i`
//! (Section 5), which [`Workload::normalized`] provides.

use crate::query::{Query, QuerySignature};
use crate::template::Template;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A query together with its (raw, unnormalized) weight in a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightedQuery {
    /// The query. Shared so that merging workloads never deep-copies.
    pub query: Arc<Query>,
    /// Raw weight (frequency count or importance weight, `> 0`).
    pub weight: f64,
}

/// A weighted multiset of queries.
///
/// Queries are deduplicated by [`QuerySignature`]: adding an existing query
/// accumulates its weight.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    entries: Vec<WeightedQuery>,
    #[serde(skip)]
    index: HashMap<QuerySignature, usize>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a workload from `(query, weight)` pairs.
    pub fn from_queries<I>(iter: I) -> Self
    where
        I: IntoIterator<Item = (Query, f64)>,
    {
        let mut w = Self::new();
        for (q, wt) in iter {
            w.add(Arc::new(q), wt);
        }
        w
    }

    /// Adds `weight` occurrences of `query` (accumulating if present).
    pub fn add(&mut self, query: Arc<Query>, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weights must be positive"
        );
        let sig = query.signature();
        match self.index.get(&sig) {
            Some(&i) => self.entries[i].weight += weight,
            None => {
                self.index.insert(sig, self.entries.len());
                self.entries.push(WeightedQuery { query, weight });
            }
        }
    }

    /// Number of *distinct* queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of raw weights.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|e| e.weight).sum()
    }

    /// Raw weight of `query` (0 if absent).
    pub fn weight_of(&self, query: &Query) -> f64 {
        self.weight_of_sig(query.signature())
    }

    /// Raw weight by signature (0 if absent).
    pub fn weight_of_sig(&self, sig: QuerySignature) -> f64 {
        self.index
            .get(&sig)
            .map_or(0.0, |&i| self.entries[i].weight)
    }

    /// Iterates `(query, raw_weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<Query>, f64)> {
        self.entries.iter().map(|e| (&e.query, e.weight))
    }

    /// Iterates `(query, normalized_frequency)`; frequencies sum to 1.
    pub fn normalized(&self) -> impl Iterator<Item = (&Arc<Query>, f64)> {
        let total = self.total_weight().max(f64::MIN_POSITIVE);
        self.entries
            .iter()
            .map(move |e| (&e.query, e.weight / total))
    }

    /// The distinct queries.
    pub fn queries(&self) -> impl Iterator<Item = &Arc<Query>> {
        self.entries.iter().map(|e| &e.query)
    }

    /// Merges `other` into `self`, scaling other's weights by `scale`.
    pub fn merge_scaled(&mut self, other: &Workload, scale: f64) {
        for (q, w) in other.iter() {
            if w * scale > 0.0 {
                self.add(Arc::clone(q), w * scale);
            }
        }
    }

    /// Union of two workloads (weights added).
    pub fn union(&self, other: &Workload) -> Workload {
        let mut w = self.clone_rebuilt();
        w.merge_scaled(other, 1.0);
        w
    }

    /// Normalized frequency histogram over templates (Figure 5's unit of
    /// analysis).
    pub fn template_histogram(&self) -> HashMap<Template, f64> {
        let mut h: HashMap<Template, f64> = HashMap::new();
        for (q, f) in self.normalized() {
            *h.entry(Template::of(q)).or_insert(0.0) += f;
        }
        h
    }

    /// Fraction of this workload's weight whose template also occurs in
    /// `other` — the y-axis of the paper's Figure 5.
    pub fn shared_template_fraction(&self, other: &Workload) -> f64 {
        let theirs: std::collections::HashSet<Template> =
            other.queries().map(|q| Template::of(q)).collect();
        self.normalized()
            .filter(|(q, _)| theirs.contains(&Template::of(q)))
            .map(|(_, f)| f)
            .sum()
    }

    /// Rebuilds the signature index (needed after deserialization, where the
    /// index is skipped). Also used internally by `clone`-then-mutate paths.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.query.signature(), i))
            .collect();
    }

    fn clone_rebuilt(&self) -> Workload {
        let mut w = self.clone();
        if w.index.len() != w.entries.len() {
            w.rebuild_index();
        }
        w
    }

    /// Drops queries not referencing any column (the paper excludes e.g.
    /// `SELECT version()` from the analysis).
    pub fn retain_column_referencing(&mut self) {
        self.entries.retain(|e| e.query.references_columns());
        self.rebuild_index();
    }

    /// Workload compression (the heuristic of the paper's refs [24, 45],
    /// which commercial designers use to avoid over-fitting): keeps the
    /// most frequent queries covering at least `mass` (in `(0, 1]`) of the
    /// total weight, dropping the long tail of one-off queries.
    pub fn compress_top_mass(&self, mass: f64) -> Workload {
        assert!(mass > 0.0 && mass <= 1.0, "mass must be in (0, 1]");
        let total = self.total_weight();
        let mut order: Vec<&WeightedQuery> = self.entries.iter().collect();
        order.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        let mut out = Workload::new();
        let mut acc = 0.0;
        for e in order {
            if acc >= mass * total && !out.is_empty() {
                break;
            }
            out.add(Arc::clone(&e.query), e.weight);
            acc += e.weight;
        }
        out
    }
}

impl FromIterator<(Query, f64)> for Workload {
    fn from_iter<I: IntoIterator<Item = (Query, f64)>>(iter: I) -> Self {
        Workload::from_queries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;
    use crate::query::{PredOp, QueryBuilder};

    fn q(sel: &[u32]) -> Query {
        QueryBuilder::new(TableId(0)).select(sel).build()
    }

    #[test]
    fn add_accumulates_duplicates() {
        let mut w = Workload::new();
        w.add(Arc::new(q(&[1])), 2.0);
        w.add(Arc::new(q(&[1])), 3.0);
        w.add(Arc::new(q(&[2])), 1.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_weight(), 6.0);
        assert_eq!(w.weight_of(&q(&[1])), 5.0);
        assert_eq!(w.weight_of(&q(&[9])), 0.0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let w = Workload::from_queries([(q(&[1]), 1.0), (q(&[2]), 3.0)]);
        let total: f64 = w.normalized().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let f1 = w
            .normalized()
            .find(|(query, _)| ***query == q(&[2]))
            .unwrap()
            .1;
        assert!((f1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn union_adds_weights() {
        let a = Workload::from_queries([(q(&[1]), 1.0)]);
        let b = Workload::from_queries([(q(&[1]), 2.0), (q(&[2]), 1.0)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.weight_of(&q(&[1])), 3.0);
    }

    #[test]
    fn merge_scaled_applies_factor() {
        let mut a = Workload::from_queries([(q(&[1]), 1.0)]);
        let b = Workload::from_queries([(q(&[2]), 4.0)]);
        a.merge_scaled(&b, 0.5);
        assert_eq!(a.weight_of(&q(&[2])), 2.0);
    }

    #[test]
    fn shared_template_fraction_weighs_overlap() {
        let a = Workload::from_queries([(q(&[1]), 3.0), (q(&[2]), 1.0)]);
        let b = Workload::from_queries([(q(&[1]), 5.0)]);
        assert!((a.shared_template_fraction(&b) - 0.75).abs() < 1e-12);
        assert!((b.shared_template_fraction(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retain_column_referencing_drops_trivial() {
        let mut w =
            Workload::from_queries([(q(&[1]), 1.0), (QueryBuilder::new(TableId(0)).build(), 5.0)]);
        w.retain_column_referencing();
        assert_eq!(w.len(), 1);
        // Index still consistent after retain.
        assert_eq!(w.weight_of(&q(&[1])), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut w = Workload::new();
        w.add(Arc::new(q(&[1])), 0.0);
    }

    #[test]
    fn compress_top_mass_keeps_heavy_hitters() {
        let w = Workload::from_queries([
            (q(&[1]), 70.0),
            (q(&[2]), 20.0),
            (q(&[3]), 6.0),
            (q(&[4]), 4.0),
        ]);
        let c = w.compress_top_mass(0.8);
        assert_eq!(c.len(), 2);
        assert_eq!(c.weight_of(&q(&[1])), 70.0);
        assert_eq!(c.weight_of(&q(&[2])), 20.0);
        assert_eq!(c.weight_of(&q(&[3])), 0.0);
        // mass = 1 keeps everything
        assert_eq!(w.compress_top_mass(1.0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "mass")]
    fn compress_rejects_zero_mass() {
        let w = Workload::from_queries([(q(&[1]), 1.0)]);
        let _ = w.compress_top_mass(0.0);
    }

    #[test]
    fn template_histogram_groups_by_template() {
        let a = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(2, PredOp::Eq, 0.1)
            .build();
        let b = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(2, PredOp::Range, 0.5)
            .build();
        let w = Workload::from_queries([(a, 1.0), (b, 1.0)]);
        let h = w.template_histogram();
        assert_eq!(h.len(), 1);
        assert!((h.values().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
