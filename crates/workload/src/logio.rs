//! Text import of query logs.
//!
//! The paper's pipeline starts from a customer query log: timestamped SQL
//! statements, of which only a subset parses against the current schema
//! ("430+K time-stamped queries … out of which 15.5K queries conform to
//! their latest schema (i.e., can be parsed)"). This module reads that
//! format — one `epoch_seconds<TAB>SQL` record per line — parsing what it
//! can and reporting what it skipped, exactly like the paper's ingest.
//!
//! The matching export (rendering structural queries back to SQL) lives in
//! `cliffguard-storage`, which knows the catalog's names.

use crate::log::QueryLog;
use crate::parser::parse_query;
use crate::resolve::NameResolver;
use std::sync::Arc;

/// Outcome of importing a text log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Records parsed into queries.
    pub parsed: usize,
    /// Records skipped: unparseable SQL (schema drift, unsupported syntax).
    pub skipped_sql: usize,
    /// Records skipped: malformed lines (no tab, bad timestamp).
    pub skipped_malformed: usize,
}

impl ImportReport {
    /// Total lines examined (excluding blanks/comments).
    pub fn total(&self) -> usize {
        self.parsed + self.skipped_sql + self.skipped_malformed
    }
}

/// Parses a `epoch_seconds<TAB>SQL` text log against a schema resolver.
///
/// Blank lines and lines starting with `#` are ignored. Unparseable
/// records are counted, not fatal — a year-old log never fully conforms to
/// the current schema.
pub fn import_log(text: &str, resolver: &dyn NameResolver) -> (QueryLog, ImportReport) {
    let mut entries = Vec::new();
    let mut report = ImportReport::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((ts, sql)) = line.split_once('\t') else {
            report.skipped_malformed += 1;
            continue;
        };
        let Ok(timestamp) = ts.trim().parse::<u64>() else {
            report.skipped_malformed += 1;
            continue;
        };
        match parse_query(sql, resolver) {
            Ok(q) => {
                entries.push(crate::log::LogEntry {
                    timestamp,
                    query: Arc::new(q),
                });
                report.parsed += 1;
            }
            Err(_) => report.skipped_sql += 1,
        }
    }
    (QueryLog::from_entries(entries), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::SimpleResolver;

    fn resolver() -> SimpleResolver {
        let mut r = SimpleResolver::new();
        r.add_table("sales", &["id", "amount", "region"]);
        r
    }

    #[test]
    fn imports_well_formed_records() {
        let text = "# a comment\n\
                    100\tSELECT amount FROM sales WHERE region = 'w'\n\
                    \n\
                    50\tSELECT id FROM sales\n";
        let (log, report) = import_log(text, &resolver());
        assert_eq!(
            report,
            ImportReport {
                parsed: 2,
                skipped_sql: 0,
                skipped_malformed: 0
            }
        );
        assert_eq!(log.len(), 2);
        // sorted by timestamp despite input order
        assert_eq!(log.entries()[0].timestamp, 50);
    }

    #[test]
    fn skips_unparseable_sql_like_the_paper() {
        let text = "1\tSELECT amount FROM sales\n\
                    2\tSELECT nope FROM sales\n\
                    3\tDELETE FROM sales\n";
        let (log, report) = import_log(text, &resolver());
        assert_eq!(report.parsed, 1);
        assert_eq!(report.skipped_sql, 2);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn skips_malformed_lines() {
        let text = "no-tab-here\nnot_a_ts\tSELECT id FROM sales\n9\tSELECT id FROM sales\n";
        let (log, report) = import_log(text, &resolver());
        assert_eq!(report.skipped_malformed, 2);
        assert_eq!(report.parsed, 1);
        assert_eq!(report.total(), 3);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn empty_input_empty_log() {
        let (log, report) = import_log("", &resolver());
        assert!(log.is_empty());
        assert_eq!(report.total(), 0);
    }
}
