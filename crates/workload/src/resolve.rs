//! Name resolution for the SQL parser.
//!
//! The parser is schema-driven: it maps table and column names to the dense
//! ids used everywhere else. The catalog lives in `cliffguard-storage`
//! (which depends on this crate), so resolution is abstracted behind
//! [`NameResolver`]; [`SimpleResolver`] is a self-contained implementation
//! for tests and text-only workflows.

use crate::ids::{ColumnId, TableId};
use crate::query::PredOp;
use std::collections::HashMap;

/// Maps SQL identifiers to catalog ids and supplies default selectivities.
pub trait NameResolver {
    /// Resolves a table name (case-insensitive).
    fn resolve_table(&self, name: &str) -> Option<TableId>;

    /// Resolves a column name. `table_hint` is the table named by a
    /// qualified reference (`t.col`) or `None` for bare names, in which case
    /// the resolver searches the given in-scope tables.
    fn resolve_column(
        &self,
        table_hint: Option<TableId>,
        in_scope: &[TableId],
        name: &str,
    ) -> Option<ColumnId>;

    /// All columns of a table (used to expand `SELECT *`).
    fn table_columns(&self, table: TableId) -> Vec<ColumnId>;

    /// Default selectivity estimate for a predicate on `column` when the
    /// parser has no statistics. Statistics-backed resolvers override this.
    fn default_selectivity(&self, _column: ColumnId, op: PredOp) -> f64 {
        match op {
            PredOp::Eq => 0.01,
            PredOp::Range => 0.2,
            PredOp::Like => 0.1,
            PredOp::In => 0.05,
        }
    }
}

/// An in-memory resolver built from `(table, [columns…])` names.
#[derive(Debug, Clone, Default)]
pub struct SimpleResolver {
    tables: HashMap<String, TableId>,
    // (table, lowercase column name) -> id
    columns: HashMap<(TableId, String), ColumnId>,
    per_table: Vec<Vec<ColumnId>>,
    next_col: u32,
}

impl SimpleResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table with the given column names, assigning dense global
    /// column ids in registration order. Returns the new table id.
    pub fn add_table(&mut self, name: &str, columns: &[&str]) -> TableId {
        let tid = TableId(self.per_table.len() as u32);
        self.tables.insert(name.to_ascii_lowercase(), tid);
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            let cid = ColumnId(self.next_col);
            self.next_col += 1;
            self.columns.insert((tid, c.to_ascii_lowercase()), cid);
            cols.push(cid);
        }
        self.per_table.push(cols);
        tid
    }

    /// Total number of registered columns.
    pub fn column_count(&self) -> usize {
        self.next_col as usize
    }
}

impl NameResolver for SimpleResolver {
    fn resolve_table(&self, name: &str) -> Option<TableId> {
        self.tables.get(&name.to_ascii_lowercase()).copied()
    }

    fn resolve_column(
        &self,
        table_hint: Option<TableId>,
        in_scope: &[TableId],
        name: &str,
    ) -> Option<ColumnId> {
        let key = name.to_ascii_lowercase();
        if let Some(t) = table_hint {
            return self.columns.get(&(t, key)).copied();
        }
        in_scope
            .iter()
            .find_map(|&t| self.columns.get(&(t, key.clone())).copied())
    }

    fn table_columns(&self, table: TableId) -> Vec<ColumnId> {
        self.per_table
            .get(table.index())
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_tables_and_columns() {
        let mut r = SimpleResolver::new();
        let t0 = r.add_table("Sales", &["id", "amount"]);
        let t1 = r.add_table("items", &["id", "name"]);
        assert_eq!(r.resolve_table("sales"), Some(t0));
        assert_eq!(r.resolve_table("SALES"), Some(t0));
        assert_eq!(r.resolve_table("nope"), None);
        // Global ids are dense across tables.
        assert_eq!(r.resolve_column(Some(t0), &[], "amount"), Some(ColumnId(1)));
        assert_eq!(r.resolve_column(Some(t1), &[], "id"), Some(ColumnId(2)));
        // Bare name resolution searches scope in order.
        assert_eq!(r.resolve_column(None, &[t1, t0], "id"), Some(ColumnId(2)));
        assert_eq!(r.resolve_column(None, &[t0, t1], "id"), Some(ColumnId(0)));
        assert_eq!(r.resolve_column(None, &[t0], "name"), None);
        assert_eq!(r.table_columns(t1), vec![ColumnId(2), ColumnId(3)]);
        assert_eq!(r.column_count(), 4);
    }

    #[test]
    fn default_selectivities_ordered_by_restrictiveness() {
        let r = SimpleResolver::new();
        let c = ColumnId(0);
        assert!(r.default_selectivity(c, PredOp::Eq) < r.default_selectivity(c, PredOp::In));
        assert!(r.default_selectivity(c, PredOp::In) < r.default_selectivity(c, PredOp::Range));
    }
}
