//! Workload interning: dense query ids across a family of workloads.
//!
//! CliffGuard's descent loop re-costs the *same* Γ-neighborhood samples
//! against a stream of candidate designs. The samples share most of their
//! queries (they are perturbations of one target workload), so costing them
//! through per-query hashing wastes both the structural hash and a sharded
//! map probe on every lookup. [`WorkloadInterner`] assigns each distinct
//! query (by [`QuerySignature`]) a dense [`QueryId`] and re-expresses every
//! workload as a frequency vector over those ids, so that
//! `cost(w, d) = Σ freq[i] · lat[d][i]` becomes a weighted dot product over
//! a per-design latency array.
//!
//! The interner is deliberately order-preserving: an [`InternedWorkload`]
//! keeps its source workload's entry order, so downstream cost folds visit
//! queries in exactly the order `Workload::iter` would — a requirement for
//! bit-identical f64 reductions.

use crate::query::{Query, QuerySignature};
use crate::workload::Workload;
use std::collections::HashMap;
use std::sync::Arc;

/// Dense identifier of a distinct query inside a [`WorkloadInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a usize index into per-design latency vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A workload re-expressed as `(QueryId, weight)` pairs, preserving the
/// source workload's entry order.
///
/// Alongside the pair view it keeps the same data as two flat parallel
/// slices ([`ids`](Self::ids) / [`weights`](Self::weights)), so cost folds
/// can run branch-free passes over plain `u32`/`f64` arrays — no tuple
/// striding, no hash probe, no `Option` — while visiting entries in the
/// identical order (bit-identical f64 reductions).
#[derive(Debug, Clone, Default)]
pub struct InternedWorkload {
    entries: Vec<(QueryId, f64)>,
    ids: Vec<u32>,
    weights: Vec<f64>,
}

impl InternedWorkload {
    /// Builds directly from `(id, weight)` pairs (entry order is kept).
    ///
    /// Primarily for benches and tests that synthesize workloads without
    /// an interner; production workloads come from
    /// [`WorkloadInterner::intern`].
    pub fn from_entries(entries: Vec<(QueryId, f64)>) -> Self {
        let ids = entries.iter().map(|&(id, _)| id.0).collect();
        let weights = entries.iter().map(|&(_, w)| w).collect();
        Self {
            entries,
            ids,
            weights,
        }
    }

    /// Iterates `(id, raw_weight)` in the source workload's entry order.
    pub fn entries(&self) -> &[(QueryId, f64)] {
        &self.entries
    }

    /// The raw query ids, in entry order (parallel to
    /// [`weights`](Self::weights)).
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The raw weights, in entry order (parallel to [`ids`](Self::ids)).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of distinct queries in the source workload.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the source workload was empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of raw weights (matches `Workload::total_weight` up to f64
    /// summation order, which is identical because entry order is kept).
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }
}

/// Dedupes structurally identical queries across many workloads into dense
/// [`QueryId`]s.
///
/// Typical use: intern the target workload and every Γ-neighborhood sample
/// once per design session, then cost each `(workload, design)` pair as a
/// dot product against a per-design latency vector (`DesignEpoch` in
/// `cliffguard-sim`).
#[derive(Debug, Default)]
pub struct WorkloadInterner {
    queries: Vec<Arc<Query>>,
    by_sig: HashMap<QuerySignature, u32>,
    raw_entries: u64,
}

impl WorkloadInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a single query, returning its dense id (existing or new).
    pub fn intern_query(&mut self, query: &Arc<Query>) -> QueryId {
        let sig = query.signature();
        match self.by_sig.get(&sig) {
            Some(&id) => QueryId(id),
            None => {
                let id = u32::try_from(self.queries.len()).expect("more than u32::MAX queries");
                self.by_sig.insert(sig, id);
                self.queries.push(Arc::clone(query));
                QueryId(id)
            }
        }
    }

    /// Interns every entry of `workload`, preserving entry order.
    pub fn intern(&mut self, workload: &Workload) -> InternedWorkload {
        let entries = workload
            .iter()
            .map(|(q, wt)| {
                self.raw_entries += 1;
                (self.intern_query(q), wt)
            })
            .collect();
        InternedWorkload::from_entries(entries)
    }

    /// Looks up the id of an already-interned query (`None` if unseen).
    pub fn id_of(&self, query: &Query) -> Option<QueryId> {
        self.by_sig.get(&query.signature()).map(|&id| QueryId(id))
    }

    /// The query behind a dense id.
    pub fn query(&self, id: QueryId) -> &Arc<Query> {
        &self.queries[id.index()]
    }

    /// All distinct queries, indexed by [`QueryId`].
    pub fn queries(&self) -> &[Arc<Query>] {
        &self.queries
    }

    /// Number of distinct queries interned so far.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total workload entries fed through [`WorkloadInterner::intern`]
    /// (before deduplication).
    pub fn raw_entries(&self) -> u64 {
        self.raw_entries
    }

    /// Rebuilds the table keeping only queries for which `keep` returns
    /// true, reassigning dense ids in the surviving order. Returns the
    /// old→new id map (`map[old.index()]` is `None` for evicted queries).
    ///
    /// This is the streaming-ingest eviction hook: an unbounded log keeps
    /// interning fresh statements, and without compaction the table (and
    /// every per-design latency vector indexed by it) grows without limit.
    /// Callers holding pre-compaction ids — interned workloads, cost-kernel
    /// epochs, statement caches — must remap through the returned map or
    /// drop those ids. `raw_entries` is cumulative and is preserved.
    pub fn compact<F>(&mut self, mut keep: F) -> Vec<Option<QueryId>>
    where
        F: FnMut(QueryId, &Arc<Query>) -> bool,
    {
        let old = std::mem::take(&mut self.queries);
        self.by_sig.clear();
        let mut map = Vec::with_capacity(old.len());
        for (i, q) in old.into_iter().enumerate() {
            let old_id = QueryId(i as u32);
            if keep(old_id, &q) {
                let id = self.queries.len() as u32;
                self.by_sig.insert(q.signature(), id);
                self.queries.push(q);
                map.push(Some(QueryId(id)));
            } else {
                map.push(None);
            }
        }
        map
    }

    /// `raw_entries / distinct` — how much work interning saves. 1.0 means
    /// no cross-workload sharing; Γ-neighborhoods typically sit well above.
    pub fn dedup_ratio(&self) -> f64 {
        if self.queries.is_empty() {
            1.0
        } else {
            self.raw_entries as f64 / self.queries.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;
    use crate::query::QueryBuilder;

    fn q(sel: &[u32]) -> Query {
        QueryBuilder::new(TableId(0)).select(sel).build()
    }

    #[test]
    fn dedupes_across_workloads() {
        let a = Workload::from_queries([(q(&[1]), 2.0), (q(&[2]), 1.0)]);
        let b = Workload::from_queries([(q(&[2]), 5.0), (q(&[3]), 1.0)]);
        let mut interner = WorkloadInterner::new();
        let ia = interner.intern(&a);
        let ib = interner.intern(&b);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.raw_entries(), 4);
        assert!((interner.dedup_ratio() - 4.0 / 3.0).abs() < 1e-12);
        // Shared query maps to the same id in both workloads.
        assert_eq!(ia.entries()[1].0, ib.entries()[0].0);
    }

    #[test]
    fn preserves_entry_order_and_weights() {
        let w = Workload::from_queries([(q(&[3]), 1.5), (q(&[1]), 2.5), (q(&[2]), 0.5)]);
        let mut interner = WorkloadInterner::new();
        let iw = interner.intern(&w);
        let weights: Vec<f64> = iw.entries().iter().map(|&(_, wt)| wt).collect();
        assert_eq!(weights, vec![1.5, 2.5, 0.5]);
        for ((id, _), (query, _)) in iw.entries().iter().zip(w.iter()) {
            assert_eq!(
                interner.query(*id).signature(),
                query.signature(),
                "entry order must match the source workload"
            );
        }
        assert_eq!(iw.total_weight(), w.total_weight());
    }

    #[test]
    fn flat_slices_mirror_the_entry_pairs() {
        let w = Workload::from_queries([(q(&[3]), 1.5), (q(&[1]), 2.5), (q(&[2]), 0.5)]);
        let mut interner = WorkloadInterner::new();
        let iw = interner.intern(&w);
        assert_eq!(iw.ids().len(), iw.len());
        assert_eq!(iw.weights().len(), iw.len());
        for (i, &(id, wt)) in iw.entries().iter().enumerate() {
            assert_eq!(iw.ids()[i], id.0);
            assert_eq!(iw.weights()[i].to_bits(), wt.to_bits());
        }
        let direct = InternedWorkload::from_entries(iw.entries().to_vec());
        assert_eq!(direct.ids(), iw.ids());
    }

    #[test]
    fn id_of_finds_interned_only() {
        let w = Workload::from_queries([(q(&[1]), 1.0)]);
        let mut interner = WorkloadInterner::new();
        let _ = interner.intern(&w);
        assert!(interner.id_of(&q(&[1])).is_some());
        assert!(interner.id_of(&q(&[9])).is_none());
    }

    #[test]
    fn compact_reassigns_dense_ids_and_reports_the_map() {
        let mut interner = WorkloadInterner::new();
        let w = Workload::from_queries([(q(&[1]), 1.0), (q(&[2]), 1.0), (q(&[3]), 1.0)]);
        let _ = interner.intern(&w);
        let map = interner.compact(|id, _| id != QueryId(1));
        assert_eq!(map, vec![Some(QueryId(0)), None, Some(QueryId(1))]);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.raw_entries(), 3, "cumulative counter survives");
        // Survivors keep their identity: old id 2 is now id 1.
        assert_eq!(interner.query(QueryId(1)).signature(), q(&[3]).signature());
        assert_eq!(interner.id_of(&q(&[3])), Some(QueryId(1)));
        // Evicted queries are unknown again and re-intern densely.
        assert_eq!(interner.id_of(&q(&[2])), None);
        assert_eq!(interner.intern_query(&Arc::new(q(&[2]))), QueryId(2));
    }

    #[test]
    fn empty_interner_ratio_is_one() {
        let interner = WorkloadInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.dedup_ratio(), 1.0);
    }
}
