//! Identifier newtypes shared across the whole workspace.

use serde::{Deserialize, Serialize};

/// Identifier of a table in the catalog.
///
/// Table ids are dense (`0..catalog.table_count()`); they index directly
/// into catalog vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifier of a column, **global across all tables** of the catalog.
///
/// Global column ids are what the paper's binary query encoding uses: each
/// query is represented as the set of global column ids it references, so a
/// workload vector lives in `{0,1}^n` where `n` is the total number of
/// columns in the database (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

impl TableId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for ColumnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(TableId(1) < TableId(2));
        assert!(ColumnId(7) > ColumnId(3));
        assert_eq!(TableId(4).to_string(), "t4");
        assert_eq!(ColumnId(9).to_string(), "c9");
        assert_eq!(ColumnId(9).index(), 9);
        assert_eq!(TableId(3).index(), 3);
    }
}
