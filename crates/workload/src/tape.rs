//! Deterministic log-tape fixtures: seeded SQL logs with scripted drift.
//!
//! The streaming-ingest test harness needs a log whose *ground truth* is
//! known in advance: exactly which windows exhibit drift, and by how much.
//! A [`LogTape`] is such a log, rendered as `epoch_seconds<TAB>SQL` text:
//!
//! * The tape is divided into `windows` windows of exactly `window_len`
//!   arrivals spanning `window_secs` of log time each, so count-based and
//!   time-based windowing agree on the boundaries.
//! * Arrivals are drawn from a per-**regime** statement list; every window
//!   in a regime replays the same statement cycle from the same offset, so
//!   consecutive same-regime windows are *identical multisets* and their
//!   workload distance is exactly `0.0` — no accidental drift, ever.
//! * At each scripted **episode** (a window index) the tape switches to the
//!   next regime, anchored on a different table with disjoint columns, so
//!   the inter-window δ jumps far above any reasonable Γ.
//!
//! A drift trigger run over the tape must therefore fire exactly at the
//! episode windows and nowhere else — the acceptance criterion the
//! integration suite, the proptests, and the bench all check. Generation is
//! pure (seeded [`ChaCha8Rng`], no ambient clock), so the same config
//! yields byte-identical text on every platform, chunk size, and thread
//! count.

use crate::resolve::SimpleResolver;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Shape of a [`LogTape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogTapeConfig {
    /// Seed for the statement generator.
    pub seed: u64,
    /// Number of tables in the schema (one per regime is used).
    pub tables: usize,
    /// Columns per table.
    pub cols_per_table: usize,
    /// Total windows on the tape.
    pub windows: usize,
    /// Arrivals per window.
    pub window_len: usize,
    /// Log-time span of one window, in seconds.
    pub window_secs: u64,
    /// Window indices at which the regime switches (strictly increasing,
    /// each in `1..windows`).
    pub episodes: Vec<usize>,
    /// Distinct statements per regime's cycle.
    pub statements_per_regime: usize,
    /// Prepend a comment line and a malformed line (stats fodder that must
    /// not perturb windows or triggers).
    pub header_noise: bool,
}

impl Default for LogTapeConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            tables: 4,
            cols_per_table: 8,
            windows: 12,
            window_len: 64,
            window_secs: 3_600,
            episodes: vec![4, 8],
            statements_per_regime: 6,
            header_noise: true,
        }
    }
}

/// A generated drift-scripted SQL log plus the schema it parses against.
#[derive(Debug, Clone)]
pub struct LogTape {
    config: LogTapeConfig,
    resolver: SimpleResolver,
    schema: Vec<(String, Vec<String>)>,
    text: String,
}

impl LogTape {
    /// Generates the tape for `config`.
    ///
    /// # Panics
    /// If the config is degenerate (zero tables/columns/windows/arrivals,
    /// episodes out of range or not strictly increasing, or more regimes
    /// than tables).
    pub fn generate(config: LogTapeConfig) -> Self {
        assert!(config.tables > 0 && config.cols_per_table > 0);
        assert!(config.windows > 0 && config.window_len > 0 && config.window_secs > 0);
        assert!(config.statements_per_regime > 0);
        assert!(
            config.episodes.windows(2).all(|w| w[0] < w[1])
                && config
                    .episodes
                    .iter()
                    .all(|&e| (1..config.windows).contains(&e)),
            "episodes must be strictly increasing window indices in 1..windows"
        );
        let regimes = config.episodes.len() + 1;
        assert!(
            regimes <= config.tables,
            "need one table per regime for disjoint column support"
        );

        let mut resolver = SimpleResolver::new();
        let mut schema = Vec::with_capacity(config.tables);
        for t in 0..config.tables {
            let table = format!("t{t}");
            let cols: Vec<String> = (0..config.cols_per_table)
                .map(|c| format!("c{c}"))
                .collect();
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            resolver.add_table(&table, &refs);
            schema.push((table, cols));
        }

        // One statement cycle per regime, each anchored on its own table.
        let statements: Vec<Vec<String>> = (0..regimes)
            .map(|r| regime_statements(&config, r))
            .collect();

        let mut text = String::new();
        if config.header_noise {
            text.push_str("# cliffguard log-tape fixture\n");
            text.push_str("this line has no tab and is counted malformed\n");
        }
        let mut regime = 0usize;
        for w in 0..config.windows {
            if config.episodes.contains(&w) {
                regime += 1;
            }
            let cycle = &statements[regime];
            for i in 0..config.window_len {
                let ts = w as u64 * config.window_secs
                    + (i as u64 * config.window_secs) / config.window_len as u64;
                let _ = writeln!(text, "{ts}\t{}", cycle[i % cycle.len()]);
            }
        }

        Self {
            config,
            resolver,
            schema,
            text,
        }
    }

    /// The rendered `epoch_seconds<TAB>SQL` log text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// A resolver for the tape's schema.
    pub fn resolver(&self) -> &SimpleResolver {
        &self.resolver
    }

    /// `(table, columns)` names, for building catalogs elsewhere.
    pub fn schema(&self) -> &[(String, Vec<String>)] {
        &self.schema
    }

    /// The generating config.
    pub fn config(&self) -> &LogTapeConfig {
        &self.config
    }

    /// Window indices at which drift is scripted (and a trigger expected).
    pub fn episodes(&self) -> &[usize] {
        &self.config.episodes
    }

    /// Total columns in the schema.
    pub fn n_columns(&self) -> usize {
        self.resolver.column_count()
    }

    /// A Γ that every scripted episode clears and no same-regime window
    /// approaches: intra-regime δ is exactly 0.0 by construction, while
    /// regime switches move the entire support to disjoint columns.
    pub fn suggested_gamma(&self) -> f64 {
        1e-3
    }
}

/// Renders regime `r`'s statement cycle: analytical SELECTs over table
/// `t{r}` only, with filters, grouping, and ordering drawn from that
/// table's columns so all four clause masks get support.
fn regime_statements(config: &LogTapeConfig, r: usize) -> Vec<String> {
    let mut rng =
        ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(r as u64));
    let ncols = config.cols_per_table;
    let col = |i: usize| format!("c{}", i % ncols);
    (0..config.statements_per_regime)
        .map(|_| {
            let s0 = rng.random_range(0..ncols);
            let s1 = rng.random_range(0..ncols);
            let f = rng.random_range(0..ncols);
            let mut sql = format!(
                "SELECT {}, SUM({}) FROM t{r} WHERE {} ",
                col(s0),
                col(s1),
                col(f)
            );
            match rng.random_range(0..3) {
                0 => {
                    let _ = write!(sql, "= {}", rng.random_range(0..100));
                }
                1 => {
                    let _ = write!(sql, "> {}", rng.random_range(0..100));
                }
                _ => {
                    let lo = rng.random_range(0..50);
                    let _ = write!(sql, "BETWEEN {lo} AND {}", lo + rng.random_range(1..50));
                }
            }
            let _ = write!(sql, " GROUP BY {}", col(s0));
            if rng.random::<f64>() < 0.5 {
                let _ = write!(sql, " ORDER BY {}", col(rng.random_range(0..ncols)));
            }
            sql
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logio::import_log;

    #[test]
    fn generation_is_deterministic() {
        let a = LogTape::generate(LogTapeConfig::default());
        let b = LogTape::generate(LogTapeConfig::default());
        assert_eq!(a.text(), b.text());
        let c = LogTape::generate(LogTapeConfig {
            seed: 8,
            ..LogTapeConfig::default()
        });
        assert_ne!(a.text(), c.text(), "seed must matter");
    }

    #[test]
    fn every_arrival_parses_and_counts_line_up() {
        let tape = LogTape::generate(LogTapeConfig::default());
        let (log, report) = import_log(tape.text(), tape.resolver());
        let cfg = tape.config();
        assert_eq!(report.parsed, cfg.windows * cfg.window_len);
        assert_eq!(report.skipped_sql, 0, "tape SQL must always parse");
        assert_eq!(report.skipped_malformed, 1, "exactly the header noise");
        assert_eq!(log.len(), cfg.windows * cfg.window_len);
    }

    #[test]
    fn windows_are_aligned_in_time_and_count() {
        let cfg = LogTapeConfig::default();
        let tape = LogTape::generate(cfg.clone());
        let (log, _) = import_log(tape.text(), tape.resolver());
        for (i, e) in log.entries().iter().enumerate() {
            let w = i / cfg.window_len;
            let lo = w as u64 * cfg.window_secs;
            assert!(
                (lo..lo + cfg.window_secs).contains(&e.timestamp),
                "arrival {i} ts {} outside window {w}",
                e.timestamp
            );
        }
    }

    #[test]
    fn same_regime_windows_are_identical_multisets() {
        let cfg = LogTapeConfig::default();
        let tape = LogTape::generate(cfg.clone());
        let (log, _) = import_log(tape.text(), tape.resolver());
        let sigs_of = |w: usize| {
            let mut v: Vec<u64> = log.entries()[w * cfg.window_len..(w + 1) * cfg.window_len]
                .iter()
                .map(|e| e.query.signature().0)
                .collect();
            v.sort_unstable();
            v
        };
        // Windows 0..4 share regime 0; 4..8 regime 1; 8..12 regime 2.
        assert_eq!(sigs_of(0), sigs_of(3));
        assert_eq!(sigs_of(4), sigs_of(7));
        assert_eq!(sigs_of(8), sigs_of(11));
        // Episodes actually change the workload.
        assert_ne!(sigs_of(3), sigs_of(4));
        assert_ne!(sigs_of(7), sigs_of(8));
    }

    #[test]
    fn regimes_touch_disjoint_tables() {
        let cfg = LogTapeConfig::default();
        let tape = LogTape::generate(cfg.clone());
        let (log, _) = import_log(tape.text(), tape.resolver());
        let anchor_of = |w: usize| log.entries()[w * cfg.window_len].query.anchor;
        assert_ne!(anchor_of(0), anchor_of(4));
        assert_ne!(anchor_of(4), anchor_of(8));
    }
}
