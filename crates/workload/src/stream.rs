//! Chunked streaming ingest of `epoch_seconds<TAB>SQL` query logs.
//!
//! [`import_log`](crate::logio::import_log) materializes the whole log text
//! before parsing — fine for files, wrong for a live trace. [`LogStream`]
//! accepts the same format as arbitrary byte chunks (any split points,
//! including mid-line and mid-UTF-8-sequence) and emits parsed queries
//! incrementally, with three properties the online advisor builds on:
//!
//! * **Chunking-invariant**: the emitted `(timestamp, query)` sequence and
//!   the [`StreamStats`] depend only on the concatenated bytes, never on
//!   where the chunk boundaries fall. Partial trailing lines are carried in
//!   a reused buffer until their terminator (or [`LogStream::finish`])
//!   arrives.
//! * **Line-compatible with `import_log`**: for valid UTF-8 input the
//!   per-line accept/skip decisions are byte-for-byte identical, so the
//!   streaming and batch pipelines agree on every record.
//! * **Allocation-amortized**: repeated statement texts hit a bounded
//!   statement cache (text → parse outcome) and re-emit their interned
//!   [`QueryId`] without lexing, parsing, or allocating. Logs are dominated
//!   by repeated templates, so the steady state is a hash lookup per line.
//!
//! Distinct queries are deduplicated into the stream's own
//! [`WorkloadInterner`]; [`LogStream::compact`] rebuilds it (and clears the
//! statement cache, whose entries hold interner ids) so an unbounded log
//! cannot grow the intern table without limit. The production ingest
//! paths — the `cliffguard ingest` CLI and the serve daemon's per-tenant
//! sessions — call it after every chunk via the online advisor's
//! `compact_stream`, which drops everything outside the advisor's
//! retained windows once the table exceeds its capacity bound.

use crate::interner::{QueryId, WorkloadInterner};
use crate::parser::parse_query;
use crate::query::Query;
use crate::resolve::NameResolver;
use std::collections::HashMap;
use std::sync::Arc;

/// Default bound on distinct statement texts kept in the parse cache.
///
/// When the cache reaches this many entries it is cleared (deterministically
/// — the fill level depends only on the arrival order of distinct texts, not
/// on chunking), trading one re-parse per distinct statement per generation
/// for a hard memory bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// Counters accumulated while streaming a log.
///
/// `parsed`/`skipped_sql`/`skipped_malformed` match
/// [`ImportReport`](crate::logio::ImportReport) exactly on the same input;
/// `lines` additionally counts blank and `#`-comment lines, and invalid
/// UTF-8 lines count as malformed (a case the `&str`-based importer cannot
/// see).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Records parsed into queries and emitted.
    pub parsed: u64,
    /// Records skipped: unparseable SQL (schema drift, unsupported syntax).
    pub skipped_sql: u64,
    /// Records skipped: malformed lines (no tab, bad timestamp, bad UTF-8).
    pub skipped_malformed: u64,
    /// Every line seen, including blanks and comments.
    pub lines: u64,
    /// Total bytes fed through [`LogStream::feed`].
    pub bytes: u64,
}

impl StreamStats {
    /// Total records examined (excluding blanks/comments), as
    /// [`ImportReport::total`](crate::logio::ImportReport::total).
    pub fn total(&self) -> u64 {
        self.parsed + self.skipped_sql + self.skipped_malformed
    }
}

/// Per-arrival sink: `(timestamp, interned id, query)` for each parsed
/// record, in log order.
pub type ArrivalSink<'a> = dyn FnMut(u64, QueryId, &Arc<Query>) + 'a;

/// Incremental chunk-at-a-time reader for `epoch_seconds<TAB>SQL` logs.
#[derive(Debug)]
pub struct LogStream {
    interner: WorkloadInterner,
    /// Bytes of the current unterminated line, reused across chunks.
    carry: Vec<u8>,
    /// Statement text → parse outcome (`Some(id)` parsed, `None` rejected).
    cache: HashMap<String, Option<QueryId>>,
    cache_capacity: usize,
    /// Cache generations discarded so far (cap reached).
    cache_resets: u64,
    stats: StreamStats,
}

impl Default for LogStream {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStream {
    /// Creates a stream with the default statement-cache bound.
    pub fn new() -> Self {
        Self::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a stream whose statement cache is cleared whenever it holds
    /// `capacity` distinct texts (minimum 1).
    pub fn with_cache_capacity(capacity: usize) -> Self {
        Self {
            interner: WorkloadInterner::new(),
            carry: Vec::new(),
            cache: HashMap::new(),
            cache_capacity: capacity.max(1),
            cache_resets: 0,
            stats: StreamStats::default(),
        }
    }

    /// Feeds one chunk of log bytes, invoking `sink` once per parsed record
    /// in order. Chunk boundaries may fall anywhere.
    pub fn feed(&mut self, chunk: &[u8], resolver: &dyn NameResolver, sink: &mut ArrivalSink<'_>) {
        self.stats.bytes += chunk.len() as u64;
        let mut data = chunk;
        if !self.carry.is_empty() {
            // Complete the carried partial line from this chunk (or keep
            // carrying if the chunk has no terminator at all).
            match data.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    self.carry.extend_from_slice(&data[..pos]);
                    let line = std::mem::take(&mut self.carry);
                    self.process_line(strip_cr(&line), resolver, sink);
                    // Put the allocation back for the next partial line.
                    self.carry = line;
                    self.carry.clear();
                    data = &data[pos + 1..];
                }
                None => {
                    self.carry.extend_from_slice(data);
                    return;
                }
            }
        }
        // Complete lines are processed straight out of the chunk, copy-free.
        while let Some(pos) = data.iter().position(|&b| b == b'\n') {
            self.process_line(strip_cr(&data[..pos]), resolver, sink);
            data = &data[pos + 1..];
        }
        self.carry.extend_from_slice(data);
    }

    /// Flushes the trailing unterminated line, if any (a final line without
    /// a newline is still a record, exactly as in `str::lines`).
    pub fn finish(&mut self, resolver: &dyn NameResolver, sink: &mut ArrivalSink<'_>) {
        if self.carry.is_empty() {
            return;
        }
        let line = std::mem::take(&mut self.carry);
        // No terminator was seen, so no `\r` is stripped — `str::lines`
        // only strips `\r` as part of a `\r\n` ending. (`trim` removes a
        // trailing `\r` anyway; this keeps the split rule itself exact.)
        self.process_line(&line, resolver, sink);
        self.carry = line;
        self.carry.clear();
    }

    /// One split-out line. Semantics mirror `import_log` line-for-line:
    /// trim, skip blanks and `#` comments, split at the first tab, parse
    /// the timestamp, then the SQL.
    fn process_line(
        &mut self,
        line: &[u8],
        resolver: &dyn NameResolver,
        sink: &mut ArrivalSink<'_>,
    ) {
        self.stats.lines += 1;
        let Ok(text) = std::str::from_utf8(line) else {
            self.stats.skipped_malformed += 1;
            return;
        };
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            return;
        }
        let Some((ts, sql)) = text.split_once('\t') else {
            self.stats.skipped_malformed += 1;
            return;
        };
        let Ok(timestamp) = ts.trim().parse::<u64>() else {
            self.stats.skipped_malformed += 1;
            return;
        };
        // Fast path: the statement text was seen before (either outcome).
        if let Some(&outcome) = self.cache.get(sql) {
            match outcome {
                Some(id) => {
                    self.stats.parsed += 1;
                    sink(timestamp, id, self.interner.query(id));
                }
                None => self.stats.skipped_sql += 1,
            }
            return;
        }
        match parse_query(sql, resolver) {
            Ok(q) => {
                let id = self.interner.intern_query(&Arc::new(q));
                self.cache_insert(sql.to_owned(), Some(id));
                self.stats.parsed += 1;
                sink(timestamp, id, self.interner.query(id));
            }
            Err(_) => {
                self.cache_insert(sql.to_owned(), None);
                self.stats.skipped_sql += 1;
            }
        }
    }

    fn cache_insert(&mut self, sql: String, outcome: Option<QueryId>) {
        if self.cache.len() >= self.cache_capacity {
            self.cache.clear();
            self.cache_resets += 1;
        }
        self.cache.insert(sql, outcome);
    }

    /// Bytes of the current unterminated line (the persistence surface for
    /// kill/resume: see [`restore`](Self::restore)). May end mid-UTF-8
    /// sequence when the last chunk split a multi-byte character.
    pub fn carry(&self) -> &[u8] {
        &self.carry
    }

    /// Rebuilds a stream mid-tape from its persisted surface: the carried
    /// partial line, the counters, and the cache-reset count. The interner
    /// and statement cache start empty — parsing is deterministic, so the
    /// emitted `(timestamp, query)` sequence on the remaining bytes is
    /// unaffected; only the interner ids are renumbered, and nothing
    /// downstream keys on them. (`cache_resets` may consequently lag an
    /// uninterrupted run by at most one generation.)
    pub fn restore(carry: Vec<u8>, stats: StreamStats, cache_resets: u64) -> Self {
        Self {
            carry,
            stats,
            cache_resets,
            ..Self::new()
        }
    }

    /// The stream's counters so far.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The interner holding every distinct parsed query.
    pub fn interner(&self) -> &WorkloadInterner {
        &self.interner
    }

    /// Distinct statement texts currently cached.
    pub fn cached_statements(&self) -> usize {
        self.cache.len()
    }

    /// How many times the statement cache hit its bound and was cleared.
    pub fn cache_resets(&self) -> u64 {
        self.cache_resets
    }

    /// Compacts the interner, keeping only queries for which `keep` returns
    /// true, and returns the old→new id map (see
    /// [`WorkloadInterner::compact`]). The statement cache is cleared —
    /// its entries hold pre-compaction ids — so this is safe to call at any
    /// deterministic point in the stream (e.g. on window close).
    pub fn compact<F>(&mut self, keep: F) -> Vec<Option<QueryId>>
    where
        F: FnMut(QueryId, &Arc<Query>) -> bool,
    {
        self.cache.clear();
        self.interner.compact(keep)
    }
}

/// Strips the single trailing `\r` of a `\r\n` line ending, as
/// `str::lines` does.
fn strip_cr(line: &[u8]) -> &[u8] {
    match line {
        [rest @ .., b'\r'] => rest,
        _ => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logio::import_log;
    use crate::resolve::SimpleResolver;

    fn resolver() -> SimpleResolver {
        let mut r = SimpleResolver::new();
        r.add_table("sales", &["id", "amount", "region"]);
        r
    }

    /// Runs `text` through a stream at the given chunk size, returning the
    /// arrival list and final stats.
    fn stream_all(text: &[u8], chunk: usize, cache: usize) -> (Vec<(u64, u64)>, StreamStats) {
        let r = resolver();
        let mut s = LogStream::with_cache_capacity(cache);
        let mut out = Vec::new();
        let mut sink = |ts: u64, _id: QueryId, q: &Arc<Query>| out.push((ts, q.signature().0));
        for piece in text.chunks(chunk.max(1)) {
            s.feed(piece, &r, &mut sink);
        }
        s.finish(&r, &mut sink);
        (out, s.stats().clone())
    }

    const SAMPLE: &str = "# header\n\
        100\tSELECT amount FROM sales WHERE region = 'w'\n\
        \n\
        no-tab-here\n\
        abc\tSELECT id FROM sales\n\
        200\tSELECT nope FROM sales\n\
        300\tSELECT id FROM sales\r\n\
        400\tSELECT amount FROM sales WHERE region = 'w'";

    #[test]
    fn matches_import_log_on_the_same_text() {
        let (log, report) = import_log(SAMPLE, &resolver());
        let (arrivals, stats) = stream_all(SAMPLE.as_bytes(), 7, 1024);
        assert_eq!(stats.parsed as usize, report.parsed);
        assert_eq!(stats.skipped_sql as usize, report.skipped_sql);
        assert_eq!(stats.skipped_malformed as usize, report.skipped_malformed);
        assert_eq!(arrivals.len(), log.len());
        // import_log sorts by timestamp; the stream preserves log order.
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(ts, _)| ts);
        for (got, want) in sorted.iter().zip(log.entries()) {
            assert_eq!(got.0, want.timestamp);
            assert_eq!(got.1, want.query.signature().0);
        }
    }

    #[test]
    fn chunking_is_invisible() {
        let whole = stream_all(SAMPLE.as_bytes(), usize::MAX, 1024);
        for chunk in [1, 2, 3, 5, 16, 64, 4096] {
            assert_eq!(
                stream_all(SAMPLE.as_bytes(), chunk, 1024),
                whole,
                "chunk={chunk}"
            );
        }
        // A tiny cache (constant clearing) must not change the output.
        assert_eq!(stream_all(SAMPLE.as_bytes(), 3, 1), whole);
    }

    #[test]
    fn invalid_utf8_counts_as_malformed() {
        let mut bytes = b"100\tSELECT id FROM sales\n".to_vec();
        bytes.extend_from_slice(b"101\tSELECT \xff\xfe FROM sales\n");
        bytes.extend_from_slice(b"\xff\n");
        let (arrivals, stats) = stream_all(&bytes, 9, 64);
        assert_eq!(arrivals.len(), 1);
        assert_eq!(stats.parsed, 1);
        assert_eq!(stats.skipped_malformed, 2);
    }

    #[test]
    fn cache_dedupes_and_resets_deterministically() {
        let r = resolver();
        let mut s = LogStream::with_cache_capacity(2);
        let text = b"1\tSELECT id FROM sales\n\
            2\tSELECT amount FROM sales\n\
            3\tSELECT region FROM sales\n\
            4\tSELECT id FROM sales\n";
        let mut n = 0usize;
        s.feed(text, &r, &mut |_, _, _| n += 1);
        assert_eq!(n, 4);
        assert_eq!(s.interner().len(), 3, "distinct queries interned once");
        assert!(
            s.cache_resets() >= 1,
            "cap 2 must have cleared at least once"
        );
        assert!(s.cached_statements() <= 2);
    }

    #[test]
    fn compact_clears_cache_and_remaps() {
        let r = resolver();
        let mut s = LogStream::new();
        let mut ids = Vec::new();
        s.feed(
            b"1\tSELECT id FROM sales\n2\tSELECT amount FROM sales\n",
            &r,
            &mut |_, id, _| ids.push(id),
        );
        assert_eq!(s.interner().len(), 2);
        let map = s.compact(|id, _| id == ids[1]);
        assert_eq!(map[ids[0].index()], None);
        assert_eq!(map[ids[1].index()], Some(QueryId(0)));
        assert_eq!(s.interner().len(), 1);
        assert_eq!(s.cached_statements(), 0);
        // Re-feeding the dropped statement re-interns it under a fresh id.
        let mut last = None;
        s.feed(b"3\tSELECT id FROM sales\n", &r, &mut |_, id, _| {
            last = Some(id)
        });
        assert_eq!(last, Some(QueryId(1)));
    }

    #[test]
    fn unterminated_final_line_is_flushed_by_finish() {
        let r = resolver();
        let mut s = LogStream::new();
        let mut n = 0usize;
        s.feed(b"9\tSELECT id FROM sales", &r, &mut |_, _, _| n += 1);
        assert_eq!(n, 0, "no terminator yet");
        s.finish(&r, &mut |_, _, _| n += 1);
        assert_eq!(n, 1);
        // finish is idempotent.
        s.finish(&r, &mut |_, _, _| n += 1);
        assert_eq!(n, 1);
    }
}
