//! Workload modeling for the CliffGuard robust physical-design framework.
//!
//! This crate is the foundation of the reproduction of *CliffGuard: A
//! Principled Framework for Finding Robust Database Designs* (SIGMOD 2015).
//! It provides everything the paper needs to talk about "a workload":
//!
//! * [`ColumnSet`] — compact bitsets over the catalog's global column ids,
//!   the representation the paper uses for queries when computing workload
//!   distances (Section 5).
//! * [`Query`] / [`Predicate`] — the structural query model: per-clause
//!   column sets, predicates with selectivities, joins, and aggregation.
//! * [`parser`] — a small recursive-descent SQL `SELECT` parser that turns
//!   query text into [`Query`] values against a user-supplied
//!   [`NameResolver`] (the paper used Stephen Tu's SQL parser for the same
//!   purpose).
//! * [`Template`] — the clause-column-set query templates used by the
//!   paper's Figure 5 drift analysis.
//! * [`Workload`] — a weighted multiset of queries with normalized
//!   frequencies, unions, and template histograms.
//! * [`WorkloadInterner`] — dense [`QueryId`]s deduplicating structurally
//!   identical queries across a family of workloads (the target plus its
//!   Γ-neighborhood samples), turning cost evaluation into dot products.
//! * [`QueryLog`] — a timestamped query trace, split into the fixed-size
//!   windows (7/14/21/28 days) the evaluation section uses.
//! * [`LogStream`] — chunked streaming ingest of the same text-log format,
//!   chunking-invariant and allocation-amortized, feeding the online
//!   drift advisor in `cliffguard-core`.
//! * [`LogTape`] — seeded log fixtures with scripted drift episodes, the
//!   ground truth the streaming test harness replays.
//! * [`generator`] — seeded generative models for the paper's three
//!   workloads: the drifting real-world trace **R1** (simulated; the
//!   original Vertica customer trace is proprietary), the near-static
//!   **S1**, and the uniformly-drifting **S2**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colset;
mod ids;
mod interner;
mod log;
mod query;
mod resolve;
mod template;
mod workload;

pub mod generator;
pub mod logio;
pub mod parser;
pub mod stream;
pub mod tape;

pub use colset::ColumnSet;
pub use ids::{ColumnId, TableId};
pub use interner::{InternedWorkload, QueryId, WorkloadInterner};
pub use log::{LogEntry, QueryLog, SECS_PER_DAY};
pub use query::{PredOp, Predicate, Query, QueryBuilder, QuerySignature};
pub use resolve::{NameResolver, SimpleResolver};
pub use stream::{LogStream, StreamStats};
pub use tape::{LogTape, LogTapeConfig};
pub use template::{Template, TemplateId};
pub use workload::{WeightedQuery, Workload};
