//! A small SQL `SELECT` parser.
//!
//! CliffGuard consumes query *logs*; the paper credits "Stephen Tu for his
//! SQL parser" for turning raw SQL into per-clause column sets. This module
//! plays that role: a recursive-descent parser for analytical `SELECT`
//! statements that extracts, per clause, the referenced columns, the filter
//! predicates (with kind and default selectivity), the joined tables, and
//! whether the query aggregates.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT [DISTINCT] item, …            item := * | expr [AS alias]
//! FROM table [alias] (, table [alias] | JOIN table [alias] ON cond)*
//! [WHERE cond] [GROUP BY colref, …] [ORDER BY colref [ASC|DESC], …] [LIMIT n]
//! ```
//!
//! Out-of-scope constructs (subqueries, CTEs, set ops, window functions)
//! produce a [`ParseError`] — mirroring the paper, where only the queries
//! "conforming to the latest schema (i.e., that can be parsed)" are kept.

use crate::colset::ColumnSet;
use crate::ids::{ColumnId, TableId};
use crate::query::{PredOp, Predicate, Query};
use crate::resolve::NameResolver;

/// Error raised while lexing, parsing, or resolving a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one `SELECT` statement into a [`Query`], resolving names through
/// `resolver`. The raw SQL is attached to the result.
pub fn parse_query(sql: &str, resolver: &dyn NameResolver) -> Result<Query, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
        resolver,
        sql,
        depth: 0,
    };
    let mut q = p.parse_select()?;
    q.raw_sql = Some(sql.to_string());
    Ok(q)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(&'static str), // ( ) , . * = != <> < <= > >= + - / ;
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '-' if b.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => {
                            return Err(ParseError {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != b'"' {
                    s.push(b[i] as char);
                    i += 1;
                }
                if i >= b.len() {
                    return Err(ParseError {
                        message: "unterminated quoted identifier".into(),
                        offset: start,
                    });
                }
                i += 1;
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    offset: start,
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit() => {
                while i < b.len() && ((b[i] as char).is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let text = &input[start..i];
                let n = text.parse::<f64>().map_err(|_| ParseError {
                    message: format!("bad numeric literal `{text}`"),
                    offset: start,
                })?;
                out.push(Spanned {
                    tok: Tok::Number(n),
                    offset: start,
                });
            }
            _ => {
                // The two-byte probe must respect UTF-8 boundaries: `i + 2`
                // can land inside a multi-byte character, and slicing there
                // would panic instead of reporting a lex error.
                let two = if i + 1 < b.len() && input.is_char_boundary(i + 2) {
                    &input[i..i + 2]
                } else {
                    ""
                };
                let sym: &'static str = match two {
                    "!=" => "!=",
                    "<>" => "<>",
                    "<=" => "<=",
                    ">=" => ">=",
                    _ => match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        '.' => ".",
                        '*' => "*",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        '+' => "+",
                        '-' => "-",
                        '/' => "/",
                        ';' => ";",
                        '%' => "%",
                        other => {
                            return Err(ParseError {
                                message: format!("unexpected character `{other}`"),
                                offset: start,
                            })
                        }
                    },
                };
                i += sym.len();
                out.push(Spanned {
                    tok: Tok::Symbol(sym),
                    offset: start,
                });
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

const AGG_FUNCS: &[&str] = &["sum", "count", "avg", "min", "max", "stddev", "variance"];

/// Expression/condition nesting bound. The parser is recursive-descent, so
/// pathological inputs (`((((…`) would otherwise exhaust the stack — fatal
/// for a streaming ingester that must be total over arbitrary log lines.
const MAX_EXPR_DEPTH: usize = 128;

struct Parser<'a> {
    toks: &'a [Spanned],
    pos: usize,
    resolver: &'a dyn NameResolver,
    sql: &'a str,
    depth: usize,
}

/// A column reference gathered while walking expressions.
#[derive(Debug, Clone)]
struct ColRef {
    table_alias: Option<String>,
    name: String,
    offset: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.toks.get(self.pos).map_or(self.sql.len(), |t| t.offset),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", kw.to_ascii_uppercase())))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn parse_select(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("select")?;
        let _distinct = self.eat_keyword("distinct");

        // --- select list (resolved after FROM, so gather refs first) ---
        let mut select_star = false;
        let mut select_refs: Vec<ColRef> = Vec::new();
        let mut aggregates = false;
        loop {
            if self.eat_symbol("*") {
                select_star = true;
            } else {
                let (refs, agg) = self.parse_expr_refs()?;
                aggregates |= agg;
                select_refs.extend(refs);
                if self.eat_keyword("as") {
                    match self.bump() {
                        Some(Tok::Ident(_)) => {}
                        _ => return Err(self.err("expected alias after AS")),
                    }
                } else if let Some(Tok::Ident(s)) = self.peek() {
                    // bare alias, unless it's a clause keyword
                    if !is_clause_keyword(s) {
                        self.pos += 1;
                    }
                }
            }
            if !self.eat_symbol(",") {
                break;
            }
        }

        // --- FROM clause ---
        self.expect_keyword("from")?;
        let mut tables: Vec<(TableId, Option<String>)> = Vec::new();
        let mut join_filters: Vec<ColRef> = Vec::new();
        self.parse_table_ref(&mut tables)?;
        loop {
            if self.eat_symbol(",") {
                self.parse_table_ref(&mut tables)?;
            } else if self.at_keyword("join")
                || self.at_keyword("inner")
                || self.at_keyword("left")
                || self.at_keyword("right")
                || self.at_keyword("full")
                || self.at_keyword("cross")
            {
                let cross = self.at_keyword("cross");
                // consume JOIN-introducing keywords
                while self.eat_keyword("inner")
                    || self.eat_keyword("left")
                    || self.eat_keyword("right")
                    || self.eat_keyword("full")
                    || self.eat_keyword("outer")
                    || self.eat_keyword("cross")
                {}
                self.expect_keyword("join")?;
                self.parse_table_ref(&mut tables)?;
                if !cross {
                    self.expect_keyword("on")?;
                    let (refs, _) = self.parse_condition_refs(&mut Vec::new())?;
                    join_filters.extend(refs);
                }
            } else {
                break;
            }
        }

        let anchor = tables
            .first()
            .map(|(t, _)| *t)
            .ok_or_else(|| self.err("FROM clause names no table"))?;
        let scope: Vec<TableId> = tables.iter().map(|(t, _)| *t).collect();
        let aliases: Vec<(Option<String>, TableId)> =
            tables.iter().map(|(t, a)| (a.clone(), *t)).collect();

        // --- WHERE ---
        let mut predicates: Vec<Predicate> = Vec::new();
        let mut where_refs: Vec<ColRef> = join_filters;
        if self.eat_keyword("where") {
            let mut raw_preds = Vec::new();
            let (refs, _) = self.parse_condition_refs(&mut raw_preds)?;
            where_refs.extend(refs);
            for (cref, op) in raw_preds {
                let col = self.resolve_ref(&cref, &aliases, &scope)?;
                let sel = self.resolver.default_selectivity(col, op);
                predicates.push(Predicate::new(col, op, sel));
            }
        }

        // --- GROUP BY ---
        let mut group_refs: Vec<ColRef> = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_refs.push(self.parse_colref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            aggregates = true;
        }

        // --- ORDER BY ---
        let mut order_refs: Vec<ColRef> = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                order_refs.push(self.parse_colref()?);
                let _ = self.eat_keyword("asc") || self.eat_keyword("desc");
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        // --- LIMIT ---
        if self.eat_keyword("limit") {
            match self.bump() {
                Some(Tok::Number(_)) => {}
                _ => return Err(self.err("expected number after LIMIT")),
            }
        }
        let _ = self.eat_symbol(";");
        if self.pos != self.toks.len() {
            return Err(self.err("trailing tokens after statement"));
        }

        // --- resolve everything ---
        let mut select = ColumnSet::new();
        if select_star {
            for t in &scope {
                for c in self.resolver.table_columns(*t) {
                    select.insert(c);
                }
            }
        }
        for r in &select_refs {
            select.insert(self.resolve_ref(r, &aliases, &scope)?);
        }
        let mut filter = ColumnSet::new();
        for r in &where_refs {
            filter.insert(self.resolve_ref(r, &aliases, &scope)?);
        }
        let mut group_by = ColumnSet::new();
        for r in &group_refs {
            group_by.insert(self.resolve_ref(r, &aliases, &scope)?);
        }
        let mut order_by = Vec::new();
        for r in &order_refs {
            let c = self.resolve_ref(r, &aliases, &scope)?;
            if !order_by.contains(&c) {
                order_by.push(c);
            }
        }

        Ok(Query {
            anchor,
            select,
            filter,
            group_by,
            order_by,
            predicates,
            joins: scope[1..].to_vec(),
            aggregates,
            raw_sql: None,
        })
    }

    fn parse_table_ref(
        &mut self,
        tables: &mut Vec<(TableId, Option<String>)>,
    ) -> Result<(), ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s.clone(),
            _ => return Err(self.err("expected table name")),
        };
        if is_clause_keyword(&name) {
            return Err(self.err(format!("expected table name, found keyword `{name}`")));
        }
        let tid = self
            .resolver
            .resolve_table(&name)
            .ok_or_else(|| self.err(format!("unknown table `{name}`")))?;
        let mut alias = None;
        if self.eat_keyword("as") {
            match self.bump() {
                Some(Tok::Ident(a)) => alias = Some(a.to_ascii_lowercase()),
                _ => return Err(self.err("expected alias after AS")),
            }
        } else if let Some(Tok::Ident(a)) = self.peek() {
            if !is_clause_keyword(a) && !is_join_keyword(a) && !a.eq_ignore_ascii_case("on") {
                alias = Some(a.to_ascii_lowercase());
                self.pos += 1;
            }
        }
        tables.push((tid, alias));
        Ok(())
    }

    /// Parses a possibly-qualified column reference.
    fn parse_colref(&mut self) -> Result<ColRef, ParseError> {
        let offset = self.toks.get(self.pos).map_or(0, |t| t.offset);
        let first = match self.bump() {
            Some(Tok::Ident(s)) => s.clone(),
            _ => return Err(self.err("expected column reference")),
        };
        if self.eat_symbol(".") {
            let col = match self.bump() {
                Some(Tok::Ident(s)) => s.clone(),
                _ => return Err(self.err("expected column after `.`")),
            };
            Ok(ColRef {
                table_alias: Some(first.to_ascii_lowercase()),
                name: col,
                offset,
            })
        } else {
            Ok(ColRef {
                table_alias: None,
                name: first,
                offset,
            })
        }
    }

    /// Parses a scalar expression, returning the column refs it mentions and
    /// whether it contains an aggregate function call.
    fn parse_expr_refs(&mut self) -> Result<(Vec<ColRef>, bool), ParseError> {
        let mut refs = Vec::new();
        let mut agg = false;
        self.parse_additive(&mut refs, &mut agg)?;
        Ok((refs, agg))
    }

    fn parse_additive(&mut self, refs: &mut Vec<ColRef>, agg: &mut bool) -> Result<(), ParseError> {
        self.parse_multiplicative(refs, agg)?;
        while self.eat_symbol("+") || self.eat_symbol("-") {
            self.parse_multiplicative(refs, agg)?;
        }
        Ok(())
    }

    fn parse_multiplicative(
        &mut self,
        refs: &mut Vec<ColRef>,
        agg: &mut bool,
    ) -> Result<(), ParseError> {
        self.parse_primary(refs, agg)?;
        while self.eat_symbol("*") || self.eat_symbol("/") || self.eat_symbol("%") {
            self.parse_primary(refs, agg)?;
        }
        Ok(())
    }

    fn parse_primary(&mut self, refs: &mut Vec<ColRef>, agg: &mut bool) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.err("expression nesting too deep"));
        }
        let out = self.parse_primary_inner(refs, agg);
        self.depth -= 1;
        out
    }

    fn parse_primary_inner(
        &mut self,
        refs: &mut Vec<ColRef>,
        agg: &mut bool,
    ) -> Result<(), ParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(_)) | Some(Tok::Str(_)) => {
                self.pos += 1;
                Ok(())
            }
            Some(Tok::Symbol("(")) => {
                self.pos += 1;
                self.parse_additive(refs, agg)?;
                self.expect_symbol(")")
            }
            Some(Tok::Symbol("-")) => {
                self.pos += 1;
                self.parse_primary(refs, agg)
            }
            Some(Tok::Ident(name)) => {
                // function call?
                if matches!(
                    self.toks.get(self.pos + 1),
                    Some(Spanned {
                        tok: Tok::Symbol("("),
                        ..
                    })
                ) {
                    if name.eq_ignore_ascii_case("select") {
                        return Err(self.err("subqueries are not supported"));
                    }
                    self.pos += 2; // ident + '('
                    if AGG_FUNCS.iter().any(|f| name.eq_ignore_ascii_case(f)) {
                        *agg = true;
                    }
                    let _ = self.eat_keyword("distinct");
                    if self.eat_symbol("*") {
                        // COUNT(*)
                    } else if !matches!(self.peek(), Some(Tok::Symbol(")"))) {
                        loop {
                            self.parse_additive(refs, agg)?;
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(")")
                } else {
                    let r = self.parse_colref()?;
                    refs.push(r);
                    Ok(())
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }

    /// Parses a boolean condition, returning all column refs mentioned and
    /// recording extractable `column-vs-literal` predicates in `preds`.
    fn parse_condition_refs(
        &mut self,
        preds: &mut Vec<(ColRef, PredOp)>,
    ) -> Result<(Vec<ColRef>, bool), ParseError> {
        let mut refs = Vec::new();
        self.parse_or(&mut refs, preds)?;
        Ok((refs, false))
    }

    fn parse_or(
        &mut self,
        refs: &mut Vec<ColRef>,
        preds: &mut Vec<(ColRef, PredOp)>,
    ) -> Result<(), ParseError> {
        self.parse_and(refs, preds)?;
        while self.eat_keyword("or") {
            // Disjunction arms still contribute columns, but we do not claim
            // their predicates individually (a sort prefix cannot use them).
            let mut arm_preds = Vec::new();
            self.parse_and(refs, &mut arm_preds)?;
        }
        Ok(())
    }

    fn parse_and(
        &mut self,
        refs: &mut Vec<ColRef>,
        preds: &mut Vec<(ColRef, PredOp)>,
    ) -> Result<(), ParseError> {
        self.parse_predicate(refs, preds)?;
        while self.eat_keyword("and") {
            self.parse_predicate(refs, preds)?;
        }
        Ok(())
    }

    fn parse_predicate(
        &mut self,
        refs: &mut Vec<ColRef>,
        preds: &mut Vec<(ColRef, PredOp)>,
    ) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.err("condition nesting too deep"));
        }
        let out = self.parse_predicate_inner(refs, preds);
        self.depth -= 1;
        out
    }

    fn parse_predicate_inner(
        &mut self,
        refs: &mut Vec<ColRef>,
        preds: &mut Vec<(ColRef, PredOp)>,
    ) -> Result<(), ParseError> {
        if self.eat_keyword("not") {
            return self.parse_predicate(refs, &mut Vec::new());
        }
        if self.eat_symbol("(") {
            self.parse_or(refs, preds)?;
            return self.expect_symbol(")");
        }
        // left side: expression (collect refs; remember if it is a bare colref)
        let before = refs.len();
        let mut agg = false;
        self.parse_additive(refs, &mut agg)?;
        let lhs_single = refs.len() == before + 1;

        if self.eat_keyword("between") {
            self.parse_additive(&mut Vec::new(), &mut false)?;
            self.expect_keyword("and")?;
            self.parse_additive(&mut Vec::new(), &mut false)?;
            if lhs_single {
                preds.push((refs[before].clone(), PredOp::Range));
            }
            return Ok(());
        }
        if self.eat_keyword("like") {
            match self.bump() {
                Some(Tok::Str(_)) => {}
                _ => return Err(self.err("expected string after LIKE")),
            }
            if lhs_single {
                preds.push((refs[before].clone(), PredOp::Like));
            }
            return Ok(());
        }
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            loop {
                match self.bump() {
                    Some(Tok::Number(_)) | Some(Tok::Str(_)) => {}
                    _ => return Err(self.err("expected literal in IN list")),
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            if lhs_single {
                preds.push((refs[before].clone(), PredOp::In));
            }
            return Ok(());
        }
        if self.eat_keyword("is") {
            let _ = self.eat_keyword("not");
            self.expect_keyword("null")?;
            if lhs_single {
                preds.push((refs[before].clone(), PredOp::Eq));
            }
            return Ok(());
        }
        // comparison operator
        let op = match self.peek() {
            Some(Tok::Symbol("=")) => Some(PredOp::Eq),
            Some(Tok::Symbol("!=")) | Some(Tok::Symbol("<>")) => Some(PredOp::Range),
            Some(Tok::Symbol("<"))
            | Some(Tok::Symbol("<="))
            | Some(Tok::Symbol(">"))
            | Some(Tok::Symbol(">=")) => Some(PredOp::Range),
            _ => None,
        };
        let Some(op) = op else {
            return Err(self.err("expected comparison operator"));
        };
        self.pos += 1;
        // right side
        let rhs_before = refs.len();
        self.parse_additive(refs, &mut false)?;
        let rhs_is_col = refs.len() > rhs_before;
        // col-vs-literal => selectivity predicate; col-vs-col => join filter
        // (columns recorded in refs either way).
        if lhs_single && !rhs_is_col {
            preds.push((refs[before].clone(), op));
        }
        Ok(())
    }

    fn resolve_ref(
        &self,
        r: &ColRef,
        aliases: &[(Option<String>, TableId)],
        scope: &[TableId],
    ) -> Result<ColumnId, ParseError> {
        let hint = match &r.table_alias {
            None => None,
            Some(a) => {
                let t = aliases
                    .iter()
                    .find_map(|(alias, t)| {
                        if alias.as_deref() == Some(a.as_str()) {
                            Some(*t)
                        } else {
                            None
                        }
                    })
                    .or_else(|| self.resolver.resolve_table(a));
                match t {
                    Some(t) => Some(t),
                    None => {
                        return Err(ParseError {
                            message: format!("unknown table or alias `{a}`"),
                            offset: r.offset,
                        })
                    }
                }
            }
        };
        self.resolver
            .resolve_column(hint, scope, &r.name)
            .ok_or_else(|| ParseError {
                message: format!("unknown column `{}`", r.name),
                offset: r.offset,
            })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    [
        "from", "where", "group", "order", "limit", "having", "on", "and", "or", "select", "by",
        "as", "join", "inner", "left", "right", "full", "outer", "cross", "union", "not",
        "between", "like", "in", "is", "asc", "desc", "distinct",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

fn is_join_keyword(s: &str) -> bool {
    ["join", "inner", "left", "right", "full", "outer", "cross"]
        .iter()
        .any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::SimpleResolver;

    fn resolver() -> SimpleResolver {
        let mut r = SimpleResolver::new();
        // sales: id=0 amount=1 region=2 day=3 cust=4
        r.add_table("sales", &["id", "amount", "region", "day", "cust"]);
        // customers: id=5 name=6 tier=7
        r.add_table("customers", &["id", "name", "tier"]);
        r
    }

    #[test]
    fn simple_select() {
        let r = resolver();
        let q = parse_query("SELECT amount, region FROM sales", &r).unwrap();
        assert_eq!(q.anchor, TableId(0));
        assert_eq!(q.select, ColumnSet::from_ids(&[1, 2]));
        assert!(q.filter.is_empty());
        assert!(!q.aggregates);
        assert!(q.raw_sql.is_some());
    }

    #[test]
    fn full_clause_query() {
        let r = resolver();
        let q = parse_query(
            "SELECT region, SUM(amount) AS total FROM sales \
             WHERE day >= 100 AND region = 'west' \
             GROUP BY region ORDER BY region DESC LIMIT 10;",
            &r,
        )
        .unwrap();
        assert_eq!(q.select, ColumnSet::from_ids(&[1, 2]));
        assert_eq!(q.filter, ColumnSet::from_ids(&[2, 3]));
        assert_eq!(q.group_by, ColumnSet::from_ids(&[2]));
        assert_eq!(q.order_by, vec![ColumnId(2)]);
        assert!(q.aggregates);
        assert_eq!(q.predicates.len(), 2);
        let eq = q.predicates.iter().find(|p| p.op == PredOp::Eq).unwrap();
        assert_eq!(eq.column, ColumnId(2));
    }

    #[test]
    fn join_with_aliases() {
        let r = resolver();
        let q = parse_query(
            "SELECT s.amount, c.name FROM sales s JOIN customers c ON s.cust = c.id \
             WHERE c.tier = 'gold'",
            &r,
        )
        .unwrap();
        assert_eq!(q.anchor, TableId(0));
        assert_eq!(q.joins, vec![TableId(1)]);
        // join columns land in the filter set; only tier gets a predicate
        assert_eq!(q.filter, ColumnSet::from_ids(&[4, 5, 7]));
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].column, ColumnId(7));
    }

    #[test]
    fn comma_join() {
        let r = resolver();
        let q = parse_query(
            "SELECT name FROM customers, sales WHERE customers.id = sales.cust",
            &r,
        )
        .unwrap();
        assert_eq!(q.anchor, TableId(1));
        assert_eq!(q.joins, vec![TableId(0)]);
        assert_eq!(q.filter, ColumnSet::from_ids(&[4, 5]));
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn select_star_expands() {
        let r = resolver();
        let q = parse_query("SELECT * FROM customers", &r).unwrap();
        assert_eq!(q.select, ColumnSet::from_ids(&[5, 6, 7]));
    }

    #[test]
    fn between_in_like() {
        let r = resolver();
        let q = parse_query(
            "SELECT id FROM sales WHERE day BETWEEN 1 AND 30 \
             AND region IN ('a','b') AND cust LIKE 'x%'",
            &r,
        )
        .unwrap();
        let ops: Vec<PredOp> = q.predicates.iter().map(|p| p.op).collect();
        assert!(ops.contains(&PredOp::Range));
        assert!(ops.contains(&PredOp::In));
        assert!(ops.contains(&PredOp::Like));
        assert_eq!(q.filter, ColumnSet::from_ids(&[2, 3, 4]));
    }

    #[test]
    fn or_arms_contribute_columns_but_no_predicates() {
        let r = resolver();
        let q = parse_query("SELECT id FROM sales WHERE region = 'a' OR day > 5", &r).unwrap();
        assert_eq!(q.filter, ColumnSet::from_ids(&[2, 3]));
        // Only the first AND-connected conjunct before OR is claimed.
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn count_star_and_arithmetic() {
        let r = resolver();
        let q = parse_query(
            "SELECT COUNT(*), SUM(amount * 2 + day) FROM sales WHERE id = 3",
            &r,
        )
        .unwrap();
        assert!(q.aggregates);
        assert_eq!(q.select, ColumnSet::from_ids(&[1, 3]));
    }

    #[test]
    fn errors_are_reported() {
        let r = resolver();
        assert!(parse_query("SELECT x FROM sales", &r).is_err());
        assert!(parse_query("SELECT id FROM nope", &r).is_err());
        assert!(parse_query("SELECT id sales", &r).is_err());
        assert!(parse_query("SELECT id FROM sales WHERE", &r).is_err());
        assert!(parse_query("SELECT id FROM sales WHERE id = (SELECT 1)", &r).is_err());
        assert!(parse_query("SELECT 'unterminated FROM sales", &r).is_err());
        let e = parse_query("SELECT zzz FROM sales", &r).unwrap_err();
        assert!(e.to_string().contains("zzz"));
    }

    #[test]
    fn total_over_hostile_inputs() {
        let r = resolver();
        // Multi-byte UTF-8 where a two-byte symbol probe would slice
        // mid-character: must error, not panic.
        assert!(parse_query("SELECT id FROM sales WHERE id €", &r).is_err());
        assert!(parse_query("€", &r).is_err());
        // Deep nesting must hit the depth bound, not the thread stack.
        let deep = format!("SELECT id FROM sales WHERE {}id = 1", "(".repeat(100_000));
        let e = parse_query(&deep, &r).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let deep_expr = format!("SELECT {}id FROM sales", "(".repeat(100_000));
        assert!(parse_query(&deep_expr, &r).is_err());
        // Nesting below the bound still parses.
        let ok = format!(
            "SELECT id FROM sales WHERE {}id = 1{}",
            "(".repeat(64),
            ")".repeat(64)
        );
        assert!(parse_query(&ok, &r).is_ok());
    }

    #[test]
    fn quoted_identifiers_and_comments() {
        let r = resolver();
        let q = parse_query(
            "SELECT \"amount\" FROM sales -- trailing comment\n WHERE \"region\" = 'x'",
            &r,
        )
        .unwrap();
        assert_eq!(q.select, ColumnSet::from_ids(&[1]));
        assert_eq!(q.filter, ColumnSet::from_ids(&[2]));
    }

    #[test]
    fn is_null_and_not() {
        let r = resolver();
        let q = parse_query(
            "SELECT id FROM sales WHERE cust IS NOT NULL AND NOT day > 3",
            &r,
        )
        .unwrap();
        assert_eq!(q.filter, ColumnSet::from_ids(&[3, 4]));
    }
}
