//! The structural query model.
//!
//! CliffGuard models each query at the granularity its distance metrics need
//! (Section 5): per-clause column sets plus the predicate selectivities and
//! join/aggregation structure the cost model consumes. Full SQL text can be
//! attached for round-tripping but plays no role in identity.

use crate::colset::ColumnSet;
use crate::ids::{ColumnId, TableId};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Kind of a filter predicate. Determines both default selectivity and how
/// well a sorted projection / index prefix can exploit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredOp {
    /// Equality (`c = v`). Fully exploitable by a sort prefix.
    Eq,
    /// Range (`c > v`, `BETWEEN`, …). Exploitable by a sort prefix, but only
    /// as the last matched component.
    Range,
    /// Pattern match (`LIKE`). Prefix-exploitable only; we model it as
    /// partially exploitable.
    Like,
    /// Membership (`IN (…)`). Modeled like a small disjunction of equalities.
    In,
}

/// A filter predicate on a single column with an estimated selectivity in
/// `(0, 1]` (fraction of rows that survive the filter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Filtered column.
    pub column: ColumnId,
    /// Predicate kind.
    pub op: PredOp,
    /// Estimated fraction of rows passing the predicate.
    pub selectivity: f64,
}

impl Predicate {
    /// Creates a predicate, clamping selectivity into `(0, 1]`.
    pub fn new(column: ColumnId, op: PredOp, selectivity: f64) -> Self {
        Self {
            column,
            op,
            selectivity: selectivity.clamp(1e-9, 1.0),
        }
    }
}

/// Structural hash of a query, used to identify "the same query" across
/// workload windows (selectivities are quantized so float noise does not
/// split identities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QuerySignature(pub u64);

/// A single analytical query.
///
/// `select`, `filter`, `group_by` are column *sets*; `order_by` keeps column
/// order because sort-order matching is order-sensitive. `joins` lists
/// non-anchor tables touched by the query (the columnar engine charges a join
/// CPU term per joined table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// The anchor (FROM) table.
    pub anchor: TableId,
    /// Columns referenced in the SELECT clause.
    pub select: ColumnSet,
    /// Columns referenced in the WHERE clause.
    pub filter: ColumnSet,
    /// Columns referenced in the GROUP BY clause.
    pub group_by: ColumnSet,
    /// ORDER BY columns, in order.
    pub order_by: Vec<ColumnId>,
    /// Filter predicates with selectivities (subset of `filter` columns).
    pub predicates: Vec<Predicate>,
    /// Other tables joined in.
    pub joins: Vec<TableId>,
    /// Whether the query computes aggregates.
    pub aggregates: bool,
    /// Optional original SQL text (ignored for identity).
    pub raw_sql: Option<String>,
}

impl Query {
    /// Union of all columns referenced anywhere in the query — the paper's
    /// default query representation ("Euc-union (SWGO)").
    pub fn all_columns(&self) -> ColumnSet {
        let mut s = self.select.clone();
        s.union_with(&self.filter);
        s.union_with(&self.group_by);
        for &c in &self.order_by {
            s.insert(c);
        }
        s
    }

    /// ORDER BY columns as a set.
    pub fn order_by_set(&self) -> ColumnSet {
        ColumnSet::from_iter(self.order_by.iter().copied())
    }

    /// Combined selectivity of all predicates assuming independence.
    pub fn combined_selectivity(&self) -> f64 {
        self.predicates
            .iter()
            .map(|p| p.selectivity)
            .product::<f64>()
            .clamp(1e-12, 1.0)
    }

    /// Whether this query references any column at all. The paper drops
    /// column-free queries (e.g. `SELECT version()`) from the analysis.
    pub fn references_columns(&self) -> bool {
        !self.all_columns().is_empty()
    }

    /// Structural signature identifying this query across windows.
    ///
    /// Selectivities are quantized to a 1e-6 grid so that jitter below
    /// estimation precision does not create spurious new identities.
    pub fn signature(&self) -> QuerySignature {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.anchor.hash(&mut h);
        self.select.hash(&mut h);
        self.filter.hash(&mut h);
        self.group_by.hash(&mut h);
        self.order_by.hash(&mut h);
        for p in &self.predicates {
            p.column.hash(&mut h);
            p.op.hash(&mut h);
            ((p.selectivity * 1e6).round() as u64).hash(&mut h);
        }
        self.joins.hash(&mut h);
        self.aggregates.hash(&mut h);
        QuerySignature(h.finish())
    }
}

impl PartialEq for Query {
    fn eq(&self, other: &Self) -> bool {
        self.signature() == other.signature()
    }
}
impl Eq for Query {}

impl Hash for Query {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.signature().hash(state);
    }
}

/// Fluent builder for [`Query`] — the main construction path in tests,
/// examples, and generators.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    q: Query,
}

impl QueryBuilder {
    /// Starts a query against `anchor`.
    pub fn new(anchor: TableId) -> Self {
        Self {
            q: Query {
                anchor,
                select: ColumnSet::new(),
                filter: ColumnSet::new(),
                group_by: ColumnSet::new(),
                order_by: Vec::new(),
                predicates: Vec::new(),
                joins: Vec::new(),
                aggregates: false,
                raw_sql: None,
            },
        }
    }

    /// Adds SELECT columns.
    pub fn select(mut self, cols: &[u32]) -> Self {
        for &c in cols {
            self.q.select.insert(ColumnId(c));
        }
        self
    }

    /// Adds a predicate (also registers the column in the WHERE set).
    pub fn filter(mut self, col: u32, op: PredOp, selectivity: f64) -> Self {
        self.q.filter.insert(ColumnId(col));
        self.q
            .predicates
            .push(Predicate::new(ColumnId(col), op, selectivity));
        self
    }

    /// Adds GROUP BY columns and marks the query as aggregating.
    pub fn group_by(mut self, cols: &[u32]) -> Self {
        for &c in cols {
            self.q.group_by.insert(ColumnId(c));
        }
        self.q.aggregates = true;
        self
    }

    /// Appends ORDER BY columns.
    pub fn order_by(mut self, cols: &[u32]) -> Self {
        self.q.order_by.extend(cols.iter().map(|&c| ColumnId(c)));
        self
    }

    /// Adds a joined table.
    pub fn join(mut self, t: TableId) -> Self {
        self.q.joins.push(t);
        self
    }

    /// Marks the query as aggregating without group-by columns.
    pub fn aggregate(mut self) -> Self {
        self.q.aggregates = true;
        self
    }

    /// Attaches raw SQL text.
    pub fn raw_sql(mut self, sql: impl Into<String>) -> Self {
        self.q.raw_sql = Some(sql.into());
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Query {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> Query {
        QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .filter(3, PredOp::Eq, 0.01)
            .group_by(&[1])
            .order_by(&[2])
            .build()
    }

    #[test]
    fn all_columns_unions_clauses() {
        let q = q1();
        assert_eq!(q.all_columns(), ColumnSet::from_ids(&[1, 2, 3]));
        assert!(q.references_columns());
        assert!(q.aggregates);
    }

    #[test]
    fn signature_stable_and_sensitive() {
        let a = q1();
        let b = q1();
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a, b);
        let c = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .filter(3, PredOp::Range, 0.01)
            .group_by(&[1])
            .order_by(&[2])
            .build();
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn signature_ignores_raw_sql_and_tiny_jitter() {
        let a = q1();
        let mut b = q1();
        b.raw_sql = Some("SELECT 1".into());
        assert_eq!(a.signature(), b.signature());
        let c = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .filter(3, PredOp::Eq, 0.0100000001)
            .group_by(&[1])
            .order_by(&[2])
            .build();
        assert_eq!(a.signature(), c.signature());
    }

    #[test]
    fn order_by_order_matters() {
        let a = QueryBuilder::new(TableId(0))
            .select(&[1])
            .order_by(&[1, 2])
            .build();
        let b = QueryBuilder::new(TableId(0))
            .select(&[1])
            .order_by(&[2, 1])
            .build();
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn combined_selectivity_multiplies() {
        let q = QueryBuilder::new(TableId(0))
            .filter(1, PredOp::Eq, 0.1)
            .filter(2, PredOp::Range, 0.5)
            .build();
        assert!((q.combined_selectivity() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn predicate_clamps_selectivity() {
        let p = Predicate::new(ColumnId(0), PredOp::Eq, 0.0);
        assert!(p.selectivity > 0.0);
        let p = Predicate::new(ColumnId(0), PredOp::Eq, 2.0);
        assert_eq!(p.selectivity, 1.0);
    }

    #[test]
    fn column_free_query_detected() {
        let q = QueryBuilder::new(TableId(0)).build();
        assert!(!q.references_columns());
    }
}
