//! The drifting-workload generator.
//!
//! Mechanism: a pool of *active* query templates with Zipf-like popularity
//! emits timestamped queries window by window. Between windows the pool
//! **churns** — a popularity-weighted fraction of the active templates
//! retires and is replaced with fresh templates — and popularities receive
//! multiplicative log-normal jitter. Churn makes template overlap between
//! windows decay with lag (Figure 5); jitter plus churn together set the
//! scale of the inter-window workload distance (Table 1).

use super::shape::SchemaShape;
use crate::ids::TableId;
use crate::log::{QueryLog, SECS_PER_DAY};
use crate::query::{PredOp, Predicate, Query};
use crate::ColumnSet;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Configuration of a [`DriftingGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Schema to draw columns from.
    pub shape: SchemaShape,
    /// Number of windows to emit.
    pub n_windows: usize,
    /// Window length in days.
    pub window_days: u64,
    /// Query instances per window.
    pub queries_per_window: usize,
    /// Size of the active template pool.
    pub active_templates: usize,
    /// Fraction of the active pool replaced between consecutive windows.
    pub churn_per_window: f64,
    /// Std-dev of the log-normal popularity jitter applied between windows.
    pub popularity_sigma: f64,
    /// Zipf exponent for initial template popularity.
    pub zipf_s: f64,
    /// Probability that a template joins a second table.
    pub join_prob: f64,
    /// Probability that a churned slot is refilled by *re-activating* a
    /// previously retired template instead of a brand-new one. Real
    /// analytical workloads revisit business topics (Figure 5 shows ~10%
    /// template overlap even at 20-week lags), and this recurrence is what
    /// makes workload history informative about the future at all.
    pub recurrence_prob: f64,
    /// Relative jitter applied to predicate selectivities at emission time
    /// (0 keeps instances byte-identical to their template).
    pub selectivity_jitter: f64,
    /// PRNG seed; equal seeds give identical logs.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Scales query volume and pool size by `factor` (≥ memory/time knob for
    /// "quick" vs "full" experiment scale).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.queries_per_window =
            ((self.queries_per_window as f64 * factor).round() as usize).max(10);
        self.active_templates = ((self.active_templates as f64 * factor).round() as usize).max(5);
        self
    }
}

/// One active template: a prototype query plus its popularity weight.
#[derive(Debug, Clone)]
struct ActiveTemplate {
    proto: Arc<Query>,
    weight: f64,
}

/// Generates drifting, timestamped query logs (see module docs).
#[derive(Debug)]
pub struct DriftingGenerator {
    cfg: GeneratorConfig,
    rng: ChaCha8Rng,
    active: Vec<ActiveTemplate>,
    /// Previously active templates that may be re-activated later.
    retired: Vec<Arc<Query>>,
    /// Popularity of each table as a template anchor (Zipf over tables).
    table_weights: Vec<f64>,
    /// Per-table, per-column draw weights (some columns are hot).
    column_weights: Vec<Vec<f64>>,
}

impl DriftingGenerator {
    /// Creates a generator and its initial active template pool.
    pub fn new(cfg: GeneratorConfig) -> Self {
        assert!(cfg.n_windows > 0 && cfg.queries_per_window > 0 && cfg.active_templates > 0);
        assert!((0.0..=1.0).contains(&cfg.churn_per_window));
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let table_weights: Vec<f64> = (0..cfg.shape.table_count())
            .map(|i| 1.0 / (i as f64 + 1.0).powf(0.8))
            .collect();
        let column_weights: Vec<Vec<f64>> = cfg
            .shape
            .tables()
            .map(|t| {
                (0..cfg.shape.columns_of(t))
                    .map(|k| 1.0 / (k as f64 + 1.0).powf(0.6))
                    .collect()
            })
            .collect();
        assert!((0.0..=1.0).contains(&cfg.recurrence_prob));
        let mut gen = Self {
            cfg,
            rng,
            active: Vec::new(),
            retired: Vec::new(),
            table_weights,
            column_weights,
        };
        gen.active = (0..gen.cfg.active_templates)
            .map(|rank| ActiveTemplate {
                proto: Arc::new(gen.fresh_template()),
                weight: 1.0 / (rank as f64 + 1.0).powf(gen.cfg.zipf_s),
            })
            .collect();
        gen
    }

    /// The schema shape queries are drawn from.
    pub fn shape(&self) -> &SchemaShape {
        &self.cfg.shape
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Generates the full log: `n_windows` windows of `window_days` days.
    pub fn generate(&mut self) -> QueryLog {
        let mut log = QueryLog::new();
        let win_secs = self.cfg.window_days * SECS_PER_DAY;
        for w in 0..self.cfg.n_windows {
            let start = w as u64 * win_secs;
            // timestamps: sorted uniform draws within the window
            let mut ts: Vec<u64> = (0..self.cfg.queries_per_window)
                .map(|_| start + self.rng.random_range(0..win_secs))
                .collect();
            ts.sort_unstable();
            for t in ts {
                let q = self.sample_query();
                log.push(t, q);
            }
            if w + 1 < self.cfg.n_windows {
                self.advance_window();
            }
        }
        log
    }

    /// Draws one query instance from the current pool.
    fn sample_query(&mut self) -> Arc<Query> {
        let idx = self.weighted_index(&self.active.iter().map(|a| a.weight).collect::<Vec<_>>());
        let proto = Arc::clone(&self.active[idx].proto);
        if self.cfg.selectivity_jitter > 0.0 {
            let mut q = (*proto).clone();
            for p in &mut q.predicates {
                let j = 1.0 + self.cfg.selectivity_jitter * (self.rng.random::<f64>() - 0.5);
                p.selectivity = (p.selectivity * j).clamp(1e-9, 1.0);
            }
            Arc::new(q)
        } else {
            proto
        }
    }

    /// Applies inter-window drift: churn + popularity jitter.
    fn advance_window(&mut self) {
        // Popularity jitter: multiplicative log-normal.
        if self.cfg.popularity_sigma > 0.0 {
            for t in &mut self.active {
                let z = standard_normal(&mut self.rng);
                t.weight *= (self.cfg.popularity_sigma * z).exp();
            }
        }
        // Churn: replace a fraction of the pool. Victims are drawn
        // proportionally to popularity — business "topics" retire wholesale,
        // taking their query mass with them; this is what makes template
        // overlap between windows decay the way Figure 5 reports (~35%
        // between consecutive 28-day windows for R1). The replacement
        // inherits the victim's weight, so total mass is conserved.
        let n_replace = expected_count(
            self.cfg.churn_per_window * self.cfg.active_templates as f64,
            &mut self.rng,
        );
        for _ in 0..n_replace {
            let weights: Vec<f64> = self.active.iter().map(|t| t.weight).collect();
            let victim = self.weighted_index(&weights);
            let weight = self.active[victim].weight;
            // Re-activate a retired topic or mint a brand-new one.
            // Reactivation is recency-biased: business topics that return
            // are the ones that paused recently (monthly/seasonal cycles),
            // not arbitrary ancient history. We draw uniformly from the
            // most recently retired `2x active` templates.
            let proto = if !self.retired.is_empty()
                && self.rng.random::<f64>() < self.cfg.recurrence_prob
            {
                let horizon = (2 * self.cfg.active_templates).min(self.retired.len());
                let start = self.retired.len() - horizon;
                let i = self.rng.random_range(start..self.retired.len());
                self.retired.remove(i)
            } else {
                Arc::new(self.fresh_template())
            };
            let old = std::mem::replace(&mut self.active[victim], ActiveTemplate { proto, weight });
            self.retired.push(old.proto);
        }
        // Renormalize to keep weights in a sane range.
        let total: f64 = self.active.iter().map(|t| t.weight).sum();
        if total > 0.0 {
            for t in &mut self.active {
                t.weight /= total;
            }
        }
    }

    /// Draws a brand-new template from the universe.
    fn fresh_template(&mut self) -> Query {
        let anchor = TableId(self.weighted_index(&self.table_weights.clone()) as u32);
        let mut select = ColumnSet::new();
        let mut filter = ColumnSet::new();
        let mut group_by = ColumnSet::new();
        let mut order_by = Vec::new();
        let mut predicates = Vec::new();
        let mut joins = Vec::new();

        let n_select = 1 + self.rng.random_range(0..5);
        for _ in 0..n_select {
            select.insert(self.draw_column(anchor));
        }
        let n_filter = 1 + self.rng.random_range(0..3);
        for _ in 0..n_filter {
            let c = self.draw_column(anchor);
            if filter.insert(c) {
                let op = match self.rng.random_range(0..10) {
                    0..=4 => PredOp::Eq,
                    5..=7 => PredOp::Range,
                    8 => PredOp::In,
                    _ => PredOp::Like,
                };
                // log-uniform selectivity in [1e-4, 0.5]
                let lo: f64 = 1e-4;
                let hi: f64 = 0.5;
                let sel = lo * (hi / lo).powf(self.rng.random::<f64>());
                predicates.push(Predicate::new(c, op, sel));
            }
        }
        let aggregates = self.rng.random::<f64>() < 0.6;
        if aggregates && self.rng.random::<f64>() < 0.8 {
            let n_group = 1 + self.rng.random_range(0..3);
            for _ in 0..n_group {
                group_by.insert(self.draw_column(anchor));
            }
        }
        if self.rng.random::<f64>() < 0.4 {
            let c = self.draw_column(anchor);
            if !order_by.contains(&c) {
                order_by.push(c);
            }
        }
        if self.rng.random::<f64>() < self.cfg.join_prob && self.cfg.shape.table_count() > 1 {
            loop {
                let other = TableId(self.weighted_index(&self.table_weights.clone()) as u32);
                if other != anchor {
                    joins.push(other);
                    // pull a couple of the joined table's columns in
                    let jc = self.draw_column(other);
                    select.insert(jc);
                    filter.insert(self.draw_column(other));
                    break;
                }
            }
        }
        Query {
            anchor,
            select,
            filter,
            group_by,
            order_by,
            predicates,
            joins,
            aggregates,
            raw_sql: None,
        }
    }

    fn draw_column(&mut self, t: TableId) -> crate::ids::ColumnId {
        let weights = self.column_weights[t.index()].clone();
        let k = self.weighted_index(&weights) as u32;
        self.cfg.shape.column(t, k)
    }

    fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.random::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// Samples an integer with the given expectation (floor + Bernoulli on the
/// fractional part) so small churn rates still act over many windows.
fn expected_count(expectation: f64, rng: &mut ChaCha8Rng) -> usize {
    let base = expectation.floor() as usize;
    let frac = expectation - expectation.floor();
    base + usize::from(rng.random::<f64>() < frac)
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadProfile;

    #[test]
    fn deterministic_under_seed() {
        let mut g1 = WorkloadProfile::R1.generator(42);
        let mut g2 = WorkloadProfile::R1.generator(42);
        let l1 = g1.generate();
        let l2 = g2.generate();
        assert_eq!(l1.len(), l2.len());
        for (a, b) in l1.entries().iter().zip(l2.entries()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.query.signature(), b.query.signature());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let l1 = WorkloadProfile::R1.generator(1).generate();
        let l2 = WorkloadProfile::R1.generator(2).generate();
        let same = l1
            .entries()
            .iter()
            .zip(l2.entries())
            .all(|(a, b)| a.query.signature() == b.query.signature());
        assert!(!same);
    }

    #[test]
    fn emits_requested_volume() {
        let cfg = WorkloadProfile::S1.config(7);
        let n = cfg.n_windows * cfg.queries_per_window;
        let log = DriftingGenerator::new(cfg).generate();
        assert_eq!(log.len(), n);
    }

    #[test]
    fn windows_align_with_config() {
        let cfg = WorkloadProfile::S2.config(3);
        let days = cfg.window_days;
        let n_windows = cfg.n_windows;
        let log = DriftingGenerator::new(cfg).generate();
        let ws = log.windows_days(days);
        assert_eq!(ws.len(), n_windows);
        assert!(ws.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn r1_drifts_more_than_s1() {
        // Template overlap between consecutive windows should be markedly
        // lower for R1 than for the near-static S1.
        let overlap = |profile: WorkloadProfile| {
            let cfg = profile.config(11);
            let days = cfg.window_days;
            let log = DriftingGenerator::new(cfg).generate();
            let ws = log.windows_days(days);
            let mut tot = 0.0;
            for i in 0..ws.len() - 1 {
                tot += ws[i + 1].shared_template_fraction(&ws[i]);
            }
            tot / (ws.len() - 1) as f64
        };
        let r1 = overlap(WorkloadProfile::R1);
        let s1 = overlap(WorkloadProfile::S1);
        // (not exactly 1.0: rare tail templates may miss a window entirely)
        assert!(s1 > 0.85, "S1 should be near-static, got overlap {s1}");
        assert!(r1 < s1 - 0.1, "R1 ({r1}) should drift well below S1 ({s1})");
    }

    #[test]
    fn scaled_changes_volume() {
        let cfg = WorkloadProfile::R1.config(1).scaled(0.5);
        assert_eq!(cfg.queries_per_window, 160);
    }

    #[test]
    fn queries_reference_columns() {
        let log = WorkloadProfile::R1.generator(5).generate();
        assert!(log.entries().iter().all(|e| e.query.references_columns()));
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use crate::generator::WorkloadProfile;

    /// Checks (and prints, under `--nocapture`) the lag-1 template overlap
    /// per profile: every overlap must be a valid fraction, and the static
    /// profiles must overlap at least as much as the rapidly drifting one.
    #[test]
    fn lag1_overlaps_ordered_by_profile() {
        let mut overlaps = std::collections::HashMap::new();
        for (name, profile) in [
            ("R1", WorkloadProfile::R1),
            ("S1", WorkloadProfile::S1),
            ("S2", WorkloadProfile::S2),
        ] {
            let cfg = profile.config(11);
            let days = cfg.window_days;
            let log = DriftingGenerator::new(cfg).generate();
            let ws = log.windows_days(days);
            let mut tot = 0.0;
            for i in 0..ws.len() - 1 {
                let f = ws[i + 1].shared_template_fraction(&ws[i]);
                assert!((0.0..=1.0).contains(&f), "{name}: overlap {f} out of range");
                tot += f;
            }
            let mean = tot / (ws.len() - 1) as f64;
            overlaps.insert(name, mean);
        }
        assert!(
            overlaps["S1"] >= overlaps["R1"],
            "S1 must be more static than R1"
        );
        assert!(
            overlaps["S2"] >= overlaps["R1"],
            "S2 must be more static than R1"
        );
    }
}
