//! Schema shapes: how many tables, how many columns each.
//!
//! The workload generator and the storage catalog must agree on the id
//! space. [`SchemaShape`] is that agreement: a list of per-table column
//! counts, with global [`ColumnId`]s assigned densely in table order. The
//! `cliffguard-storage` crate consumes a shape to build a full catalog with
//! statistics; the generator consumes it to draw template columns.

use crate::ids::{ColumnId, TableId};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Per-table column counts with dense global column numbering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaShape {
    cols_per_table: Vec<u32>,
    offsets: Vec<u32>,
}

impl SchemaShape {
    /// Creates a shape from per-table column counts.
    pub fn new(cols_per_table: Vec<u32>) -> Self {
        assert!(
            !cols_per_table.is_empty(),
            "schema needs at least one table"
        );
        assert!(cols_per_table.iter().all(|&c| c > 0), "tables need columns");
        let mut offsets = Vec::with_capacity(cols_per_table.len());
        let mut acc = 0u32;
        for &c in &cols_per_table {
            offsets.push(acc);
            acc += c;
        }
        Self {
            cols_per_table,
            offsets,
        }
    }

    /// The default analytic-warehouse shape used by the experiments: a few
    /// wide fact tables plus many narrower dimension tables, echoing the R1
    /// customer's star schemas (310 tables in the paper; scaled down here —
    /// what matters for the algorithms is the *column count*, which drives
    /// the `2^n - 1` query-representation space of Section 5).
    pub fn analytic_default() -> Self {
        let mut cols = vec![24, 20, 18, 16]; // fact tables
        cols.extend(std::iter::repeat(8).take(12)); // dimensions
        cols.extend(std::iter::repeat(5).take(12)); // small dimensions
        Self::new(cols)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.cols_per_table.len()
    }

    /// Total number of columns (the paper's `n`).
    pub fn column_count(&self) -> usize {
        (self.offsets.last().unwrap() + self.cols_per_table.last().unwrap()) as usize
    }

    /// Number of columns of one table.
    pub fn columns_of(&self, t: TableId) -> u32 {
        self.cols_per_table[t.index()]
    }

    /// Global column-id range of a table.
    pub fn column_range(&self, t: TableId) -> Range<u32> {
        let start = self.offsets[t.index()];
        start..start + self.cols_per_table[t.index()]
    }

    /// The table owning a global column id.
    pub fn table_of(&self, c: ColumnId) -> TableId {
        let i = match self.offsets.binary_search(&c.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        debug_assert!(
            c.0 < self.offsets[i] + self.cols_per_table[i],
            "column id out of range"
        );
        TableId(i as u32)
    }

    /// The `k`-th column of table `t`.
    pub fn column(&self, t: TableId, k: u32) -> ColumnId {
        debug_assert!(k < self.cols_per_table[t.index()]);
        ColumnId(self.offsets[t.index()] + k)
    }

    /// Iterates all table ids.
    pub fn tables(&self) -> impl Iterator<Item = TableId> {
        (0..self.table_count() as u32).map(TableId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_numbering() {
        let s = SchemaShape::new(vec![3, 2, 4]);
        assert_eq!(s.table_count(), 3);
        assert_eq!(s.column_count(), 9);
        assert_eq!(s.column_range(TableId(0)), 0..3);
        assert_eq!(s.column_range(TableId(1)), 3..5);
        assert_eq!(s.column_range(TableId(2)), 5..9);
        assert_eq!(s.column(TableId(1), 1), ColumnId(4));
    }

    #[test]
    fn table_of_inverts_column() {
        let s = SchemaShape::new(vec![3, 2, 4]);
        for t in s.tables() {
            for c in s.column_range(t) {
                assert_eq!(s.table_of(ColumnId(c)), t);
            }
        }
    }

    #[test]
    fn default_shape_is_plausible() {
        let s = SchemaShape::analytic_default();
        assert!(s.table_count() >= 20);
        assert!(s.column_count() >= 150);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_shape_rejected() {
        SchemaShape::new(vec![]);
    }
}
