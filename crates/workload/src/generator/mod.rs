//! Seeded generative models for the paper's evaluation workloads.
//!
//! The paper evaluates on a proprietary trace (**R1**: 430K+ OLAP queries
//! from a major Vertica customer over one year, 310 tables) plus two
//! synthetic re-orderings of it (**S1**: near-static; **S2**: uniformly
//! drifting). The trace cannot be redistributed, so this module provides a
//! calibrated *generative* substitute (see DESIGN.md §1):
//!
//! * a query-template universe over a configurable [`SchemaShape`];
//! * Zipf-distributed template popularity with per-window **topic churn**
//!   (templates retire, fresh ones appear) and popularity jitter — the two
//!   mechanisms behind the template-overlap decay of Figure 5;
//! * per-profile drift calibration targeting the Table 1 δ statistics.
//!
//! Everything is deterministic under a fixed seed (`rand_chacha`).

mod drift;
mod shape;

pub use drift::{DriftingGenerator, GeneratorConfig};
pub use shape::SchemaShape;

/// The three workload profiles of the paper's evaluation (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadProfile {
    /// Simulated real-world drifting workload (the paper's R1).
    R1,
    /// Near-static workload: inter-window δ within `[0.1·m, m]` where `m`
    /// is R1's minimum observed change (the paper's S1).
    S1,
    /// Uniformly drifting workload spanning R1's δ range `[m, M]` (S2).
    S2,
}

impl WorkloadProfile {
    /// Default generator configuration for the profile at "laptop" scale.
    ///
    /// The scale is reduced relative to the paper's raw trace (which had
    /// 430K queries, 15.5K of them parseable) but keeps the drift dynamics;
    /// use [`GeneratorConfig::scaled`] to grow it.
    pub fn config(self, seed: u64) -> GeneratorConfig {
        let base = GeneratorConfig {
            shape: SchemaShape::analytic_default(),
            n_windows: 14,
            window_days: 28,
            queries_per_window: 320,
            active_templates: 90,
            churn_per_window: 0.0,
            popularity_sigma: 0.0,
            zipf_s: 1.1,
            join_prob: 0.25,
            recurrence_prob: 0.0,
            selectivity_jitter: 0.0,
            seed,
        };
        match self {
            // R1: pronounced topic churn + popularity wobble. Calibrated so
            // consecutive-window deltas spread over roughly a 20x range
            // (Table 1: min 0.00016, max 0.00311) and template overlap
            // decays like Figure 5.
            WorkloadProfile::R1 => GeneratorConfig {
                churn_per_window: 0.5,
                popularity_sigma: 0.55,
                recurrence_prob: 0.75,
                ..base
            },
            // S1: minimal change between windows ([0.1m, m]).
            WorkloadProfile::S1 => GeneratorConfig {
                churn_per_window: 0.004,
                popularity_sigma: 0.03,
                ..base
            },
            // S2: same delta range as R1 but exercised uniformly: steady
            // medium churn without the bursty popularity wobble.
            WorkloadProfile::S2 => GeneratorConfig {
                churn_per_window: 0.38,
                popularity_sigma: 0.25,
                recurrence_prob: 0.7,
                ..base
            },
        }
    }

    /// Builds the generator for this profile.
    pub fn generator(self, seed: u64) -> DriftingGenerator {
        DriftingGenerator::new(self.config(seed))
    }

    /// Profile name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadProfile::R1 => "R1",
            WorkloadProfile::S1 => "S1",
            WorkloadProfile::S2 => "S2",
        }
    }
}
