//! Compact bitsets over global column ids.
//!
//! The paper encodes a query as the set of columns it references — "each
//! projection can be represented as a vector in `{0,1}^m` where the i'th
//! coordinate represents the presence or absence of the i'th column"
//! (Challenge C3). [`ColumnSet`] is that vector, stored as packed 64-bit
//! words with canonical (trailing-zero-trimmed) representation so that
//! equality and hashing are structural.

use crate::ids::ColumnId;
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A set of [`ColumnId`]s backed by a packed bitset.
///
/// The representation is canonical: trailing all-zero words are trimmed, so
/// two sets with identical membership always compare equal and hash
/// identically no matter how they were built.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnSet {
    words: Vec<u64>,
}

impl ColumnSet {
    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from an iterator of column ids.
    #[allow(clippy::should_implement_trait)] // FromIterator is also implemented; the inherent name is clearer at call sites
    pub fn from_iter<I: IntoIterator<Item = ColumnId>>(iter: I) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.insert(c);
        }
        s
    }

    /// Creates a set from raw u32 column indices (test/convenience helper).
    pub fn from_ids(ids: &[u32]) -> Self {
        Self::from_iter(ids.iter().map(|&i| ColumnId(i)))
    }

    /// Inserts a column; returns `true` if it was newly added.
    pub fn insert(&mut self, c: ColumnId) -> bool {
        let (w, b) = (c.index() / WORD_BITS, c.index() % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Removes a column; returns `true` if it was present.
    pub fn remove(&mut self, c: ColumnId) -> bool {
        let (w, b) = (c.index() / WORD_BITS, c.index() % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        if present {
            self.trim();
        }
        present
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, c: ColumnId) -> bool {
        let (w, b) = (c.index() / WORD_BITS, c.index() % WORD_BITS);
        self.words.get(w).is_some_and(|&word| word & (1 << b) != 0)
    }

    /// Number of columns in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Union, in place.
    pub fn union_with(&mut self, other: &Self) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection of two sets.
    pub fn intersection(&self, other: &Self) -> Self {
        let n = self.words.len().min(other.words.len());
        let mut words: Vec<u64> = (0..n).map(|i| self.words[i] & other.words[i]).collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        Self { words }
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .enumerate()
            .map(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0))
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        Self { words }
    }

    /// Hamming distance: the number of columns present in exactly one of the
    /// two sets. This is the `S_{i,j}` numerator of the paper's Eq. (9).
    pub fn hamming(&self, other: &Self) -> usize {
        let n = self.words.len().max(other.words.len());
        (0..n)
            .map(|i| {
                let a = self.words.get(i).copied().unwrap_or(0);
                let b = other.words.get(i).copied().unwrap_or(0);
                (a ^ b).count_ones() as usize
            })
            .sum()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the two sets share no columns.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over member column ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ColumnId((wi * WORD_BITS) as u32 + b))
                }
            })
        })
    }

    /// Jaccard similarity `|A∩B| / |A∪B|` (1.0 for two empty sets).
    pub fn jaccard(&self, other: &Self) -> f64 {
        let inter = self.intersection(other).len();
        let uni = self.union(other).len();
        if uni == 0 {
            1.0
        } else {
            inter as f64 / uni as f64
        }
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<ColumnId> for ColumnSet {
    fn from_iter<I: IntoIterator<Item = ColumnId>>(iter: I) -> Self {
        ColumnSet::from_iter(iter)
    }
}

impl std::fmt::Display for ColumnSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ColumnSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ColumnId(3)));
        assert!(!s.insert(ColumnId(3)));
        assert!(s.insert(ColumnId(130)));
        assert!(s.contains(ColumnId(3)));
        assert!(s.contains(ColumnId(130)));
        assert!(!s.contains(ColumnId(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(ColumnId(130)));
        assert!(!s.remove(ColumnId(130)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn canonical_equality_after_remove() {
        let mut a = ColumnSet::from_ids(&[1]);
        let mut b = ColumnSet::from_ids(&[1, 500]);
        b.remove(ColumnId(500));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        a.remove(ColumnId(1));
        assert!(a.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ColumnSet::from_ids(&[1, 2, 3, 100]);
        let b = ColumnSet::from_ids(&[2, 3, 4]);
        assert_eq!(a.union(&b), ColumnSet::from_ids(&[1, 2, 3, 4, 100]));
        assert_eq!(a.intersection(&b), ColumnSet::from_ids(&[2, 3]));
        assert_eq!(a.difference(&b), ColumnSet::from_ids(&[1, 100]));
        assert_eq!(a.hamming(&b), 3); // {1,4,100}
        assert!(ColumnSet::from_ids(&[2, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_disjoint(&ColumnSet::from_ids(&[7, 8])));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_ascending() {
        let s = ColumnSet::from_ids(&[65, 2, 0, 130]);
        let v: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![0, 2, 65, 130]);
    }

    #[test]
    fn jaccard_similarity() {
        let a = ColumnSet::from_ids(&[1, 2]);
        let b = ColumnSet::from_ids(&[2, 3]);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ColumnSet::new().jaccard(&ColumnSet::new()), 1.0);
    }

    #[test]
    fn display_formats() {
        let s = ColumnSet::from_ids(&[4, 1]);
        assert_eq!(s.to_string(), "{1,4}");
    }
}
