//! Query templates.
//!
//! Section 6.2 of the paper defines templates "by stripping away the query
//! details except for the sets of columns used in the select, where, group
//! by, and order by clauses" and uses template overlap between windows to
//! demonstrate workload drift (Figure 5). [`Template`] is exactly that
//! 4-tuple of column sets (plus the anchor table, without which column ids
//! would be ambiguous across tables).

use crate::colset::ColumnSet;
use crate::ids::TableId;
use crate::query::Query;
use serde::{Deserialize, Serialize};

/// Opaque dense identifier for a template within a [`TemplateInterner`]-like
/// context (the generators use it to track template churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(pub u32);

/// The clause-column-set template of a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Template {
    /// Anchor table.
    pub anchor: TableId,
    /// SELECT clause column set.
    pub select: ColumnSet,
    /// WHERE clause column set.
    pub filter: ColumnSet,
    /// GROUP BY clause column set.
    pub group_by: ColumnSet,
    /// ORDER BY clause column set (order-insensitive, per the paper).
    pub order_by: ColumnSet,
}

impl Template {
    /// Extracts the template of a query.
    pub fn of(q: &Query) -> Self {
        Self {
            anchor: q.anchor,
            select: q.select.clone(),
            filter: q.filter.clone(),
            group_by: q.group_by.clone(),
            order_by: q.order_by_set(),
        }
    }

    /// Union of all clause column sets.
    pub fn all_columns(&self) -> ColumnSet {
        let mut s = self.select.clone();
        s.union_with(&self.filter);
        s.union_with(&self.group_by);
        s.union_with(&self.order_by);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PredOp, QueryBuilder};

    #[test]
    fn template_strips_details() {
        // Same clause columns, different selectivity / sql text / predicate
        // op => same template.
        let a = QueryBuilder::new(TableId(1))
            .select(&[1, 2])
            .filter(3, PredOp::Eq, 0.01)
            .raw_sql("SELECT a, b FROM t WHERE c = 1")
            .build();
        let b = QueryBuilder::new(TableId(1))
            .select(&[1, 2])
            .filter(3, PredOp::Range, 0.4)
            .raw_sql("SELECT a, b FROM t WHERE c > 7")
            .build();
        assert_eq!(Template::of(&a), Template::of(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn template_order_by_is_a_set() {
        let a = QueryBuilder::new(TableId(0))
            .select(&[1])
            .order_by(&[1, 2])
            .build();
        let b = QueryBuilder::new(TableId(0))
            .select(&[1])
            .order_by(&[2, 1])
            .build();
        assert_eq!(Template::of(&a), Template::of(&b));
    }

    #[test]
    fn distinct_clause_placement_distinct_template() {
        let a = QueryBuilder::new(TableId(0)).select(&[1, 2]).build();
        let b = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(2, PredOp::Eq, 0.1)
            .build();
        assert_ne!(Template::of(&a), Template::of(&b));
        // ... but their column unions agree.
        assert_eq!(
            Template::of(&a).all_columns(),
            Template::of(&b).all_columns()
        );
    }
}
