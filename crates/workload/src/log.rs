//! Timestamped query logs and windowing.
//!
//! The evaluation divides a year-long query trace into fixed-size windows
//! (`W_0, W_1, …`), re-designs at the end of each window, and tests the
//! design on the next window (Section 6.1). [`QueryLog`] holds the trace and
//! produces those windows.

use crate::query::Query;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Seconds in a day; window sizes in the paper are given in days.
pub const SECS_PER_DAY: u64 = 86_400;

/// One timestamped query in a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogEntry {
    /// Seconds since the start of the trace.
    pub timestamp: u64,
    /// The query.
    pub query: Arc<Query>,
}

/// A timestamped query trace, kept sorted by timestamp.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryLog {
    entries: Vec<LogEntry>,
}

impl QueryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a log from entries (sorts by timestamp).
    pub fn from_entries(mut entries: Vec<LogEntry>) -> Self {
        entries.sort_by_key(|e| e.timestamp);
        Self { entries }
    }

    /// Appends an entry; the timestamp must not precede the last one
    /// (generators emit in order). Use [`QueryLog::from_entries`] otherwise.
    pub fn push(&mut self, timestamp: u64, query: Arc<Query>) {
        debug_assert!(
            self.entries
                .last()
                .map_or(true, |e| e.timestamp <= timestamp),
            "out-of-order push"
        );
        self.entries.push(LogEntry { timestamp, query });
    }

    /// Number of log entries (query instances, not distinct queries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Time span `(first, last)` in seconds, if non-empty.
    pub fn span(&self) -> Option<(u64, u64)> {
        Some((
            self.entries.first()?.timestamp,
            self.entries.last()?.timestamp,
        ))
    }

    /// Splits the trace into consecutive windows of `window_secs` seconds,
    /// each rendered as a weighted [`Workload`] (weight = occurrence count).
    ///
    /// Empty trailing windows are dropped; empty interior windows are kept
    /// (as empty workloads) so window indices remain aligned with time.
    pub fn windows(&self, window_secs: u64) -> Vec<Workload> {
        assert!(window_secs > 0, "window size must be positive");
        let Some((start, end)) = self.span() else {
            return Vec::new();
        };
        let n_windows = ((end - start) / window_secs + 1) as usize;
        let mut out = vec![Workload::new(); n_windows];
        for e in &self.entries {
            let w = ((e.timestamp - start) / window_secs) as usize;
            out[w].add(Arc::clone(&e.query), 1.0);
        }
        out
    }

    /// Windows of `days` days (paper: 7, 14, 21, 28).
    pub fn windows_days(&self, days: u64) -> Vec<Workload> {
        self.windows(days * SECS_PER_DAY)
    }

    /// The whole log as one workload.
    pub fn as_workload(&self) -> Workload {
        let mut w = Workload::new();
        for e in &self.entries {
            w.add(Arc::clone(&e.query), 1.0);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;
    use crate::query::QueryBuilder;

    fn q(sel: &[u32]) -> Arc<Query> {
        Arc::new(QueryBuilder::new(TableId(0)).select(sel).build())
    }

    #[test]
    fn windows_partition_by_time() {
        let mut log = QueryLog::new();
        log.push(0, q(&[1]));
        log.push(10, q(&[1]));
        log.push(100, q(&[2]));
        log.push(250, q(&[3]));
        let ws = log.windows(100);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].total_weight(), 2.0);
        assert_eq!(ws[1].total_weight(), 1.0);
        assert_eq!(ws[2].total_weight(), 1.0);
    }

    #[test]
    fn empty_interior_windows_preserved() {
        let mut log = QueryLog::new();
        log.push(0, q(&[1]));
        log.push(350, q(&[2]));
        let ws = log.windows(100);
        assert_eq!(ws.len(), 4);
        assert!(ws[1].is_empty());
        assert!(ws[2].is_empty());
    }

    #[test]
    fn from_entries_sorts() {
        let log = QueryLog::from_entries(vec![
            LogEntry {
                timestamp: 50,
                query: q(&[2]),
            },
            LogEntry {
                timestamp: 10,
                query: q(&[1]),
            },
        ]);
        assert_eq!(log.entries()[0].timestamp, 10);
        assert_eq!(log.span(), Some((10, 50)));
    }

    #[test]
    fn as_workload_counts_occurrences() {
        let mut log = QueryLog::new();
        log.push(0, q(&[1]));
        log.push(1, q(&[1]));
        let w = log.as_workload();
        assert_eq!(w.len(), 1);
        assert_eq!(w.total_weight(), 2.0);
    }

    #[test]
    fn empty_log_yields_no_windows() {
        assert!(QueryLog::new().windows(100).is_empty());
        assert!(QueryLog::new().span().is_none());
    }

    #[test]
    fn windows_days_uses_day_units() {
        let mut log = QueryLog::new();
        log.push(0, q(&[1]));
        log.push(SECS_PER_DAY * 7, q(&[2]));
        assert_eq!(log.windows_days(7).len(), 2);
        assert_eq!(log.windows_days(14).len(), 1);
    }
}
