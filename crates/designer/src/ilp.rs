//! Exact structure selection by branch-and-bound.
//!
//! The paper's `OptimalLocalSearchDesigner` "solves an Integer Linear
//! Program to find an optimal set of structures that fit in the budget and
//! minimize the cost of Ŵ". The classic ILP (Papadomanolakis & Ailamaki,
//! and the paper's refs [61, 66]) has variables `x_c` (structure built) and
//! `y_{q,c}` (query `q` answered by `c`) — equivalent, after eliminating
//! `y`, to maximizing the atomic-model gain
//! `Σ_q w_q · (base_q − min_{c ∈ S} lat_{c,q})` subject to
//! `Σ_{c ∈ S} price_c ≤ B`.
//!
//! We solve that exactly with depth-first branch-and-bound. The upper bound
//! at each node adds the *standalone* gains of the remaining candidates,
//! taken fractionally in density order (a knapsack LP relaxation); since
//! marginal gains under the `min` objective are subadditive, standalone
//! gains upper-bound true marginal gains and the bound is valid.

use crate::greedy::BenefitMatrix;

/// Exact branch-and-bound selector over a [`BenefitMatrix`].
#[derive(Debug, Clone, Copy)]
pub struct IlpSelector {
    /// Candidates are pre-pruned to the top-`max_candidates` by standalone
    /// gain before the exact search (keeps worst-case tractable; 2^24
    /// nodes would not be).
    pub max_candidates: usize,
}

impl Default for IlpSelector {
    fn default() -> Self {
        Self { max_candidates: 22 }
    }
}

impl IlpSelector {
    /// Solves for the optimal subset under `budget_bytes`; returns chosen
    /// candidate indices (into the matrix).
    pub fn select<S: Clone>(&self, m: &BenefitMatrix<S>, budget_bytes: u64) -> Vec<usize> {
        // Prune to the most promising candidates, ordered by gain density.
        let mut order: Vec<usize> = (0..m.len())
            .filter(|&c| m.standalone_gain(c) > 0.0 && m.prices[c] <= budget_bytes)
            .collect();
        order.sort_by(|&a, &b| {
            let da = m.standalone_gain(a) / m.prices[a].max(1) as f64;
            let db = m.standalone_gain(b) / m.prices[b].max(1) as f64;
            db.total_cmp(&da)
        });
        order.truncate(self.max_candidates);
        if order.is_empty() {
            return Vec::new();
        }

        let base_cost = m.cost_of_set(&[]);
        let standalone: Vec<f64> = order.iter().map(|&c| m.standalone_gain(c)).collect();

        struct Search<'a, S> {
            m: &'a BenefitMatrix<S>,
            order: &'a [usize],
            standalone: &'a [f64],
            budget: u64,
            base_cost: f64,
            best_gain: f64,
            best_set: Vec<usize>,
        }

        impl<S: Clone> Search<'_, S> {
            /// Fractional-knapsack upper bound on the gain attainable from
            /// candidates `depth..` with `remaining` budget.
            fn bound(&self, depth: usize, remaining: u64) -> f64 {
                let mut left = remaining as f64;
                let mut b = 0.0;
                for i in depth..self.order.len() {
                    let price = self.m.prices[self.order[i]].max(1) as f64;
                    if left <= 0.0 {
                        break;
                    }
                    let take = (left / price).min(1.0);
                    b += self.standalone[i] * take;
                    left -= price * take;
                }
                b
            }

            fn dfs(&mut self, depth: usize, remaining: u64, current: &mut Vec<usize>) {
                let current_gain = self.base_cost - self.m.cost_of_set(current);
                if current_gain > self.best_gain {
                    self.best_gain = current_gain;
                    self.best_set = current.clone();
                }
                if depth == self.order.len() {
                    return;
                }
                if current_gain + self.bound(depth, remaining) <= self.best_gain + 1e-9 {
                    return; // prune
                }
                let c = self.order[depth];
                // Branch: include (if affordable), then exclude.
                if self.m.prices[c] <= remaining {
                    current.push(c);
                    self.dfs(depth + 1, remaining - self.m.prices[c], current);
                    current.pop();
                }
                self.dfs(depth + 1, remaining, current);
            }
        }

        // Warm-start with the greedy solution over the *full* candidate
        // pool: the exact search then returns the better of the two, so
        // pruning to `max_candidates` can never make the ILP lose to the
        // greedy heuristic, and the tight incumbent speeds up pruning.
        let greedy = m.greedy_select(budget_bytes);
        let greedy_gain = base_cost - m.cost_of_set(&greedy);
        let mut s = Search {
            m,
            order: &order,
            standalone: &standalone,
            budget: budget_bytes,
            base_cost,
            best_gain: greedy_gain,
            best_set: greedy,
        };
        let budget = s.budget;
        s.dfs(0, budget, &mut Vec::new());
        s.best_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::ColumnarCandidates;
    use crate::greedy::GreedyDesigner;
    use crate::traits::CandidateGen;
    use cliffguard_sim::ColumnarEngine;
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{PredOp, QueryBuilder, TableId, Workload};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 8_000_000,
        }])
    }

    fn workload() -> Workload {
        Workload::from_queries([
            (
                QueryBuilder::new(TableId(0))
                    .select(&[2])
                    .filter(1, PredOp::Eq, 0.001)
                    .build(),
                10.0,
            ),
            (
                QueryBuilder::new(TableId(0))
                    .select(&[3])
                    .filter(4, PredOp::Eq, 0.001)
                    .build(),
                6.0,
            ),
            (
                QueryBuilder::new(TableId(0))
                    .select(&[5, 6])
                    .filter(7, PredOp::Eq, 0.001)
                    .build(),
                2.0,
            ),
        ])
    }

    #[test]
    fn ilp_at_least_as_good_as_greedy() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let m = d.matrix(&workload());
        for budget in [300_000_000u64, 800_000_000, 3_000_000_000] {
            let greedy_cost = m.cost_of_set(&m.greedy_select(budget));
            let ilp_cost = m.cost_of_set(&IlpSelector::default().select(&m, budget));
            assert!(
                ilp_cost <= greedy_cost + 1e-9,
                "budget {budget}: ilp {ilp_cost} > greedy {greedy_cost}"
            );
        }
    }

    #[test]
    fn ilp_respects_budget() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let m = d.matrix(&workload());
        let budget = 500_000_000;
        let set = IlpSelector::default().select(&m, budget);
        let spent: u64 = set.iter().map(|&c| m.prices[c]).sum();
        assert!(spent <= budget);
    }

    #[test]
    fn ilp_matches_exhaustive_on_small_instance() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        let n = m.len().min(10);
        let budget = 800_000_000u64;
        // Exhaustive over the first n candidates.
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let price: u64 = set.iter().map(|&c| m.prices[c]).sum();
            if price <= budget {
                best = best.min(m.cost_of_set(&set));
            }
        }
        // ILP restricted to the same candidates must match.
        let ilp = IlpSelector { max_candidates: n };
        let got = m.cost_of_set(&ilp.select(&m, budget));
        // ILP prunes by standalone gain but over the same pool when
        // max_candidates >= pool, so it must reach the exhaustive optimum
        // (it may even beat it if pruning reordered, never be worse).
        assert!(got <= best + 1e-6, "ilp {got} vs exhaustive {best}");
    }

    #[test]
    fn empty_pool_handled() {
        let e = ColumnarEngine::new(catalog());
        let w = Workload::from_queries([(QueryBuilder::new(TableId(0)).select(&[1]).build(), 1.0)]);
        let cands = ColumnarCandidates.candidates(&e, &w);
        let m = crate::greedy::BenefitMatrix::build(&e, &w, cands);
        // With no budget nothing can be selected.
        assert!(IlpSelector::default().select(&m, 0).is_empty());
    }
}
