//! Engine-specific candidate enumeration.
//!
//! Commercial advisors derive candidates from the workload's queries: each
//! query suggests the structures that would serve it best, and similar
//! candidates are merged. We mirror that:
//!
//! * **Columnar**: per query and per touched table, a projection storing
//!   exactly the referenced columns, sorted by the most selective equality
//!   predicates, then the first range predicate, then group-by, then
//!   order-by columns. Additionally, per-table *merged* candidates union
//!   the columns of all of the table's queries (a wider projection that
//!   covers more but prunes less).
//! * **Row store**: per query, an index keyed by the equality-predicate
//!   columns (most selective first) optionally extended to cover the
//!   referenced columns; and, for grouped aggregates, a materialized view
//!   grouped by the query's group-by ∪ filter columns.

use crate::traits::CandidateGen;
use cliffguard_sim::Engine as _;
use cliffguard_sim::{ColumnarEngine, Index, MatView, Projection, RowEngine, RowStructure};
use cliffguard_workload::{ColumnId, ColumnSet, PredOp, Query, TableId, Workload};
use std::collections::HashMap;

/// Orders a query's predicate columns for a sort key / index key: equality
/// predicates by ascending selectivity, then the single most selective
/// range-ish predicate (anything after a range cannot be used).
fn predicate_key_order(
    q: &Query,
    table_of: impl Fn(ColumnId) -> TableId,
    t: TableId,
) -> Vec<ColumnId> {
    let mut eqs: Vec<(f64, ColumnId)> = Vec::new();
    let mut ranges: Vec<(f64, ColumnId)> = Vec::new();
    for p in &q.predicates {
        if table_of(p.column) != t {
            continue;
        }
        match p.op {
            PredOp::Eq => eqs.push((p.selectivity, p.column)),
            _ => ranges.push((p.selectivity, p.column)),
        }
    }
    eqs.sort_by(|a, b| a.0.total_cmp(&b.0));
    ranges.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut key: Vec<ColumnId> = eqs.into_iter().map(|(_, c)| c).collect();
    if let Some((_, c)) = ranges.first() {
        if !key.contains(c) {
            key.push(*c);
        }
    }
    key
}

/// Projection candidate generation for the columnar engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnarCandidates;

impl ColumnarCandidates {
    /// The tailored projection for one query on one table — also used to
    /// compute per-query "ideal design" latencies for the evaluation's
    /// ≥3×-improvable filter.
    pub fn tailored(engine: &ColumnarEngine, q: &Query, t: TableId) -> Option<Projection> {
        let catalog = engine.catalog();
        let referenced: ColumnSet = q
            .all_columns()
            .iter()
            .filter(|&c| catalog.table_of(c) == t)
            .collect();
        if referenced.is_empty() {
            return None;
        }
        let mut sort = predicate_key_order(q, |c| catalog.table_of(c), t);
        for c in q.group_by.iter().chain(q.order_by.iter().copied()) {
            if catalog.table_of(c) == t && !sort.contains(&c) {
                sort.push(c);
            }
        }
        sort.retain(|c| referenced.contains(*c));
        Some(Projection::new(t, referenced, sort))
    }
}

impl CandidateGen<ColumnarEngine> for ColumnarCandidates {
    fn candidates(&self, engine: &ColumnarEngine, w: &Workload) -> Vec<Projection> {
        let mut out: Vec<Projection> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Per-table merged column sets (weighted by query frequency for the
        // merged candidate's sort order choice).
        let mut merged: HashMap<TableId, (ColumnSet, HashMap<ColumnId, f64>)> = HashMap::new();

        for (q, wt) in w.iter() {
            let mut tables = vec![q.anchor];
            tables.extend(q.joins.iter().copied());
            for t in tables {
                let Some(p) = Self::tailored(engine, q, t) else {
                    continue;
                };
                let (cols, votes) = merged.entry(t).or_default();
                cols.union_with(&p.columns);
                for (rank, &c) in p.sort_order.iter().enumerate() {
                    *votes.entry(c).or_insert(0.0) += wt / (rank + 1) as f64;
                }
                if seen.insert((p.table, p.columns.clone(), p.sort_order.clone())) {
                    out.push(p);
                }
            }
        }
        // Merged per-table candidates: all referenced columns, with one
        // variant per highly-voted lead sort column (Vertica's DBD likewise
        // proposes a few differently-sorted table-wide projections — the
        // generalizing backbone that also serves queries it never saw).
        for (t, (cols, votes)) in merged {
            let mut ranked: Vec<(ColumnId, f64)> = votes.into_iter().collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let top: Vec<ColumnId> = ranked
                .into_iter()
                .map(|(c, _)| c)
                .filter(|c| cols.contains(*c))
                .take(4)
                .collect();
            for lead in 0..top.len() {
                let mut sort = vec![top[lead]];
                sort.extend(top.iter().copied().filter(|c| *c != top[lead]).take(2));
                let p = Projection::new(t, cols.clone(), sort);
                if seen.insert((p.table, p.columns.clone(), p.sort_order.clone())) {
                    out.push(p);
                }
            }
        }
        out
    }
}

/// Index / materialized-view candidate generation for the row engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowCandidates;

impl RowCandidates {
    /// Tailored structures for one query (used for ideal-latency checks):
    /// the covering index and, if aggregating, the matching view.
    pub fn tailored(engine: &RowEngine, q: &Query) -> Vec<RowStructure> {
        let catalog = engine.catalog();
        let t = q.anchor;
        let mut out = Vec::new();
        let key = predicate_key_order(q, |c| catalog.table_of(c), t);
        if !key.is_empty() {
            // Covering variant: key extended with remaining referenced cols.
            let mut covering = key.clone();
            for c in q.all_columns().iter() {
                if catalog.table_of(c) == t && !covering.contains(&c) {
                    covering.push(c);
                }
            }
            out.push(RowStructure::Index(Index::new(t, key.clone())));
            if covering.len() > key.len() {
                out.push(RowStructure::Index(Index::new(t, covering)));
            }
        }
        if q.aggregates && !q.group_by.is_empty() {
            let anchor_cols: ColumnSet = q
                .all_columns()
                .iter()
                .filter(|&c| catalog.table_of(c) == t)
                .collect();
            let mut group: ColumnSet = q
                .group_by
                .iter()
                .filter(|&c| catalog.table_of(c) == t)
                .collect();
            // Views must be grouped by the filter columns too, or the
            // engine cannot apply the query's predicates against them.
            for c in q.filter.iter() {
                if catalog.table_of(c) == t {
                    group.insert(c);
                }
            }
            if !group.is_empty() {
                let cols = anchor_cols.union(&group);
                out.push(RowStructure::MatView(MatView::new(t, cols, group)));
            }
        }
        out
    }
}

impl CandidateGen<RowEngine> for RowCandidates {
    fn candidates(&self, engine: &RowEngine, w: &Workload) -> Vec<RowStructure> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (q, _) in w.iter() {
            for s in Self::tailored(engine, q) {
                if seen.insert(s.clone()) {
                    out.push(s);
                }
            }
            // Join-side single-column indexes on joined tables' predicates.
            let catalog = engine.catalog();
            for &t in &q.joins {
                let key = predicate_key_order(q, |c| catalog.table_of(c), t);
                if !key.is_empty() {
                    let s = RowStructure::Index(Index::new(t, key));
                    if seen.insert(s.clone()) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_sim::{Engine, PhysicalDesign as _};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::QueryBuilder;

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..6)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(1000),
                })
                .collect(),
            rows: 5_000_000,
        }])
    }

    #[test]
    fn columnar_candidates_cover_their_query() {
        let e = ColumnarEngine::new(catalog());
        let q = QueryBuilder::new(TableId(0))
            .select(&[2, 3])
            .filter(1, PredOp::Eq, 0.01)
            .group_by(&[2])
            .build();
        let w = Workload::from_queries([(q.clone(), 1.0)]);
        let cands = ColumnarCandidates.candidates(&e, &w);
        assert!(!cands.is_empty());
        let referenced = ColumnSet::from_ids(&[1, 2, 3]);
        assert!(cands.iter().all(|p| p.covers(&referenced)));
        // Tailored candidate sorts by the predicate column first.
        assert_eq!(cands[0].sort_order.first(), Some(&ColumnId(1)));
    }

    #[test]
    fn columnar_tailored_achieves_speedup() {
        let e = ColumnarEngine::new(catalog());
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Eq, 0.001)
            .build();
        let p = ColumnarCandidates::tailored(&e, &q, TableId(0)).unwrap();
        let d = cliffguard_sim::ColumnarDesign::from_structures(vec![p]);
        let fast = e.query_latency_ms(&q, &d);
        let slow = e.query_latency_ms(&q, &cliffguard_sim::ColumnarDesign::empty());
        assert!(fast * 3.0 < slow);
    }

    #[test]
    fn merged_candidate_unions_columns() {
        let e = ColumnarEngine::new(catalog());
        let q1 = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Eq, 0.01)
            .build();
        let q2 = QueryBuilder::new(TableId(0))
            .select(&[3])
            .filter(1, PredOp::Eq, 0.01)
            .build();
        let w = Workload::from_queries([(q1, 1.0), (q2, 1.0)]);
        let cands = ColumnarCandidates.candidates(&e, &w);
        let union = ColumnSet::from_ids(&[1, 2, 3]);
        assert!(
            cands.iter().any(|p| p.columns == union),
            "expected a merged candidate with {union}"
        );
    }

    #[test]
    fn row_candidates_index_and_view() {
        let e = RowEngine::new(catalog());
        let q = QueryBuilder::new(TableId(0))
            .select(&[2, 3])
            .filter(1, PredOp::Eq, 0.01)
            .group_by(&[2])
            .build();
        let w = Workload::from_queries([(q, 1.0)]);
        let cands = RowCandidates.candidates(&e, &w);
        assert!(cands.iter().any(|s| matches!(s, RowStructure::Index(_))));
        let view = cands.iter().find_map(|s| match s {
            RowStructure::MatView(v) => Some(v),
            _ => None,
        });
        let v = view.expect("aggregate query should yield a view candidate");
        // Filter column folded into the view's grouping.
        assert!(v.group_by.contains(ColumnId(1)));
        assert!(v.group_by.contains(ColumnId(2)));
    }

    #[test]
    fn no_predicates_no_index_candidate() {
        let e = RowEngine::new(catalog());
        let q = QueryBuilder::new(TableId(0)).select(&[2]).build();
        let w = Workload::from_queries([(q, 1.0)]);
        let cands = RowCandidates.candidates(&e, &w);
        assert!(cands.iter().all(|s| !matches!(s, RowStructure::Index(_))));
    }

    #[test]
    fn candidates_deduplicated() {
        let e = ColumnarEngine::new(catalog());
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Eq, 0.01)
            .build();
        // Same query twice with different weights.
        let w = Workload::from_queries([(q.clone(), 1.0), (q, 2.0)]);
        let cands = ColumnarCandidates.candidates(&e, &w);
        let mut unique = std::collections::HashSet::new();
        for p in &cands {
            assert!(unique.insert(p.clone()), "duplicate candidate");
        }
    }
}
