//! Workload-compression wrapper.
//!
//! Commercial designers guard against over-fitting with heuristics that
//! "compress and summarize the workload" (the paper's refs [24, 45]; the
//! paper credits DBMS-X's smaller brittleness to "several heuristics …
//! such as omitting workload details"). [`CompressingDesigner`] retrofits
//! that behavior onto any nominal designer: it drops the long tail of
//! one-off queries before designing. Note the paper's verdict stands: this
//! is *not principled* — it reduces variance but provides no robustness
//! guarantee — which is exactly what the comparison experiments show.

use crate::traits::NominalDesigner;
use cliffguard_sim::Engine;
use cliffguard_workload::Workload;

/// Wraps a designer so that it only sees the head of the workload.
pub struct CompressingDesigner<D> {
    inner: D,
    /// Fraction of total workload mass kept (in `(0, 1]`).
    pub keep_mass: f64,
}

impl<D> CompressingDesigner<D> {
    /// Wraps `inner`, keeping the most frequent queries covering
    /// `keep_mass` of the weight.
    pub fn new(inner: D, keep_mass: f64) -> Self {
        assert!(keep_mass > 0.0 && keep_mass <= 1.0);
        Self { inner, keep_mass }
    }
}

impl<E: Engine, D: NominalDesigner<E>> NominalDesigner<E> for CompressingDesigner<D> {
    fn design(&self, w: &Workload, budget_bytes: u64) -> E::Design {
        if w.is_empty() {
            return self.inner.design(w, budget_bytes);
        }
        self.inner
            .design(&w.compress_top_mass(self.keep_mass), budget_bytes)
    }

    fn name(&self) -> String {
        format!(
            "{} (compressed {:.0}%)",
            self.inner.name(),
            self.keep_mass * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::ColumnarCandidates;
    use crate::greedy::GreedyDesigner;
    use cliffguard_sim::{ColumnarEngine, PhysicalDesign};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 8_000_000,
        }])
    }

    #[test]
    fn compression_ignores_the_tail() {
        let e = ColumnarEngine::new(catalog());
        let inner = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let d = CompressingDesigner::new(inner, 0.8);
        let w = Workload::from_queries([
            (
                QueryBuilder::new(TableId(0))
                    .select(&[1])
                    .filter(2, PredOp::Eq, 0.001)
                    .build(),
                95.0,
            ),
            (
                QueryBuilder::new(TableId(0))
                    .select(&[3])
                    .filter(4, PredOp::Eq, 0.001)
                    .build(),
                5.0,
            ),
        ]);
        let design = d.design(&w, u64::MAX / 2);
        // Only the head query's columns are covered.
        let covered: Vec<_> = design
            .structures()
            .iter()
            .map(|p| p.columns.clone())
            .collect();
        assert!(covered
            .iter()
            .any(|c| c.contains(cliffguard_workload::ColumnId(1))));
        assert!(!covered
            .iter()
            .any(|c| c.contains(cliffguard_workload::ColumnId(3))));
        assert!(d.name().contains("compressed 80%"));
    }

    #[test]
    fn empty_workload_passthrough() {
        let e = ColumnarEngine::new(catalog());
        let inner = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let d = CompressingDesigner::new(inner, 0.5);
        assert!(
            NominalDesigner::<ColumnarEngine>::design(&d, &Workload::new(), 1 << 30).is_empty()
        );
    }
}
