//! Designer abstractions.

use cliffguard_sim::Engine;
use cliffguard_workload::Workload;

/// A nominal designer `D(W, B)` — formulation (1) of the paper: given a
/// target workload and a storage budget, produce a design that (greedily /
/// approximately) minimizes `f(W, D)`.
pub trait NominalDesigner<E: Engine> {
    /// Produces a design for the workload within `budget_bytes`.
    fn design(&self, w: &Workload, budget_bytes: u64) -> E::Design;

    /// Designer name for reports.
    fn name(&self) -> String;
}

/// Enumerates candidate structures for a workload on a given engine.
pub trait CandidateGen<E: Engine> {
    /// Candidate structures worth considering for `w` (deduplicated).
    fn candidates(
        &self,
        engine: &E,
        w: &Workload,
    ) -> Vec<<E::Design as cliffguard_sim::PhysicalDesign>::Structure>;
}
