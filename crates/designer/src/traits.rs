//! Designer abstractions.

use cliffguard_sim::Engine;
use cliffguard_workload::Workload;

/// A nominal designer `D(W, B)` — formulation (1) of the paper: given a
/// target workload and a storage budget, produce a design that (greedily /
/// approximately) minimizes `f(W, D)`.
pub trait NominalDesigner<E: Engine> {
    /// Produces a design for the workload within `budget_bytes`.
    fn design(&self, w: &Workload, budget_bytes: u64) -> E::Design;

    /// Designer name for reports.
    fn name(&self) -> String;
}

impl<E: Engine, D: NominalDesigner<E> + ?Sized> NominalDesigner<E> for &D {
    fn design(&self, w: &Workload, budget_bytes: u64) -> E::Design {
        (**self).design(w, budget_bytes)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// Why a designer invocation did not yield a usable design.
///
/// The paper treats the nominal designer as an unreliable black box (its
/// deployment target, Vertica's DBD, is "slow, occasionally failing").
/// This taxonomy is the error half of the fallible designer contract:
/// wrappers (fault injectors, RPC designers) *originate* `Unavailable`,
/// while the session runtime *derives* `TimedOut` from a deadline and
/// `OverBudget`/`EmptyDesign` from its output-validation gate. Every
/// variant is recoverable — the robust-design session retries, degrades,
/// or falls back rather than propagating these into the descent.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignerFault {
    /// The designer could not be reached or crashed mid-call.
    Unavailable(String),
    /// The call exceeded its per-call deadline.
    TimedOut {
        /// How long the call took (ms).
        elapsed_ms: u64,
        /// The deadline it blew (ms).
        deadline_ms: u64,
    },
    /// The returned design costs more storage than the budget allows.
    OverBudget {
        /// The design's storage price (bytes).
        price_bytes: u64,
        /// The budget it violates (bytes).
        budget_bytes: u64,
    },
    /// The designer returned an empty design for a non-empty workload.
    EmptyDesign,
}

impl std::fmt::Display for DesignerFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignerFault::Unavailable(why) => write!(f, "designer unavailable: {why}"),
            DesignerFault::TimedOut {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "designer call took {elapsed_ms}ms (deadline {deadline_ms}ms)"
            ),
            DesignerFault::OverBudget {
                price_bytes,
                budget_bytes,
            } => write!(
                f,
                "design overruns budget: {price_bytes} bytes > {budget_bytes} bytes"
            ),
            DesignerFault::EmptyDesign => {
                write!(f, "empty design returned for a non-empty workload")
            }
        }
    }
}

impl std::error::Error for DesignerFault {}

/// A designer whose invocations can fail.
///
/// This is the interface the resilient design-session runtime talks to:
/// anything that may be slow, flaky, or wrong implements it directly
/// (e.g. a fault injector), and every infallible [`NominalDesigner`]
/// gains it through the [`Reliable`] adapter.
pub trait FallibleDesigner<E: Engine> {
    /// Attempts one design call for `w` within `budget_bytes`.
    fn try_design(&self, w: &Workload, budget_bytes: u64) -> Result<E::Design, DesignerFault>;

    /// Designer name for reports.
    fn name(&self) -> String;

    /// Declares that `attempts` calls were already made in a previous
    /// incarnation of this designer (a checkpointed session resuming).
    /// Implementations with call-indexed internal state (fault injectors)
    /// realign themselves here; the default is a no-op.
    fn note_prior_attempts(&self, _attempts: u64) {}
}

/// Adapter giving an infallible [`NominalDesigner`] the fallible
/// interface: every call succeeds.
///
/// Wrap by value or by reference (`Reliable(&designer)`), thanks to the
/// blanket `NominalDesigner` impl for references.
pub struct Reliable<D>(pub D);

impl<E: Engine, D: NominalDesigner<E>> FallibleDesigner<E> for Reliable<D> {
    fn try_design(&self, w: &Workload, budget_bytes: u64) -> Result<E::Design, DesignerFault> {
        Ok(self.0.design(w, budget_bytes))
    }
    fn name(&self) -> String {
        self.0.name()
    }
}

/// Enumerates candidate structures for a workload on a given engine.
pub trait CandidateGen<E: Engine> {
    /// Candidate structures worth considering for `w` (deduplicated).
    fn candidates(
        &self,
        engine: &E,
        w: &Workload,
    ) -> Vec<<E::Design as cliffguard_sim::PhysicalDesign>::Structure>;
}
