//! Greedy benefit/price designer — the nominal black box.
//!
//! The standard commercial-advisor recipe: evaluate each candidate's
//! standalone benefit per query once (the *atomic configuration*
//! approximation: each query is served by its single best structure), then
//! repeatedly add the candidate with the highest benefit-per-byte until the
//! budget is exhausted or nothing helps. This is deliberately a *nominal*
//! designer: it optimizes exactly the workload it is given, overfitting and
//! all — which is precisely the brittleness CliffGuard exists to fix.

use crate::traits::{CandidateGen, NominalDesigner};
use cliffguard_sim::{PhysicalDesign, PlanningEngine};
use cliffguard_workload::Workload;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Minimum total-ms gain for a structure to be worth adding.
const MIN_GAIN_MS: f64 = 1e-6;

/// CELF heap entry: a (possibly stale) upper bound on one candidate's
/// benefit-per-byte density, tagged with the selection round it was
/// computed in.
struct CelfEntry {
    density: f64,
    candidate: usize,
    round: usize,
}

impl PartialEq for CelfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CelfEntry {}
impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher density first; exact ties broken toward the
        // lower candidate index, matching the eager reference selection.
        self.density
            .total_cmp(&other.density)
            .then_with(|| other.candidate.cmp(&self.candidate))
    }
}

/// Precomputed per-(query, candidate) standalone latencies.
///
/// Shared by the greedy designer and the ILP selector so both optimize the
/// same objective.
pub struct BenefitMatrix<S> {
    /// The candidate structures.
    pub candidates: Vec<S>,
    /// Price (bytes) of each candidate.
    pub prices: Vec<u64>,
    /// Per distinct query: raw weight and latency under the empty design.
    weights: Vec<f64>,
    base: Vec<f64>,
    /// `lat[c][q]`: latency of query `q` under the design `{candidate c}`.
    lat: Vec<Vec<f64>>,
}

impl<S: Clone> BenefitMatrix<S> {
    /// Builds the matrix: one plan compilation per query, one plan
    /// evaluation per (query, candidate).
    pub fn build<E>(engine: &E, w: &Workload, candidates: Vec<S>) -> Self
    where
        E: PlanningEngine,
        E::Design: PhysicalDesign<Structure = S>,
        S: Send + Sync,
    {
        // Compile each distinct query once; every row of the matrix then
        // evaluates the same plans against a single-structure design,
        // skipping the per-call decomposition entirely.
        let weights: Vec<f64> = w.iter().map(|(_, wt)| wt).collect();
        let plans: Vec<E::Plan> = w.iter().map(|(q, _)| engine.compile_plan(q)).collect();
        let empty = E::Design::default();
        let base: Vec<f64> = plans
            .iter()
            .map(|p| engine.plan_latency_ms(p, &empty))
            .collect();
        let prices: Vec<u64> = candidates
            .iter()
            .map(|c| E::Design::structure_price(c, engine.catalog()))
            .collect();
        // The designer's hot loop: one plan evaluation per
        // (candidate, query) pair — minus the pairs the dependency
        // predicate rules out. `{c}` and `{}` differ only in `c`, so for a
        // plan that does not depend on `c` the standalone latency *is* the
        // base latency, bit-for-bit (the `plan_depends_on` soundness
        // contract); copying `base[q]` skips the evaluation without moving
        // a bit. Candidates are independent, so each row of the matrix is
        // built on a worker thread; rows come back in candidate order, so
        // the matrix — and everything greedy selection derives from it —
        // is identical at any thread count.
        let lat: Vec<Vec<f64>> = cliffguard_parallel::par_map(&candidates, |c| {
            let d = E::Design::from_structures(vec![c.clone()]);
            plans
                .iter()
                .zip(&base)
                .map(|(p, &b)| {
                    if engine.plan_depends_on(p, c) {
                        engine.plan_latency_ms(p, &d)
                    } else {
                        b
                    }
                })
                .collect()
        });
        Self {
            candidates,
            prices,
            weights,
            base,
            lat,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Weighted total latency of the workload when each query picks its
    /// best structure from `chosen` (or the base design).
    pub fn cost_of_set(&self, chosen: &[usize]) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(q, wt)| {
                let best = chosen
                    .iter()
                    .map(|&c| self.lat[c][q])
                    .fold(self.base[q], f64::min);
                wt * best
            })
            .sum()
    }

    /// Marginal gain (total weighted ms saved) of adding candidate `c` when
    /// queries currently run at `current` latencies.
    fn gain(&self, current: &[f64], c: usize) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(q, wt)| wt * (current[q] - self.lat[c][q]).max(0.0))
            .sum()
    }

    /// Standalone gain of a candidate against the base design.
    pub fn standalone_gain(&self, c: usize) -> f64 {
        self.gain(&self.base, c)
    }

    /// Greedy benefit-per-byte selection under a byte budget (CELF lazy
    /// greedy). Returns the chosen candidate indices in selection order.
    pub fn greedy_select(&self, budget_bytes: u64) -> Vec<usize> {
        self.greedy_select_with_stats(budget_bytes).0
    }

    /// [`greedy_select`](Self::greedy_select) plus the number of lazy
    /// re-evaluations performed — the work an eager rescan would have
    /// multiplied by the full candidate count every round.
    ///
    /// The objective is submodular under the atomic-configuration model:
    /// `current` only ever decreases pointwise, so a candidate's gain only
    /// shrinks between rounds and a previously computed density is a valid
    /// upper bound. The max-heap therefore only re-evaluates entries that
    /// surface at the top (CELF); everything below keeps its stale bound.
    /// Exact density ties break toward the lower candidate index, same as
    /// [`greedy_select_eager`](Self::greedy_select_eager), so both paths
    /// select identical sets in identical order.
    pub fn greedy_select_with_stats(&self, budget_bytes: u64) -> (Vec<usize>, u64) {
        let mut current = self.base.clone();
        let mut remaining = budget_bytes;
        let mut chosen: Vec<usize> = Vec::new();
        let mut reevaluations: u64 = 0;
        let mut heap: BinaryHeap<CelfEntry> = (0..self.candidates.len())
            .filter_map(|c| {
                let g = self.standalone_gain(c);
                (g > MIN_GAIN_MS).then(|| CelfEntry {
                    density: g / (self.prices[c].max(1) as f64),
                    candidate: c,
                    round: 0,
                })
            })
            .collect();
        while let Some(top) = heap.pop() {
            let c = top.candidate;
            if self.prices[c] > remaining {
                // The budget only shrinks: never affordable again.
                continue;
            }
            if top.round < chosen.len() {
                // Stale upper bound: re-evaluate against the current
                // latencies and re-push at the current round.
                reevaluations += 1;
                let g = self.gain(&current, c);
                if g > MIN_GAIN_MS {
                    heap.push(CelfEntry {
                        density: g / (self.prices[c].max(1) as f64),
                        candidate: c,
                        round: chosen.len(),
                    });
                }
                // Gains never grow, so a now-worthless candidate stays
                // worthless: drop it for good.
                continue;
            }
            // Fresh entry at the top: every other candidate's true density
            // sits at or below its (stale) bound, hence at or below this
            // one. Select it.
            remaining -= self.prices[c];
            for (q, cur) in current.iter_mut().enumerate() {
                *cur = cur.min(self.lat[c][q]);
            }
            chosen.push(c);
        }
        if reevaluations > 0 {
            if let Some(ct) =
                cliffguard_telemetry::counter("cliffguard.designer.celf.reevaluations")
            {
                ct.incr(reevaluations);
            }
        }
        (chosen, reevaluations)
    }

    /// The eager reference selection: recompute every candidate's gain each
    /// round and take the densest affordable one (ties toward the lower
    /// candidate index). O(rounds × candidates × queries) — kept as the
    /// specification that [`greedy_select`](Self::greedy_select) is tested
    /// against and as the bench comparison point.
    pub fn greedy_select_eager(&self, budget_bytes: u64) -> Vec<usize> {
        let mut current = self.base.clone();
        let mut remaining = budget_bytes;
        let mut chosen: Vec<usize> = Vec::new();
        let mut taken = vec![false; self.candidates.len()];
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (c, &already) in taken.iter().enumerate() {
                if already || self.prices[c] > remaining {
                    continue;
                }
                let g = self.gain(&current, c);
                if g <= MIN_GAIN_MS {
                    continue;
                }
                let density = g / (self.prices[c].max(1) as f64);
                if best.map_or(true, |(_, bd)| density > bd) {
                    best = Some((c, density));
                }
            }
            let Some((c, _)) = best else { break };
            taken[c] = true;
            remaining -= self.prices[c];
            for (q, cur) in current.iter_mut().enumerate() {
                *cur = cur.min(self.lat[c][q]);
            }
            chosen.push(c);
        }
        chosen
    }
}

/// The greedy nominal designer: candidate generation + greedy selection.
pub struct GreedyDesigner<'e, E, G> {
    engine: &'e E,
    generator: G,
    label: String,
}

impl<'e, E: PlanningEngine, G: CandidateGen<E>> GreedyDesigner<'e, E, G> {
    /// Creates the designer.
    pub fn new(engine: &'e E, generator: G, label: impl Into<String>) -> Self {
        Self {
            engine,
            generator,
            label: label.into(),
        }
    }

    /// The engine this designer targets.
    pub fn engine(&self) -> &'e E {
        self.engine
    }

    /// Builds the benefit matrix for a workload (exposed for the baselines
    /// that share it).
    pub fn matrix(&self, w: &Workload) -> BenefitMatrix<<E::Design as PhysicalDesign>::Structure> {
        let candidates = self.generator.candidates(self.engine, w);
        BenefitMatrix::build(self.engine, w, candidates)
    }
}

impl<E: PlanningEngine, G: CandidateGen<E>> NominalDesigner<E> for GreedyDesigner<'_, E, G> {
    fn design(&self, w: &Workload, budget_bytes: u64) -> E::Design {
        if w.is_empty() {
            return E::Design::default();
        }
        let m = self.matrix(w);
        let chosen = m.greedy_select(budget_bytes);
        E::Design::from_structures(
            chosen
                .into_iter()
                .map(|c| m.candidates[c].clone())
                .collect(),
        )
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::ColumnarCandidates;
    use cliffguard_sim::{ColumnarDesign, ColumnarEngine, Engine};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 8_000_000,
        }])
    }

    fn workload() -> Workload {
        Workload::from_queries([
            (
                QueryBuilder::new(TableId(0))
                    .select(&[2])
                    .filter(1, PredOp::Eq, 0.001)
                    .build(),
                10.0,
            ),
            (
                QueryBuilder::new(TableId(0))
                    .select(&[3, 4])
                    .filter(5, PredOp::Eq, 0.001)
                    .build(),
                5.0,
            ),
            (
                QueryBuilder::new(TableId(0)).select(&[6]).build(), // unhelpable scan
                1.0,
            ),
        ])
    }

    #[test]
    fn greedy_design_reduces_cost_within_budget() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let budget = 2_000_000_000; // 2 GB
        let design = d.design(&w, budget);
        assert!(!design.is_empty());
        assert!(design.price_bytes(e.catalog()) <= budget);
        let tuned = e.cost_f(&w, &design);
        let bare = e.cost_f(&w, &ColumnarDesign::empty());
        assert!(tuned < bare / 2.0, "tuned {tuned} vs bare {bare}");
    }

    #[test]
    fn zero_budget_yields_empty_design() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let design = d.design(&workload(), 0);
        assert!(design.is_empty());
    }

    #[test]
    fn empty_workload_yields_empty_design() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        assert!(d.design(&Workload::new(), u64::MAX).is_empty());
        assert_eq!(d.name(), "DBD");
    }

    #[test]
    fn matrix_cost_of_set_matches_greedy_intuition() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        assert!(!m.is_empty());
        let all: Vec<usize> = (0..m.len()).collect();
        // More structures never hurt under the atomic model.
        assert!(m.cost_of_set(&all) <= m.cost_of_set(&[]) + 1e-9);
        // Standalone gains are non-negative.
        for c in 0..m.len() {
            assert!(m.standalone_gain(c) >= 0.0);
        }
    }

    #[test]
    fn greedy_respects_budget_exactly() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        // Budget big enough for exactly the cheapest useful candidate.
        let min_price = *m.prices.iter().min().unwrap();
        let chosen = m.greedy_select(min_price);
        let spent: u64 = chosen.iter().map(|&c| m.prices[c]).sum();
        assert!(spent <= min_price);
    }

    #[test]
    fn larger_budget_never_worse() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        let small = m.cost_of_set(&m.greedy_select(500_000_000));
        let large = m.cost_of_set(&m.greedy_select(5_000_000_000));
        assert!(large <= small + 1e-9);
    }

    #[test]
    fn celf_matches_eager_on_real_matrix() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let m = d.matrix(&workload());
        for budget in [0, 400_000_000, 2_000_000_000, u64::MAX] {
            let (lazy, _) = m.greedy_select_with_stats(budget);
            assert_eq!(lazy, m.greedy_select_eager(budget), "budget {budget}");
        }
    }

    /// Deterministic pseudo-random matrix for exercising selection alone
    /// (no engine involved; fields are crate-visible).
    fn random_matrix(seed: u64, n_cand: usize, n_query: usize) -> BenefitMatrix<usize> {
        // SplitMix64 stream — self-contained, reproducible.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let unit = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64;
        let base: Vec<f64> = (0..n_query).map(|_| 100.0 + 900.0 * unit(next())).collect();
        let lat: Vec<Vec<f64>> = (0..n_cand)
            .map(|_| {
                (0..n_query)
                    // Sometimes better than base, sometimes worse.
                    .map(|q| base[q] * (0.05 + 1.4 * unit(next())))
                    .collect()
            })
            .collect();
        BenefitMatrix {
            candidates: (0..n_cand).collect(),
            prices: (0..n_cand).map(|_| 1 + next() % 1000).collect(),
            weights: (0..n_query).map(|_| 1.0 + 9.0 * unit(next())).collect(),
            base,
            lat,
        }
    }

    #[test]
    fn celf_matches_eager_on_random_matrices() {
        for seed in 0..50u64 {
            let m = random_matrix(seed, 1 + (seed as usize % 17), 1 + (seed as usize % 7));
            for budget in [0, 50, 500, 5_000, u64::MAX] {
                let (lazy, _) = m.greedy_select_with_stats(budget);
                let eager = m.greedy_select_eager(budget);
                assert_eq!(lazy, eager, "seed {seed} budget {budget}");
            }
        }
    }

    #[test]
    fn celf_reevaluates_less_than_eager_rescans() {
        let m = random_matrix(7, 40, 10);
        let (chosen, reevals) = m.greedy_select_with_stats(u64::MAX);
        assert!(!chosen.is_empty());
        // An eager implementation rescans every remaining candidate each
        // round; CELF must do strictly less re-evaluation work.
        let eager_rescans = (chosen.len() as u64) * (m.len() as u64);
        assert!(
            reevals < eager_rescans,
            "CELF {reevals} vs eager bound {eager_rescans}"
        );
    }
}
