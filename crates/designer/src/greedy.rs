//! Greedy benefit/price designer — the nominal black box.
//!
//! The standard commercial-advisor recipe: evaluate each candidate's
//! standalone benefit per query once (the *atomic configuration*
//! approximation: each query is served by its single best structure), then
//! repeatedly add the candidate with the highest benefit-per-byte until the
//! budget is exhausted or nothing helps. This is deliberately a *nominal*
//! designer: it optimizes exactly the workload it is given, overfitting and
//! all — which is precisely the brittleness CliffGuard exists to fix.

use crate::traits::{CandidateGen, NominalDesigner};
use cliffguard_sim::{Engine, PhysicalDesign};
use cliffguard_workload::Workload;

/// Minimum total-ms gain for a structure to be worth adding.
const MIN_GAIN_MS: f64 = 1e-6;

/// Precomputed per-(query, candidate) standalone latencies.
///
/// Shared by the greedy designer and the ILP selector so both optimize the
/// same objective.
pub struct BenefitMatrix<S> {
    /// The candidate structures.
    pub candidates: Vec<S>,
    /// Price (bytes) of each candidate.
    pub prices: Vec<u64>,
    /// Per distinct query: raw weight and latency under the empty design.
    weights: Vec<f64>,
    base: Vec<f64>,
    /// `lat[c][q]`: latency of query `q` under the design `{candidate c}`.
    lat: Vec<Vec<f64>>,
}

impl<S: Clone> BenefitMatrix<S> {
    /// Builds the matrix: one engine evaluation per (query, candidate).
    pub fn build<E>(engine: &E, w: &Workload, candidates: Vec<S>) -> Self
    where
        E: Engine,
        E::Design: PhysicalDesign<Structure = S>,
        S: Send + Sync,
    {
        let queries: Vec<_> = w.iter().map(|(q, wt)| (q.clone(), wt)).collect();
        let empty = E::Design::default();
        let base: Vec<f64> = queries
            .iter()
            .map(|(q, _)| engine.query_latency_ms(q, &empty))
            .collect();
        let prices: Vec<u64> = candidates
            .iter()
            .map(|c| E::Design::structure_price(c, engine.catalog()))
            .collect();
        // The designer's hot loop: one engine evaluation per
        // (candidate, query) pair. Candidates are independent, so each
        // row of the matrix is built on a worker thread; rows come back
        // in candidate order, so the matrix — and everything greedy
        // selection derives from it — is identical at any thread count.
        let lat: Vec<Vec<f64>> = cliffguard_parallel::par_map(&candidates, |c| {
            let d = E::Design::from_structures(vec![c.clone()]);
            queries
                .iter()
                .map(|(q, _)| engine.query_latency_ms(q, &d))
                .collect()
        });
        Self {
            candidates,
            prices,
            weights: queries.iter().map(|(_, wt)| *wt).collect(),
            base,
            lat,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Weighted total latency of the workload when each query picks its
    /// best structure from `chosen` (or the base design).
    pub fn cost_of_set(&self, chosen: &[usize]) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(q, wt)| {
                let best = chosen
                    .iter()
                    .map(|&c| self.lat[c][q])
                    .fold(self.base[q], f64::min);
                wt * best
            })
            .sum()
    }

    /// Marginal gain (total weighted ms saved) of adding candidate `c` when
    /// queries currently run at `current` latencies.
    fn gain(&self, current: &[f64], c: usize) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(q, wt)| wt * (current[q] - self.lat[c][q]).max(0.0))
            .sum()
    }

    /// Standalone gain of a candidate against the base design.
    pub fn standalone_gain(&self, c: usize) -> f64 {
        self.gain(&self.base, c)
    }

    /// Greedy benefit-per-byte selection under a byte budget. Returns the
    /// chosen candidate indices in selection order.
    pub fn greedy_select(&self, budget_bytes: u64) -> Vec<usize> {
        let mut current = self.base.clone();
        let mut remaining = budget_bytes;
        let mut chosen: Vec<usize> = Vec::new();
        let mut available: Vec<usize> = (0..self.candidates.len()).collect();
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (slot, &c) in available.iter().enumerate() {
                if self.prices[c] > remaining {
                    continue;
                }
                let g = self.gain(&current, c);
                if g <= MIN_GAIN_MS {
                    continue;
                }
                let density = g / (self.prices[c].max(1) as f64);
                if best.map_or(true, |(_, bd)| density > bd) {
                    best = Some((slot, density));
                }
            }
            let Some((slot, _)) = best else { break };
            let c = available.swap_remove(slot);
            remaining -= self.prices[c];
            for (q, cur) in current.iter_mut().enumerate() {
                *cur = cur.min(self.lat[c][q]);
            }
            chosen.push(c);
        }
        chosen
    }
}

/// The greedy nominal designer: candidate generation + greedy selection.
pub struct GreedyDesigner<'e, E, G> {
    engine: &'e E,
    generator: G,
    label: String,
}

impl<'e, E: Engine, G: CandidateGen<E>> GreedyDesigner<'e, E, G> {
    /// Creates the designer.
    pub fn new(engine: &'e E, generator: G, label: impl Into<String>) -> Self {
        Self {
            engine,
            generator,
            label: label.into(),
        }
    }

    /// The engine this designer targets.
    pub fn engine(&self) -> &'e E {
        self.engine
    }

    /// Builds the benefit matrix for a workload (exposed for the baselines
    /// that share it).
    pub fn matrix(&self, w: &Workload) -> BenefitMatrix<<E::Design as PhysicalDesign>::Structure> {
        let candidates = self.generator.candidates(self.engine, w);
        BenefitMatrix::build(self.engine, w, candidates)
    }
}

impl<E: Engine, G: CandidateGen<E>> NominalDesigner<E> for GreedyDesigner<'_, E, G> {
    fn design(&self, w: &Workload, budget_bytes: u64) -> E::Design {
        if w.is_empty() {
            return E::Design::default();
        }
        let m = self.matrix(w);
        let chosen = m.greedy_select(budget_bytes);
        E::Design::from_structures(
            chosen
                .into_iter()
                .map(|c| m.candidates[c].clone())
                .collect(),
        )
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::ColumnarCandidates;
    use cliffguard_sim::{ColumnarDesign, ColumnarEngine};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 8_000_000,
        }])
    }

    fn workload() -> Workload {
        Workload::from_queries([
            (
                QueryBuilder::new(TableId(0))
                    .select(&[2])
                    .filter(1, PredOp::Eq, 0.001)
                    .build(),
                10.0,
            ),
            (
                QueryBuilder::new(TableId(0))
                    .select(&[3, 4])
                    .filter(5, PredOp::Eq, 0.001)
                    .build(),
                5.0,
            ),
            (
                QueryBuilder::new(TableId(0)).select(&[6]).build(), // unhelpable scan
                1.0,
            ),
        ])
    }

    #[test]
    fn greedy_design_reduces_cost_within_budget() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let budget = 2_000_000_000; // 2 GB
        let design = d.design(&w, budget);
        assert!(!design.is_empty());
        assert!(design.price_bytes(e.catalog()) <= budget);
        let tuned = e.cost_f(&w, &design);
        let bare = e.cost_f(&w, &ColumnarDesign::empty());
        assert!(tuned < bare / 2.0, "tuned {tuned} vs bare {bare}");
    }

    #[test]
    fn zero_budget_yields_empty_design() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let design = d.design(&workload(), 0);
        assert!(design.is_empty());
    }

    #[test]
    fn empty_workload_yields_empty_design() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        assert!(d.design(&Workload::new(), u64::MAX).is_empty());
        assert_eq!(d.name(), "DBD");
    }

    #[test]
    fn matrix_cost_of_set_matches_greedy_intuition() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        assert!(!m.is_empty());
        let all: Vec<usize> = (0..m.len()).collect();
        // More structures never hurt under the atomic model.
        assert!(m.cost_of_set(&all) <= m.cost_of_set(&[]) + 1e-9);
        // Standalone gains are non-negative.
        for c in 0..m.len() {
            assert!(m.standalone_gain(c) >= 0.0);
        }
    }

    #[test]
    fn greedy_respects_budget_exactly() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        // Budget big enough for exactly the cheapest useful candidate.
        let min_price = *m.prices.iter().min().unwrap();
        let chosen = m.greedy_select(min_price);
        let spent: u64 = chosen.iter().map(|&c| m.prices[c]).sum();
        assert!(spent <= min_price);
    }

    #[test]
    fn larger_budget_never_worse() {
        let e = ColumnarEngine::new(catalog());
        let d = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let w = workload();
        let m = d.matrix(&w);
        let small = m.cost_of_set(&m.greedy_select(500_000_000));
        let large = m.cost_of_set(&m.greedy_select(5_000_000_000));
        assert!(large <= small + 1e-9);
    }
}
