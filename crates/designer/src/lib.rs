//! Nominal physical designers — the "existing designer" black boxes that
//! CliffGuard wraps.
//!
//! The paper's design principle (Section 2) is that CliffGuard *does not
//! replace* the DBMS's own designer: it treats it as a black box invoked
//! through its public API. This crate provides those black boxes for the
//! two simulated engines:
//!
//! * [`GreedyDesigner`] — the workhorse: per-query candidate generation
//!   ([`CandidateGen`]) followed by greedy benefit/price selection under a
//!   storage budget, the strategy of Vertica's DBD and most commercial
//!   advisors ("existing designers often use heuristics or greedy
//!   strategies" — the paper's footnote 4).
//! * [`IlpSelector`] — an exact branch-and-bound selection over a candidate
//!   set, used by the paper's `OptimalLocalSearchDesigner` baseline ("this
//!   algorithm then solves an Integer Linear Program…").
//! * [`ColumnarCandidates`] / [`RowCandidates`] — engine-specific candidate
//!   enumeration (projections; indexes and materialized views).
//!
//! Like real advisors, the greedy search evaluates candidates under the
//! *atomic configuration* approximation (each query is served by its single
//! best structure); final designs are always re-costed by the true engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod compress;
mod greedy;
mod ilp;
mod traits;

pub use candidates::{ColumnarCandidates, RowCandidates};
pub use compress::CompressingDesigner;
pub use greedy::{BenefitMatrix, GreedyDesigner};
pub use ilp::IlpSelector;
pub use traits::{CandidateGen, DesignerFault, FallibleDesigner, NominalDesigner, Reliable};
