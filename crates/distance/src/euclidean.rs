//! The paper's Euclidean workload distance, Eq. (9).
//!
//! `δ(W1, W2) = |V_{W1} − V_{W2}| × S × |V_{W1} − V_{W2}|ᵀ`, where `V_W` is
//! the normalized-frequency vector over column-subset query representations
//! and `S_{i,j}` is the Hamming distance between representations `i` and
//! `j` divided by `2·n` (`n` = total database columns) — so `S_{i,i} = 0`
//! and identical queries never contribute. `|·|` is the element-wise
//! absolute value. The sparse evaluation is `O(T²·n)` in the number of
//! distinct representations `T`, exactly as the paper claims.

use crate::metric::{ClauseMask, WorkloadDistance};
use crate::vector::{diff_support, ReprKey};
use cliffguard_workload::Workload;

/// Evaluates the quadratic form over a sparse difference support.
pub(crate) fn quadratic_form(diff: &[(ReprKey, f64)], n_columns: usize) -> f64 {
    if diff.is_empty() {
        return 0.0;
    }
    let coords = diff[0].0.coords_per_column();
    let norm = 2.0 * (n_columns * coords) as f64;
    let mut total = 0.0;
    for i in 0..diff.len() {
        for j in (i + 1)..diff.len() {
            let s = diff[i].0.hamming(&diff[j].0) as f64 / norm;
            total += 2.0 * diff[i].1 * diff[j].1 * s;
        }
    }
    total
}

/// `δ_euclidean` with a configurable clause mask (default: `SWGO`).
#[derive(Debug, Clone, Copy)]
pub struct DeltaEuclidean {
    /// Total number of columns in the database (the paper's `n`).
    pub n_columns: usize,
    /// Which clauses feed the union representation.
    pub mask: ClauseMask,
}

impl DeltaEuclidean {
    /// The paper's default metric: union over all four clauses.
    pub fn new(n_columns: usize) -> Self {
        Self {
            n_columns,
            mask: ClauseMask::SWGO,
        }
    }

    /// A single/custom clause-mask variant (Figure 11).
    pub fn with_mask(n_columns: usize, mask: ClauseMask) -> Self {
        Self { n_columns, mask }
    }
}

impl WorkloadDistance for DeltaEuclidean {
    fn distance(&self, a: &Workload, b: &Workload) -> f64 {
        let diff = diff_support(a, b, |q| ReprKey::union_of(q, self.mask));
        quadratic_form(&diff, self.n_columns)
    }

    fn name(&self) -> String {
        format!("Euc-union ({})", self.mask.label())
    }
}

/// `δ_separate`: like [`DeltaEuclidean`] but keeping the four clause column
/// sets separate (a 4-tuple representation), so the same column moving from
/// SELECT to WHERE registers as a change.
#[derive(Debug, Clone, Copy)]
pub struct DeltaSeparate {
    /// Total number of columns in the database.
    pub n_columns: usize,
}

impl DeltaSeparate {
    /// Creates the metric.
    pub fn new(n_columns: usize) -> Self {
        Self { n_columns }
    }
}

impl WorkloadDistance for DeltaSeparate {
    fn distance(&self, a: &Workload, b: &Workload) -> f64 {
        let diff = diff_support(a, b, ReprKey::separate_of);
        quadratic_form(&diff, self.n_columns)
    }

    fn name(&self) -> String {
        "Euc-separate".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_workload::{PredOp, Query, QueryBuilder, TableId};

    const N: usize = 16;

    fn q(sel: &[u32]) -> Query {
        QueryBuilder::new(TableId(0)).select(sel).build()
    }

    #[test]
    fn identical_workloads_have_zero_distance() {
        let w = Workload::from_queries([(q(&[1, 2]), 3.0), (q(&[3]), 1.0)]);
        let d = DeltaEuclidean::new(N);
        assert_eq!(d.distance(&w, &w), 0.0);
    }

    #[test]
    fn symmetric() {
        let w1 = Workload::from_queries([(q(&[1, 2]), 1.0), (q(&[3]), 2.0)]);
        let w2 = Workload::from_queries([(q(&[1]), 1.0), (q(&[4, 5]), 1.0)]);
        let d = DeltaEuclidean::new(N);
        assert!((d.distance(&w1, &w2) - d.distance(&w2, &w1)).abs() < 1e-15);
    }

    #[test]
    fn hand_computed_two_query_case() {
        // W1 = {A}, W2 = {B}; A = {1,2}, B = {2,3}. |Δ| = (1, 1);
        // S_AB = hamming({1,2},{2,3}) / 2n = 2/32. δ = 2·1·1·2/32 = 0.125.
        let w1 = Workload::from_queries([(q(&[1, 2]), 1.0)]);
        let w2 = Workload::from_queries([(q(&[2, 3]), 1.0)]);
        let d = DeltaEuclidean::new(N);
        assert!((d.distance(&w1, &w2) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn r2_intra_query_similarity() {
        // Requirement R2: swapping mass between *similar* queries yields a
        // smaller distance than between dissimilar ones.
        let base = Workload::from_queries([(q(&[1, 2]), 1.0), (q(&[1, 3]), 1.0)]);
        let to_similar = Workload::from_queries([(q(&[1, 2]), 1.0), (q(&[1, 4]), 1.0)]);
        let to_far = Workload::from_queries([(q(&[1, 2]), 1.0), (q(&[8, 9, 10, 11]), 1.0)]);
        let d = DeltaEuclidean::new(N);
        assert!(d.distance(&base, &to_similar) < d.distance(&base, &to_far));
    }

    #[test]
    fn frequency_shift_registers() {
        let w1 = Workload::from_queries([(q(&[1]), 9.0), (q(&[2]), 1.0)]);
        let w2 = Workload::from_queries([(q(&[1]), 1.0), (q(&[2]), 9.0)]);
        let w3 = Workload::from_queries([(q(&[1]), 8.0), (q(&[2]), 2.0)]);
        let d = DeltaEuclidean::new(N);
        let big = d.distance(&w1, &w2);
        let small = d.distance(&w1, &w3);
        assert!(big > small);
        assert!(small > 0.0);
    }

    #[test]
    fn normalized_to_unit_interval() {
        // Even maximally different workloads stay within [0, 1].
        let w1 = Workload::from_queries([(q(&[0]), 1.0)]);
        let all: Vec<u32> = (0..N as u32).collect();
        let w2 = Workload::from_queries([(q(&all), 1.0)]);
        let d = DeltaEuclidean::new(N).distance(&w1, &w2);
        assert!(d > 0.0 && d <= 1.0, "d = {d}");
    }

    #[test]
    fn clause_mask_changes_view() {
        let a = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(2, PredOp::Eq, 0.1)
            .build();
        let b = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(3, PredOp::Eq, 0.1)
            .build();
        let w1 = Workload::from_queries([(a, 1.0)]);
        let w2 = Workload::from_queries([(b, 1.0)]);
        // Identical through the SELECT-only lens, different through WHERE.
        assert_eq!(
            DeltaEuclidean::with_mask(N, ClauseMask::S).distance(&w1, &w2),
            0.0
        );
        assert!(DeltaEuclidean::with_mask(N, ClauseMask::W).distance(&w1, &w2) > 0.0);
    }

    #[test]
    fn separate_sees_clause_moves_union_does_not() {
        let a = QueryBuilder::new(TableId(0)).select(&[1, 2]).build();
        let b = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(2, PredOp::Eq, 0.1)
            .build();
        let w1 = Workload::from_queries([(a, 1.0)]);
        let w2 = Workload::from_queries([(b, 1.0)]);
        assert_eq!(DeltaEuclidean::new(N).distance(&w1, &w2), 0.0);
        assert!(DeltaSeparate::new(N).distance(&w1, &w2) > 0.0);
    }

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(DeltaEuclidean::new(N).name(), "Euc-union (SWGO)");
        assert_eq!(
            DeltaEuclidean::with_mask(N, ClauseMask::W).name(),
            "Euc-union (W)"
        );
        assert_eq!(DeltaSeparate::new(N).name(), "Euc-separate");
    }

    #[test]
    fn empty_vs_nonempty() {
        let w1 = Workload::new();
        let w2 = Workload::from_queries([(q(&[1]), 1.0)]);
        let d = DeltaEuclidean::new(N);
        // Difference support is a single entry; quadratic form has no pairs.
        assert_eq!(d.distance(&w1, &w2), 0.0);
        assert_eq!(d.distance(&w1, &w1), 0.0);
    }
}
