//! The distance-metric abstraction and clause masks.

use cliffguard_workload::Workload;

/// Which clauses contribute columns to a query's representation.
///
/// The paper's default metric `Euc-union (SWGO)` unions the columns of all
/// four clauses; Figure 11 ablates single-clause variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClauseMask {
    /// Include SELECT-clause columns.
    pub select: bool,
    /// Include WHERE-clause columns.
    pub filter: bool,
    /// Include GROUP BY columns.
    pub group_by: bool,
    /// Include ORDER BY columns.
    pub order_by: bool,
}

impl ClauseMask {
    /// All four clauses (`Euc-union (SWGO)`, the paper's default).
    pub const SWGO: ClauseMask = ClauseMask {
        select: true,
        filter: true,
        group_by: true,
        order_by: true,
    };
    /// SELECT only (`Euc-union (S)`).
    pub const S: ClauseMask = ClauseMask {
        select: true,
        filter: false,
        group_by: false,
        order_by: false,
    };
    /// WHERE only (`Euc-union (W)`).
    pub const W: ClauseMask = ClauseMask {
        select: false,
        filter: true,
        group_by: false,
        order_by: false,
    };
    /// GROUP BY only (`Euc-union (G)`).
    pub const G: ClauseMask = ClauseMask {
        select: false,
        filter: false,
        group_by: true,
        order_by: false,
    };
    /// ORDER BY only (`Euc-union (O)`).
    pub const O: ClauseMask = ClauseMask {
        select: false,
        filter: false,
        group_by: false,
        order_by: true,
    };

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match (self.select, self.filter, self.group_by, self.order_by) {
            (true, true, true, true) => "SWGO",
            (true, false, false, false) => "S",
            (false, true, false, false) => "W",
            (false, false, true, false) => "G",
            (false, false, false, true) => "O",
            _ => "custom",
        }
    }
}

/// A distance over pairs of workloads (the paper's `δ`).
///
/// Implementations must be symmetric and return non-negative finite values;
/// `δ(W, W) = 0`.
pub trait WorkloadDistance {
    /// Distance between two workloads.
    fn distance(&self, a: &Workload, b: &Workload) -> f64;

    /// Human-readable metric name (figure legends, reports).
    fn name(&self) -> String;
}

impl<T: WorkloadDistance + ?Sized> WorkloadDistance for &T {
    fn distance(&self, a: &Workload, b: &Workload) -> f64 {
        (**self).distance(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_labels() {
        assert_eq!(ClauseMask::SWGO.label(), "SWGO");
        assert_eq!(ClauseMask::S.label(), "S");
        assert_eq!(ClauseMask::W.label(), "W");
        assert_eq!(ClauseMask::G.label(), "G");
        assert_eq!(ClauseMask::O.label(), "O");
        let custom = ClauseMask {
            select: true,
            filter: true,
            group_by: false,
            order_by: false,
        };
        assert_eq!(custom.label(), "custom");
    }
}
