//! The latency-aware distance `δ_latency` of Appendix C.
//!
//! `δ_latency(W1, W2) = (1−ω)·δ_euclidean(W1, W2) + ω·R(W1, W2)` with
//! `R(W1, W2) = |f(W1,∅) − f(W2,∅)| / |f(W1,∅) + f(W2,∅)|` (Eq. 12), where
//! `f(W, ∅)` is the total latency of the workload against the *empty*
//! design (baseline table scans), so the metric stays design-independent.
//! `ω` trades structural similarity against latency similarity; the paper
//! finds `ω = 0.2` gives a monotonic relationship (Figure 16b) while
//! `ω = 0.1` does not (Figure 16a).

use crate::euclidean::DeltaEuclidean;
use crate::metric::WorkloadDistance;
use cliffguard_workload::{Query, Workload};

/// Latency-aware workload distance.
///
/// `B` supplies the baseline (no-design) latency of a single query; the
/// workload-level `f(W, ∅)` is the weight-weighted sum of query baselines.
pub struct DeltaLatency<B> {
    base: DeltaEuclidean,
    omega: f64,
    baseline: B,
}

impl<B: Fn(&Query) -> f64> DeltaLatency<B> {
    /// Creates the metric. `omega ∈ [0, 1]`; `baseline` returns a query's
    /// latency under the empty design.
    pub fn new(n_columns: usize, omega: f64, baseline: B) -> Self {
        assert!((0.0..=1.0).contains(&omega), "omega must be in [0,1]");
        Self {
            base: DeltaEuclidean::new(n_columns),
            omega,
            baseline,
        }
    }

    /// Total baseline latency `f(W, ∅)` of a workload.
    fn workload_baseline(&self, w: &Workload) -> f64 {
        w.iter().map(|(q, wt)| (self.baseline)(q) * wt).sum()
    }

    /// The latency-difference term `R(W1, W2)` of Eq. (12).
    pub fn latency_term(&self, a: &Workload, b: &Workload) -> f64 {
        let fa = self.workload_baseline(a);
        let fb = self.workload_baseline(b);
        let denom = (fa + fb).abs();
        if denom == 0.0 {
            // Both cost zero: identical latencies.
            0.0
        } else {
            (fa - fb).abs() / denom
        }
    }
}

impl<B: Fn(&Query) -> f64> WorkloadDistance for DeltaLatency<B> {
    fn distance(&self, a: &Workload, b: &Workload) -> f64 {
        (1.0 - self.omega) * self.base.distance(a, b) + self.omega * self.latency_term(a, b)
    }

    fn name(&self) -> String {
        format!("Euc-latency (w={})", self.omega)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_workload::{Query, QueryBuilder, TableId};

    const N: usize = 16;

    fn q(sel: &[u32]) -> Query {
        QueryBuilder::new(TableId(0)).select(sel).build()
    }

    /// Baseline latency proportional to the number of selected columns.
    fn width_cost(q: &Query) -> f64 {
        q.select.len() as f64 * 10.0
    }

    #[test]
    fn degenerates_to_euclidean_at_omega_zero() {
        let w1 = Workload::from_queries([(q(&[1, 2]), 1.0)]);
        let w2 = Workload::from_queries([(q(&[2, 3]), 1.0)]);
        let dl = DeltaLatency::new(N, 0.0, width_cost);
        let de = DeltaEuclidean::new(N);
        assert!((dl.distance(&w1, &w2) - de.distance(&w1, &w2)).abs() < 1e-12);
    }

    #[test]
    fn latency_term_bounds() {
        let cheap = Workload::from_queries([(q(&[1]), 1.0)]);
        let pricey = Workload::from_queries([(q(&[1, 2, 3, 4]), 1.0)]);
        let dl = DeltaLatency::new(N, 0.2, width_cost);
        let r = dl.latency_term(&cheap, &pricey);
        assert!(r > 0.0 && r < 1.0);
        // Identical latencies → 0.
        assert_eq!(dl.latency_term(&cheap, &cheap), 0.0);
        // Zero-cost corner → defined as 0.
        let free = Workload::new();
        assert_eq!(dl.latency_term(&free, &free), 0.0);
        // One side zero-cost → 1 (the paper's extreme case).
        assert_eq!(dl.latency_term(&free, &pricey), 1.0);
    }

    #[test]
    fn separates_structurally_identical_latency_divergent() {
        // Same column sets (same δ_euclidean view) but very different
        // baseline latencies — exactly what δ_latency is for. We emulate a
        // latency difference via weights.
        let w1 = Workload::from_queries([(q(&[1, 2]), 1.0)]);
        let w2 = Workload::from_queries([(q(&[1, 2]), 10.0)]);
        let de = DeltaEuclidean::new(N);
        assert_eq!(de.distance(&w1, &w2), 0.0);
        let dl = DeltaLatency::new(N, 0.2, width_cost);
        assert!(dl.distance(&w1, &w2) > 0.0);
    }

    #[test]
    fn symmetric() {
        let w1 = Workload::from_queries([(q(&[1]), 2.0)]);
        let w2 = Workload::from_queries([(q(&[2, 3]), 1.0)]);
        let dl = DeltaLatency::new(N, 0.3, width_cost);
        assert!((dl.distance(&w1, &w2) - dl.distance(&w2, &w1)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn omega_validated() {
        let _ = DeltaLatency::new(N, 1.5, width_cost);
    }

    #[test]
    fn name_mentions_omega() {
        assert_eq!(
            DeltaLatency::new(N, 0.2, width_cost).name(),
            "Euc-latency (w=0.2)"
        );
    }
}
