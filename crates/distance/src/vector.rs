//! Sparse workload vectors.
//!
//! Conceptually a workload is a `(2^n - 1)`-dimensional vector of
//! normalized frequencies, one coordinate per non-empty column subset
//! (Section 5). "Since V_W is an extremely sparse matrix, most of the
//! computation in (9) can be avoided" — we only ever materialize the
//! *support*: the representations that actually occur, keyed by
//! [`ReprKey`].

use crate::metric::ClauseMask;
use cliffguard_workload::{ColumnSet, Query, Workload};
use std::collections::HashMap;

/// A query's representation coordinate: either the masked union of its
/// clause column sets (`δ_euclidean`) or the per-clause 4-tuple
/// (`δ_separate`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReprKey {
    /// Union of (masked) clause columns.
    Union(ColumnSet),
    /// `(select, where, group by, order by)` kept separate.
    Separate(Box<[ColumnSet; 4]>),
}

impl ReprKey {
    /// Builds the union representation of a query under a clause mask.
    pub fn union_of(q: &Query, mask: ClauseMask) -> Self {
        let mut s = ColumnSet::new();
        if mask.select {
            s.union_with(&q.select);
        }
        if mask.filter {
            s.union_with(&q.filter);
        }
        if mask.group_by {
            s.union_with(&q.group_by);
        }
        if mask.order_by {
            s.union_with(&q.order_by_set());
        }
        ReprKey::Union(s)
    }

    /// Builds the 4-tuple representation of a query.
    pub fn separate_of(q: &Query) -> Self {
        ReprKey::Separate(Box::new([
            q.select.clone(),
            q.filter.clone(),
            q.group_by.clone(),
            q.order_by_set(),
        ]))
    }

    /// Hamming distance between two representations (the `S_{i,j}`
    /// numerator of Eq. (9)): number of column-coordinates present in
    /// exactly one of the two. For `Separate`, coordinates are per-clause,
    /// so the distance is the sum of the four clause Hamming distances.
    ///
    /// Mixing the two variants is a caller bug.
    pub fn hamming(&self, other: &Self) -> usize {
        match (self, other) {
            (ReprKey::Union(a), ReprKey::Union(b)) => a.hamming(b),
            (ReprKey::Separate(a), ReprKey::Separate(b)) => {
                a.iter().zip(b.iter()).map(|(x, y)| x.hamming(y)).sum()
            }
            _ => panic!("cannot mix union and separate representation keys"),
        }
    }

    /// Number of bit-coordinates of this representation per database column
    /// (1 for union, 4 for separate); used to normalize `S` into `[0, 1]`.
    pub fn coords_per_column(&self) -> usize {
        match self {
            ReprKey::Union(_) => 1,
            ReprKey::Separate(_) => 4,
        }
    }
}

/// Builds the sparse support of `|V_{W1} - V_{W2}|`: each representation
/// key occurring in either workload, with the absolute difference of its
/// normalized frequencies (zero-difference entries are dropped).
pub fn diff_support<F>(w1: &Workload, w2: &Workload, mut repr: F) -> Vec<(ReprKey, f64)>
where
    F: FnMut(&Query) -> ReprKey,
{
    let mut diff: HashMap<ReprKey, f64> = HashMap::new();
    for (q, f) in w1.normalized() {
        *diff.entry(repr(q)).or_insert(0.0) += f;
    }
    for (q, f) in w2.normalized() {
        *diff.entry(repr(q)).or_insert(0.0) -= f;
    }
    let mut out: Vec<(ReprKey, f64)> = diff
        .into_iter()
        .filter_map(|(k, d)| {
            let a = d.abs();
            (a > 1e-15).then_some((k, a))
        })
        .collect();
    // Deterministic order: float summation in the quadratic form must not
    // depend on hash-map iteration order.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    fn q(sel: &[u32], filt: &[(u32, f64)]) -> Query {
        let mut b = QueryBuilder::new(TableId(0)).select(sel);
        for &(c, s) in filt {
            b = b.filter(c, PredOp::Eq, s);
        }
        b.build()
    }

    #[test]
    fn union_key_respects_mask() {
        let query = q(&[1, 2], &[(3, 0.1)]);
        let full = ReprKey::union_of(&query, ClauseMask::SWGO);
        let sel_only = ReprKey::union_of(&query, ClauseMask::S);
        assert_eq!(full, ReprKey::Union(ColumnSet::from_ids(&[1, 2, 3])));
        assert_eq!(sel_only, ReprKey::Union(ColumnSet::from_ids(&[1, 2])));
    }

    #[test]
    fn separate_distinguishes_clause_placement() {
        let a = q(&[1, 2], &[]);
        let b = q(&[1], &[(2, 0.1)]);
        assert_eq!(
            ReprKey::union_of(&a, ClauseMask::SWGO),
            ReprKey::union_of(&b, ClauseMask::SWGO)
        );
        assert_ne!(ReprKey::separate_of(&a), ReprKey::separate_of(&b));
        // 2 appears in SELECT of a, WHERE of b: hamming 1 + 1 = 2
        assert_eq!(
            ReprKey::separate_of(&a).hamming(&ReprKey::separate_of(&b)),
            2
        );
    }

    #[test]
    fn diff_support_drops_identical_mass() {
        let w1 = Workload::from_queries([(q(&[1], &[]), 1.0), (q(&[2], &[]), 1.0)]);
        let w2 = Workload::from_queries([(q(&[1], &[]), 1.0), (q(&[3], &[]), 1.0)]);
        let d = diff_support(&w1, &w2, |q| ReprKey::union_of(q, ClauseMask::SWGO));
        // {1} cancels; {2} and {3} remain at |±0.5|
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|(_, v)| (*v - 0.5).abs() < 1e-12));
    }

    #[test]
    fn diff_support_empty_for_identical() {
        let w = Workload::from_queries([(q(&[1, 2], &[(3, 0.2)]), 2.0)]);
        let d = diff_support(&w, &w, |q| ReprKey::union_of(q, ClauseMask::SWGO));
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixed_keys_panic() {
        let query = q(&[1], &[]);
        let a = ReprKey::union_of(&query, ClauseMask::SWGO);
        let b = ReprKey::separate_of(&query);
        let _ = a.hamming(&b);
    }
}
