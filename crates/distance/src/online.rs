//! Incremental per-window workload vectors for streaming δ.
//!
//! The batch metric ([`DeltaEuclidean`](crate::DeltaEuclidean)) rescans two
//! whole workloads per evaluation. A streaming ingester instead folds each
//! arrival into a [`WindowAccumulator`] in O(1), seals the window into a
//! [`WindowVector`] (a sorted sparse support of **raw counts**), and
//! evaluates the inter-window δ with [`window_delta`] — a sorted-merge of
//! the two supports feeding the same Eq. (9) quadratic form.
//!
//! # Determinism
//!
//! Raw counts are sums of exactly-representable integers, so the
//! accumulated support is **bit-identical** for any arrival grouping —
//! live streaming, chunked replay at any chunk size, or a rebuild from a
//! persisted [`Workload`] whose entries were pre-aggregated by signature.
//! Normalization divides each count by the window total once, in the
//! canonical sorted-key order, so `window_delta` is bit-reproducible
//! across runs, chunkings, thread counts, and kill/resume.
//!
//! `window_delta` agrees with `DeltaEuclidean::distance` on the same pair
//! of windows up to f64 rounding (it normalizes per representation rather
//! than per workload entry; the recurrence is tested against the batch
//! metric at 1e-12).

use crate::euclidean::quadratic_form;
use crate::metric::ClauseMask;
use crate::vector::ReprKey;
use cliffguard_workload::{Query, Workload};
use std::collections::HashMap;

/// Accumulates one window's sparse representation support, arrival by
/// arrival.
#[derive(Debug, Clone)]
pub struct WindowAccumulator {
    mask: ClauseMask,
    counts: HashMap<ReprKey, f64>,
    arrivals: f64,
}

impl WindowAccumulator {
    /// An empty accumulator under the given clause mask.
    pub fn new(mask: ClauseMask) -> Self {
        Self {
            mask,
            counts: HashMap::new(),
            arrivals: 0.0,
        }
    }

    /// An empty accumulator under the paper's default `SWGO` mask.
    pub fn swgo() -> Self {
        Self::new(ClauseMask::SWGO)
    }

    /// Folds one arrival (weight 1) into the window.
    pub fn observe(&mut self, query: &Query) {
        self.observe_weighted(query, 1.0);
    }

    /// Folds `weight` arrivals of `query` at once — the rebuild path for a
    /// window persisted as a [`Workload`] (whose entries aggregate repeats
    /// by signature). Integer weights keep the support exact.
    pub fn observe_weighted(&mut self, query: &Query, weight: f64) {
        *self
            .counts
            .entry(ReprKey::union_of(query, self.mask))
            .or_insert(0.0) += weight;
        self.arrivals += weight;
    }

    /// Arrivals folded in so far (sum of weights).
    pub fn arrivals(&self) -> f64 {
        self.arrivals
    }

    /// Distinct representation keys so far.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Seals the window into its canonical sorted vector and resets the
    /// accumulator for the next window (keeping the allocation).
    pub fn take_vector(&mut self) -> WindowVector {
        let mut support: Vec<(ReprKey, f64)> = self.counts.drain().collect();
        support.sort_by(|a, b| a.0.cmp(&b.0));
        let total = self.arrivals;
        self.arrivals = 0.0;
        WindowVector { support, total }
    }

    /// Rebuilds the accumulator state of a whole window from its persisted
    /// [`Workload`] form.
    pub fn from_workload(workload: &Workload, mask: ClauseMask) -> Self {
        let mut acc = Self::new(mask);
        for (q, w) in workload.iter() {
            acc.observe_weighted(q, w);
        }
        acc
    }
}

/// One sealed window: sorted `(representation, raw count)` support plus the
/// window total.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowVector {
    support: Vec<(ReprKey, f64)>,
    total: f64,
}

impl WindowVector {
    /// The sorted raw-count support.
    pub fn support(&self) -> &[(ReprKey, f64)] {
        &self.support
    }

    /// Total arrivals in the window.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Whether the window saw no arrivals.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty() || self.total <= 0.0
    }

    /// Builds the sealed vector of `workload` directly.
    pub fn from_workload(workload: &Workload, mask: ClauseMask) -> Self {
        WindowAccumulator::from_workload(workload, mask).take_vector()
    }

    /// This window's normalized coordinate for `key` (0 when absent).
    fn normalized(&self, idx: usize) -> f64 {
        self.support[idx].1 / self.total
    }
}

/// Eq. (9) δ between two sealed windows over `n_columns` database columns.
///
/// An empty window contributes no coordinates (matching how the batch
/// metric treats an empty workload). The result is bit-reproducible: both
/// supports are in canonical key order and every term is an exact function
/// of the raw counts and totals.
pub fn window_delta(a: &WindowVector, b: &WindowVector, n_columns: usize) -> f64 {
    let mut diff: Vec<(ReprKey, f64)> = Vec::with_capacity(a.support.len() + b.support.len());
    let (mut i, mut j) = (0, 0);
    let a_empty = a.is_empty();
    let b_empty = b.is_empty();
    while i < a.support.len() || j < b.support.len() {
        let take_a =
            j >= b.support.len() || (i < a.support.len() && a.support[i].0 <= b.support[j].0);
        let take_b =
            i >= a.support.len() || (j < b.support.len() && b.support[j].0 <= a.support[i].0);
        let (key, d) = match (take_a, take_b) {
            (true, true) => {
                let d = if a_empty { 0.0 } else { a.normalized(i) }
                    - if b_empty { 0.0 } else { b.normalized(j) };
                let k = a.support[i].0.clone();
                i += 1;
                j += 1;
                (k, d)
            }
            (true, false) => {
                let d = if a_empty { 0.0 } else { a.normalized(i) };
                let k = a.support[i].0.clone();
                i += 1;
                (k, d)
            }
            (false, true) => {
                let d = -if b_empty { 0.0 } else { b.normalized(j) };
                let k = b.support[j].0.clone();
                j += 1;
                (k, d)
            }
            (false, false) => unreachable!("merge must advance"),
        };
        let abs = d.abs();
        if abs > 1e-15 {
            diff.push((key, abs));
        }
    }
    quadratic_form(&diff, n_columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WorkloadDistance;
    use crate::DeltaEuclidean;
    use cliffguard_workload::{QueryBuilder, TableId};

    const N: usize = 16;

    fn q(sel: &[u32]) -> Query {
        QueryBuilder::new(TableId(0)).select(sel).build()
    }

    fn vec_of(entries: &[(&[u32], f64)]) -> WindowVector {
        let mut acc = WindowAccumulator::swgo();
        for &(sel, w) in entries {
            acc.observe_weighted(&q(sel), w);
        }
        acc.take_vector()
    }

    #[test]
    fn identical_windows_have_exactly_zero_delta() {
        let a = vec_of(&[(&[1, 2], 3.0), (&[3], 1.0)]);
        let b = vec_of(&[(&[1, 2], 3.0), (&[3], 1.0)]);
        assert_eq!(window_delta(&a, &b, N), 0.0);
    }

    #[test]
    fn accumulation_order_is_invisible() {
        let mut fwd = WindowAccumulator::swgo();
        let mut rev = WindowAccumulator::swgo();
        let queries: Vec<Query> = (0..40).map(|i| q(&[i % 7, (i * 3) % 11])).collect();
        for query in &queries {
            fwd.observe(query);
        }
        for query in queries.iter().rev() {
            rev.observe(query);
        }
        let (a, b) = (fwd.take_vector(), rev.take_vector());
        assert_eq!(a, b, "raw-count supports must be bit-identical");
        let other = vec_of(&[(&[9, 10], 5.0)]);
        assert_eq!(
            window_delta(&a, &other, N).to_bits(),
            window_delta(&b, &other, N).to_bits()
        );
    }

    #[test]
    fn rebuild_from_workload_matches_live_accumulation() {
        let mut live = WindowAccumulator::swgo();
        let mut w = Workload::new();
        for i in 0..30 {
            let query = q(&[i % 5, (i * 2) % 9]);
            live.observe(&query);
            w.add(query.into(), 1.0);
        }
        let rebuilt = WindowVector::from_workload(&w, ClauseMask::SWGO);
        assert_eq!(live.take_vector(), rebuilt);
    }

    #[test]
    fn agrees_with_the_batch_metric() {
        let mut wa = Workload::new();
        let mut wb = Workload::new();
        let mut aa = WindowAccumulator::swgo();
        let mut ab = WindowAccumulator::swgo();
        for i in 0..25u32 {
            let qa = q(&[i % 4, 8 + i % 3]);
            let qb = q(&[i % 6, 4 + i % 5]);
            aa.observe(&qa);
            ab.observe(&qb);
            wa.add(qa.into(), 1.0);
            wb.add(qb.into(), 1.0);
        }
        let online = window_delta(&aa.take_vector(), &ab.take_vector(), N);
        let batch = DeltaEuclidean::new(N).distance(&wa, &wb);
        assert!(
            (online - batch).abs() < 1e-12,
            "online {online} vs batch {batch}"
        );
    }

    #[test]
    fn empty_windows_match_batch_semantics() {
        let empty = WindowAccumulator::swgo().take_vector();
        assert!(empty.is_empty());
        let single = vec_of(&[(&[1], 2.0)]);
        let multi = vec_of(&[(&[1], 1.0), (&[2, 3], 1.0)]);
        // Mirror DeltaEuclidean: single-coordinate diff has no pairs.
        assert_eq!(window_delta(&empty, &single, N), 0.0);
        let batch = DeltaEuclidean::new(N).distance(&Workload::new(), &{
            let mut w = Workload::new();
            w.add(q(&[1]).into(), 1.0);
            w.add(q(&[2, 3]).into(), 1.0);
            w
        });
        let online = window_delta(&empty, &multi, N);
        assert!((online - batch).abs() < 1e-12);
        assert_eq!(window_delta(&empty, &empty, N), 0.0);
    }

    #[test]
    fn take_vector_resets_for_the_next_window() {
        let mut acc = WindowAccumulator::swgo();
        acc.observe(&q(&[1]));
        let first = acc.take_vector();
        assert_eq!(first.total(), 1.0);
        assert_eq!(acc.arrivals(), 0.0);
        assert_eq!(acc.distinct(), 0);
        acc.observe(&q(&[2]));
        let second = acc.take_vector();
        assert_eq!(second.total(), 1.0);
        assert_ne!(first, second);
    }
}
