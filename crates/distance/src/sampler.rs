//! Sampling the workload space (Appendix B, Algorithm 4).
//!
//! CliffGuard's neighborhood exploration needs `n` perturbed workloads
//! `W_1 … W_n` with `δ(W_0, W_i) ≤ Γ`. Algorithm 4 reduces this to: given a
//! target distance `α`, find a disjoint query set `Q` with
//! `β = δ(W_0, Q) > α`, set `λ = √(α/β)` and `c = n·λ / (k·(1−λ))`, and
//! return `W_1 = W_0 ⊎ ⌊c⌋ · Q`.
//!
//! Why it works: mixing `c` copies of each of the `k` fresh queries into
//! `W_0` shifts exactly a `λ' = ck/(n+ck) = λ` fraction of the normalized
//! mass onto `Q`, so the difference vector is `λ` times the difference
//! vector between `W_0` and `Q` and the quadratic form scales by `λ²`:
//! `δ(W_0, W_1) = λ²·β = α`. Flooring `c` can only undershoot, so the
//! `δ ≤ Γ` guarantee is preserved.

use crate::metric::WorkloadDistance;
use cliffguard_workload::{Query, Workload};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Failure modes of the sampler.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleError {
    /// The candidate pool (minus `W_0`'s own queries) cannot reach the
    /// requested distance: no subset tried had `δ(W_0, Q) > α`.
    PoolExhausted {
        /// The α that could not be met.
        requested: f64,
        /// The largest β observed while trying.
        best_observed: f64,
    },
    /// `W_0` has no queries to perturb around.
    EmptyWorkload,
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::PoolExhausted { requested, best_observed } => write!(
                f,
                "candidate pool cannot reach distance {requested} (best β observed: {best_observed})"
            ),
            SampleError::EmptyWorkload => write!(f, "cannot sample around an empty workload"),
        }
    }
}

impl std::error::Error for SampleError {}

/// Draws perturbed workloads in the Γ-neighborhood of a given workload.
pub struct NeighborhoodSampler<D> {
    metric: D,
    pool: Vec<Arc<Query>>,
    rng: ChaCha8Rng,
    /// Maximum queries per disjoint set `Q` (the paper reports success with
    /// `k ≤ 5`; we allow a little slack).
    max_k: usize,
    /// Preferred `k` tried first: richer perturbations (more fresh queries
    /// per neighbor) make the neighborhood representative of real drift,
    /// where whole topics shift at once.
    preferred_k: usize,
    /// Random subsets tried per `k` before growing `k`.
    tries_per_k: usize,
}

impl<D: WorkloadDistance> NeighborhoodSampler<D> {
    /// Creates a sampler over a candidate query pool (e.g. the queries of
    /// all *past* windows — never future ones).
    pub fn new(metric: D, pool: Vec<Arc<Query>>, seed: u64) -> Self {
        Self {
            metric,
            pool,
            rng: ChaCha8Rng::seed_from_u64(seed),
            max_k: 8,
            preferred_k: 5,
            tries_per_k: 24,
        }
    }

    /// The underlying metric.
    pub fn metric(&self) -> &D {
        &self.metric
    }

    /// The number of 32-bit RNG words this sampler has consumed.
    ///
    /// Sampling is the only stochastic phase of a CliffGuard session, so
    /// this single number pins down the whole session's random state: a
    /// checkpoint records it and a resume re-samples with the same seed,
    /// then verifies it landed on the same position.
    pub fn rng_words_consumed(&self) -> u64 {
        self.rng.words_consumed()
    }

    /// Algorithm 4: returns `W_1` with `δ(W_0, W_1) ≤ α` and as close to
    /// `α` as the integer copy count allows.
    pub fn sample_at(&mut self, w0: &Workload, alpha: f64) -> Result<Workload, SampleError> {
        if w0.is_empty() {
            return Err(SampleError::EmptyWorkload);
        }
        if alpha <= 0.0 {
            return Ok(w0.clone());
        }
        // Candidates not already contained in W0.
        let fresh: Vec<Arc<Query>> = self
            .pool
            .iter()
            .filter(|q| w0.weight_of(q) == 0.0)
            .cloned()
            .collect();
        if fresh.is_empty() {
            return Err(SampleError::PoolExhausted {
                requested: alpha,
                best_observed: 0.0,
            });
        }

        let mut best_beta = 0.0f64;
        let max_k = self.max_k.min(fresh.len());
        let preferred = self.preferred_k.min(max_k).max(1);
        let ks = std::iter::once(preferred).chain((1..=max_k).filter(|&k| k != preferred));
        // Fallback with 1 ≤ c < MIN_COPIES (coarse quantization), used only
        // if no subset allows an accurate copy count.
        const MIN_COPIES: f64 = 4.0;
        let mut coarse: Option<(Vec<Arc<Query>>, f64)> = None;
        for k in ks {
            for _ in 0..self.tries_per_k {
                let q_set = self.draw_subset(&fresh, k);
                let q_workload = Workload::from_queries(q_set.iter().map(|q| ((**q).clone(), 1.0)));
                // Guard against signature collisions shrinking the set.
                if q_workload.len() != k {
                    continue;
                }
                let beta = self.metric.distance(w0, &q_workload);
                best_beta = best_beta.max(beta);
                if beta > alpha {
                    let lambda = (alpha / beta).sqrt();
                    let n = w0.total_weight();
                    let c = (n * lambda / (k as f64 * (1.0 - lambda))).floor();
                    if c < 1.0 {
                        // α too small for this k (the integer copy count
                        // floors to zero); a smaller k gives a larger c,
                        // so keep trying.
                        continue;
                    }
                    if c < MIN_COPIES {
                        // Flooring would undershoot α badly; remember as a
                        // fallback but prefer a finer-grained k.
                        coarse.get_or_insert((q_set, c));
                        continue;
                    }
                    let mut w1 = w0.clone();
                    for q in &q_set {
                        w1.add(Arc::clone(q), c);
                    }
                    return Ok(w1);
                }
            }
        }
        if let Some((q_set, c)) = coarse {
            let mut w1 = w0.clone();
            for q in &q_set {
                w1.add(Arc::clone(q), c);
            }
            return Ok(w1);
        }
        if best_beta > alpha {
            // Every subset that cleared α floored to zero copies: the
            // perturbation is below the integer-copy resolution; W0 itself
            // is the only point that close.
            return Ok(w0.clone());
        }
        Err(SampleError::PoolExhausted {
            requested: alpha,
            best_observed: best_beta,
        })
    }

    /// Samples `count` perturbed workloads with distances uniform in
    /// `(0, gamma]` (Algorithm 2, line 2). Unreachable α values are skipped,
    /// so fewer than `count` samples may be returned when the pool is thin;
    /// an empty result only happens if *every* draw failed.
    pub fn sample_neighborhood(
        &mut self,
        w0: &Workload,
        gamma: f64,
        count: usize,
    ) -> Vec<Workload> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let alpha = self.rng.random::<f64>() * gamma;
            if let Ok(w) = self.sample_at(w0, alpha) {
                out.push(w);
            }
        }
        out
    }

    fn draw_subset(&mut self, fresh: &[Arc<Query>], k: usize) -> Vec<Arc<Query>> {
        let mut idx: Vec<usize> = (0..fresh.len()).collect();
        // partial Fisher–Yates
        for i in 0..k {
            let j = self.rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| Arc::clone(&fresh[i])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::DeltaEuclidean;
    use cliffguard_workload::{Query, QueryBuilder, TableId};

    const N: usize = 32;

    fn q(sel: &[u32]) -> Query {
        QueryBuilder::new(TableId(0)).select(sel).build()
    }

    fn base_workload() -> Workload {
        Workload::from_queries([(q(&[1, 2]), 40.0), (q(&[2, 3]), 30.0), (q(&[4]), 30.0)])
    }

    fn pool() -> Vec<Arc<Query>> {
        (5..30u32)
            .map(|i| Arc::new(q(&[i, i + 1, (i * 7) % 30])))
            .collect()
    }

    #[test]
    fn sampled_distance_close_to_target_and_bounded() {
        let metric = DeltaEuclidean::new(N);
        let mut s = NeighborhoodSampler::new(metric, pool(), 7);
        let w0 = base_workload();
        for alpha in [0.0005, 0.002, 0.01] {
            let w1 = s.sample_at(&w0, alpha).unwrap();
            let d = metric.distance(&w0, &w1);
            assert!(d <= alpha * 1.0001, "overshoot: {d} > {alpha}");
            assert!(d >= alpha * 0.5, "undershoot: {d} < half of {alpha}");
        }
    }

    #[test]
    fn zero_alpha_returns_w0() {
        let metric = DeltaEuclidean::new(N);
        let mut s = NeighborhoodSampler::new(metric, pool(), 7);
        let w0 = base_workload();
        let w1 = s.sample_at(&w0, 0.0).unwrap();
        assert_eq!(metric.distance(&w0, &w1), 0.0);
        assert_eq!(w1.len(), w0.len());
    }

    #[test]
    fn neighborhood_within_gamma() {
        let metric = DeltaEuclidean::new(N);
        let mut s = NeighborhoodSampler::new(metric, pool(), 13);
        let w0 = base_workload();
        let gamma = 0.005;
        let samples = s.sample_neighborhood(&w0, gamma, 20);
        assert!(!samples.is_empty());
        for w in &samples {
            assert!(metric.distance(&w0, w) <= gamma * 1.0001);
        }
    }

    #[test]
    fn sampled_workload_contains_original() {
        // Per Algorithm 4, W1 ⊇ W0 (queries are only added).
        let metric = DeltaEuclidean::new(N);
        let mut s = NeighborhoodSampler::new(metric, pool(), 3);
        let w0 = base_workload();
        let w1 = s.sample_at(&w0, 0.003).unwrap();
        for (query, wt) in w0.iter() {
            assert!(w1.weight_of(query) >= wt);
        }
        assert!(w1.total_weight() > w0.total_weight());
    }

    #[test]
    fn empty_workload_rejected() {
        let metric = DeltaEuclidean::new(N);
        let mut s = NeighborhoodSampler::new(metric, pool(), 3);
        assert!(matches!(
            s.sample_at(&Workload::new(), 0.1),
            Err(SampleError::EmptyWorkload)
        ));
    }

    #[test]
    fn exhausted_pool_reported() {
        let metric = DeltaEuclidean::new(N);
        // Pool = exactly W0's queries → nothing fresh to mix in.
        let w0 = base_workload();
        let own: Vec<Arc<Query>> = w0.queries().cloned().collect();
        let mut s = NeighborhoodSampler::new(metric, own, 3);
        match s.sample_at(&w0, 0.01) {
            Err(SampleError::PoolExhausted { .. }) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_alpha_reported() {
        let metric = DeltaEuclidean::new(N);
        let mut s = NeighborhoodSampler::new(metric, pool(), 3);
        let w0 = base_workload();
        // α = 0.9 is far beyond what this pool can produce (β ≲ 0.1).
        match s.sample_at(&w0, 0.9) {
            Err(SampleError::PoolExhausted { best_observed, .. }) => {
                assert!(best_observed < 0.9);
            }
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let metric = DeltaEuclidean::new(N);
        let w0 = base_workload();
        let mut s1 = NeighborhoodSampler::new(metric, pool(), 99);
        let mut s2 = NeighborhoodSampler::new(metric, pool(), 99);
        let a = s1.sample_neighborhood(&w0, 0.004, 5);
        let b = s2.sample_neighborhood(&w0, 0.004, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(metric.distance(x, y), 0.0);
        }
    }
}
