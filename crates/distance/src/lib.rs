//! Workload distance metrics and Γ-neighborhood sampling for CliffGuard.
//!
//! Section 5 of the paper defines how users express robustness guarantees:
//! a distance `δ` over pairs of SQL workloads, so that "robust for any
//! future workload `W` as long as `δ(W0, W) ≤ Γ`". This crate implements:
//!
//! * [`DeltaEuclidean`] — the paper's Eq. (9): workloads as sparse vectors
//!   of normalized frequencies over column-set query representations, with
//!   the Hamming-similarity matrix `S`; configurable clause mask
//!   (`Euc-union (S)`, `(W)`, `(G)`, `(O)`, `(SWGO)` of Figure 11).
//! * [`DeltaSeparate`] — the `δ_separate` per-clause 4-tuple variant.
//! * [`DeltaLatency`] — the latency-aware `δ_latency` of Appendix C
//!   (Eqs. 11–12) with its `ω` penalty factor.
//! * [`NeighborhoodSampler`] — Appendix B / Algorithm 4: efficiently draws
//!   perturbed workloads at a requested distance from `W0`, the primitive
//!   behind CliffGuard's neighborhood exploration.
//! * [`WindowAccumulator`] / [`window_delta`] — incremental per-window
//!   sparse vectors for streaming ingest: O(1) per arrival, bit-
//!   reproducible inter-window δ for the online drift trigger.
//!
//! The requirements R1–R4 the paper states for a usable metric (soundness,
//! intra-query similarity, symmetry, triangle property) are covered by this
//! crate's unit and property tests; soundness (R1) is additionally verified
//! empirically end-to-end by the Figure 6 experiment in `cliffguard-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod euclidean;
mod latency_aware;
mod metric;
mod online;
mod sampler;
mod vector;

pub use euclidean::{DeltaEuclidean, DeltaSeparate};
pub use latency_aware::DeltaLatency;
pub use metric::{ClauseMask, WorkloadDistance};
pub use online::{window_delta, WindowAccumulator, WindowVector};
pub use sampler::{NeighborhoodSampler, SampleError};
pub use vector::{diff_support, ReprKey};
