//! Property tests for the cost-memoization layer: caching must never
//! change a cost, fingerprints must separate distinct designs, and the
//! counters must keep their accounting identity.

use cliffguard_sim::{
    CachedEngine, ColumnarDesign, ColumnarEngine, CostCache, Engine, PhysicalDesign, Projection,
};
use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
use cliffguard_workload::{
    ColumnId, ColumnSet, PredOp, QueryBuilder, QuerySignature, TableId, Workload,
};
use proptest::prelude::*;

const N_COLS: u32 = 8;

fn catalog() -> Catalog {
    Catalog::new(vec![TableDef {
        name: "fact".into(),
        columns: (0..N_COLS)
            .map(|i| ColumnDef {
                name: format!("c{i}"),
                width_bytes: 8,
                stats: ColumnStats::uniform(50_000),
            })
            .collect(),
        rows: 4_000_000,
    }])
}

fn projection(cols: &[u32]) -> Projection {
    Projection::new(
        TableId(0),
        ColumnSet::from_iter(cols.iter().map(|&c| ColumnId(c % N_COLS))),
        vec![],
    )
}

fn design(col_groups: &[Vec<u32>]) -> ColumnarDesign {
    ColumnarDesign::from_structures(col_groups.iter().map(|g| projection(g)).collect())
}

/// Canonical form of a design's structure set, for deciding whether two
/// generated designs are actually distinct.
fn canonical(d: &ColumnarDesign) -> Vec<String> {
    let mut s: Vec<String> = d.structures().iter().map(|p| format!("{p:?}")).collect();
    s.sort();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memoized costs are the costs: for any workload and design, the
    /// cached engine returns bit-identical latencies and aggregates,
    /// on the cold pass and on the warm pass.
    #[test]
    fn cached_cost_equals_uncached(
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(0u32..N_COLS, 1..4),
                0u32..N_COLS,
                1u64..5000,
            ),
            1..12,
        ),
        groups in proptest::collection::vec(
            proptest::collection::vec(0u32..N_COLS, 1..4),
            0..4,
        ),
    ) {
        let engine = ColumnarEngine::new(catalog());
        let cached = CachedEngine::new(&engine);
        let d = design(&groups);
        let w = Workload::from_queries(specs.iter().map(|(sel, filt, sel_ppm)| {
            let sel_cols: Vec<u32> = sel.iter().map(|c| c % N_COLS).collect();
            (
                QueryBuilder::new(TableId(0))
                    .select(&sel_cols)
                    .filter(*filt, PredOp::Eq, *sel_ppm as f64 * 1e-6)
                    .build(),
                1.0 + (*sel_ppm % 7) as f64,
            )
        }));
        let plain = engine.workload_cost(&w, &d);
        for pass in 0..2 {
            let memo = cached.workload_cost(&w, &d);
            prop_assert_eq!(plain.avg_ms.to_bits(), memo.avg_ms.to_bits(), "pass {}", pass);
            prop_assert_eq!(plain.max_ms.to_bits(), memo.max_ms.to_bits(), "pass {}", pass);
            prop_assert_eq!(plain.total_ms.to_bits(), memo.total_ms.to_bits(), "pass {}", pass);
        }
        // Per-query entry points agree with the workload fold's cache.
        for q in w.queries() {
            prop_assert_eq!(
                cached.query_latency_ms(q, &d).to_bits(),
                engine.query_latency_ms(q, &d).to_bits()
            );
        }
        // The warm pass and per-query probes were all hits.
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.misses as usize, w.len());
        prop_assert_eq!(stats.hits as usize, 2 * w.len());
    }

    /// Designs with different structure sets get different fingerprints;
    /// the same set in any order gets the same one.
    #[test]
    fn distinct_designs_do_not_collide(
        groups_a in proptest::collection::vec(
            proptest::collection::vec(0u32..N_COLS, 1..4), 0..5),
        groups_b in proptest::collection::vec(
            proptest::collection::vec(0u32..N_COLS, 1..4), 0..5),
    ) {
        let a = design(&groups_a);
        let b = design(&groups_b);
        if canonical(&a) == canonical(&b) {
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        } else {
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
        // Order insensitivity, explicitly: reversed construction.
        let mut reversed = groups_a.clone();
        reversed.reverse();
        prop_assert_eq!(a.fingerprint(), design(&reversed).fingerprint());
    }

    /// Counter accounting: every lookup is exactly one hit or one miss.
    #[test]
    fn hits_plus_misses_equals_lookups(
        keys in proptest::collection::vec((0u64..32, 0u64..4), 1..200),
    ) {
        let cache = CostCache::with_capacity(64);
        for &(sig, fp) in &keys {
            let got = cache.get_or_insert_with(
                QuerySignature(sig), fp, || (sig * 31 + fp) as f64);
            prop_assert_eq!(got, (sig * 31 + fp) as f64, "cache must return the computed value");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.lookups(), keys.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, stats.lookups());
        // Misses are at least the number of distinct keys (exactly that,
        // when nothing evicted).
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert!(stats.misses >= distinct.len() as u64);
        if stats.evictions == 0 {
            prop_assert_eq!(stats.misses, distinct.len() as u64);
        }
    }
}
