//! Property-based tests of the engine cost models: the invariants every
//! cost-based optimizer must satisfy regardless of inputs.

use cliffguard_sim::{
    ColumnarDesign, ColumnarEngine, Engine, Index, MatView, PhysicalDesign, Projection, RowDesign,
    RowEngine, RowStructure,
};
use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
use cliffguard_workload::{ColumnId, ColumnSet, PredOp, Query, QueryBuilder, TableId};
use proptest::prelude::*;

const N_COLS: u32 = 10;

fn catalog() -> Catalog {
    Catalog::new(vec![TableDef {
        name: "fact".into(),
        columns: (0..N_COLS)
            .map(|i| ColumnDef {
                name: format!("c{i}"),
                width_bytes: 4 + 4 * (i % 3),
                stats: ColumnStats::uniform(10u64.pow(1 + i % 5)),
            })
            .collect(),
        rows: 5_000_000,
    }])
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(0..N_COLS, 1..4),
        proptest::collection::vec((0..N_COLS, 0.0001f64..0.9, 0..4u8), 0..3),
        proptest::collection::vec(0..N_COLS, 0..2),
        proptest::collection::vec(0..N_COLS, 0..2),
    )
        .prop_map(|(sel, filt, group, order)| {
            let mut b = QueryBuilder::new(TableId(0)).select(&sel);
            for (c, s, op) in filt {
                let op = match op {
                    0 => PredOp::Eq,
                    1 => PredOp::Range,
                    2 => PredOp::In,
                    _ => PredOp::Like,
                };
                b = b.filter(c, op, s);
            }
            if !group.is_empty() {
                b = b.group_by(&group);
            }
            b.order_by(&order).build()
        })
}

fn arb_projection() -> impl Strategy<Value = Projection> {
    proptest::collection::btree_set(0..N_COLS, 1..6).prop_map(|cols| {
        let cols: Vec<u32> = cols.into_iter().collect();
        let sort: Vec<ColumnId> = cols.iter().take(2).map(|&c| ColumnId(c)).collect();
        Projection::new(TableId(0), ColumnSet::from_ids(&cols), sort)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn latency_positive_and_finite(q in arb_query(), p in arb_projection()) {
        let e = ColumnarEngine::new(catalog());
        let designs = [
            ColumnarDesign::empty(),
            ColumnarDesign::from_structures(vec![p]),
        ];
        for d in &designs {
            let l = e.query_latency_ms(&q, d);
            prop_assert!(l.is_finite() && l > 0.0);
        }
    }

    #[test]
    fn adding_a_projection_never_hurts(q in arb_query(), p in arb_projection(), extra in arb_projection()) {
        // The optimizer picks the best access path: more options can only
        // reduce (or keep) the latency.
        let e = ColumnarEngine::new(catalog());
        let base = ColumnarDesign::from_structures(vec![p.clone()]);
        let bigger = ColumnarDesign::from_structures(vec![p, extra]);
        prop_assert!(
            e.query_latency_ms(&q, &bigger) <= e.query_latency_ms(&q, &base) + 1e-9
        );
    }

    #[test]
    fn empty_design_upper_bounds(q in arb_query(), p in arb_projection()) {
        let e = ColumnarEngine::new(catalog());
        let tuned = ColumnarDesign::from_structures(vec![p]);
        prop_assert!(
            e.query_latency_ms(&q, &tuned)
                <= e.query_latency_ms(&q, &ColumnarDesign::empty()) + 1e-9
        );
    }

    #[test]
    fn projection_price_positive_and_below_uncompressed(p in arb_projection()) {
        let cat = catalog();
        let price = p.size_bytes(&cat);
        prop_assert!(price > 0);
        let uncompressed: u64 = p
            .columns
            .iter()
            .map(|c| cat.table(TableId(0)).rows * cat.column(c).width_bytes as u64)
            .sum();
        prop_assert!(price <= uncompressed);
    }

    #[test]
    fn higher_selectivity_never_cheapens_covered_scan(
        sel_lo in 0.0001f64..0.01,
        ratio in 2.0f64..100.0
    ) {
        // A less selective predicate scans more through a matching sorted
        // projection — latency must be monotone in selectivity.
        let e = ColumnarEngine::new(catalog());
        let proj = Projection::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            vec![ColumnId(1)],
        );
        let d = ColumnarDesign::from_structures(vec![proj]);
        let q = |s: f64| {
            QueryBuilder::new(TableId(0)).select(&[2]).filter(1, PredOp::Eq, s).build()
        };
        let lo = e.query_latency_ms(&q(sel_lo), &d);
        let hi = e.query_latency_ms(&q((sel_lo * ratio).min(1.0)), &d);
        prop_assert!(hi >= lo - 1e-9);
    }

    #[test]
    fn row_engine_structures_never_hurt(q in arb_query()) {
        let e = RowEngine::new(catalog());
        let idx = RowStructure::Index(Index::new(TableId(0), vec![ColumnId(1), ColumnId(2)]));
        let mv = RowStructure::MatView(MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2, 3]),
            ColumnSet::from_ids(&[1]),
        ));
        let empty = RowDesign::empty();
        let full = RowDesign::from_structures(vec![idx, mv]);
        prop_assert!(
            e.query_latency_ms(&q, &full) <= e.query_latency_ms(&q, &empty) + 1e-9
        );
    }

    #[test]
    fn workload_cost_totals_consistent(qs in proptest::collection::vec((arb_query(), 1.0f64..10.0), 1..6)) {
        let e = ColumnarEngine::new(catalog());
        let w = cliffguard_workload::Workload::from_queries(qs);
        let c = e.workload_cost(&w, &ColumnarDesign::empty());
        prop_assert!(c.max_ms >= c.avg_ms - 1e-9);
        prop_assert!((c.total_ms / w.total_weight() - c.avg_ms).abs() < 1e-6);
    }
}

#[test]
fn join_query_charges_both_tables() {
    let cat = Catalog::new(vec![
        TableDef {
            name: "a".into(),
            columns: vec![ColumnDef {
                name: "x".into(),
                width_bytes: 8,
                stats: ColumnStats::uniform(1000),
            }],
            rows: 1_000_000,
        },
        TableDef {
            name: "b".into(),
            columns: vec![ColumnDef {
                name: "y".into(),
                width_bytes: 8,
                stats: ColumnStats::uniform(1000),
            }],
            rows: 1_000_000,
        },
    ]);
    let e = ColumnarEngine::new(cat);
    let single = QueryBuilder::new(TableId(0)).select(&[0]).build();
    let joined = QueryBuilder::new(TableId(0))
        .select(&[0, 1])
        .join(TableId(1))
        .build();
    let d = ColumnarDesign::empty();
    assert!(e.query_latency_ms(&joined, &d) > e.query_latency_ms(&single, &d));
}
