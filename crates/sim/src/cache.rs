//! Memoized cost evaluation.
//!
//! The robust-design search re-costs the *same* `(query, design)` pairs
//! constantly: every CliffGuard iteration re-scores the whole sampled
//! Γ-neighborhood against the current design, and the accepted design is
//! scored again next iteration. [`CostCache`] memoizes
//! `Engine::query_latency_ms` keyed by `(QuerySignature, design
//! fingerprint)`; [`CachedEngine`] wraps any engine with one.
//!
//! The cache is sharded: each shard is its own `parking_lot::Mutex` over
//! a `HashMap`, with the shard picked by the key's hash, so concurrent
//! worker threads of the parallel evaluation layer rarely contend.
//! Lookups, hits, misses, and evictions are counted with relaxed
//! atomics and exposed through [`CostCache::stats`].
//!
//! # Soundness
//!
//! A cached latency is correct because both key halves capture
//! everything the cost model reads: `QuerySignature` hashes the query's
//! full structure (tables, column sets, predicates with selectivities
//! quantized at 1e-6, join list, aggregate flag), and
//! [`PhysicalDesign::fingerprint`] hashes the design's structure
//! multiset. The one deliberate approximation: two queries whose
//! selectivities differ by less than the 1e-6 signature quantum share an
//! entry — far below the cost model's fidelity.

use crate::engine::{Engine, PhysicalDesign, WorkloadCost};
use cliffguard_storage::Catalog;
use cliffguard_workload::{Query, QuerySignature, Workload};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shards in a [`CostCache`]. A power of two so shard selection is a
/// mask; 16 is plenty for the thread counts the workspace uses.
const SHARDS: usize = 16;

/// Default per-cache capacity (entries across all shards).
const DEFAULT_CAPACITY: usize = 1 << 20;

/// Counter snapshot of a [`CostCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries discarded by capacity eviction.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (`hits + misses` by construction).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// A sharded, counted memo table for per-query design costs.
pub struct CostCache {
    shards: Vec<Mutex<HashMap<(u64, u64), f64>>>,
    /// Per-shard entry cap; a shard at capacity is cleared wholesale
    /// (epoch eviction — cheap, and the working set is rebuilt within
    /// one neighborhood pass).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CostCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl CostCache {
    /// A cache holding at most ~`capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: (capacity / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, sig: QuerySignature, fingerprint: u64) -> &Mutex<HashMap<(u64, u64), f64>> {
        // The signature is already a hash; fold in the fingerprint and
        // take high bits so designs spread across shards too.
        let mixed = (sig.0 ^ fingerprint).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(mixed >> 60) as usize & (SHARDS - 1)]
    }

    /// The cost for `(sig, fingerprint)`, computing it with `compute` on
    /// a miss. Concurrent misses on the same key may both compute; the
    /// function is pure, so either result is the same value.
    pub fn get_or_insert_with(
        &self,
        sig: QuerySignature,
        fingerprint: u64,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        let shard = self.shard(sig, fingerprint);
        let key = (sig.0, fingerprint);
        if let Some(&v) = shard.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Outside the lock: misses don't serialize. A miss is a real
        // cost-model evaluation — the per-query timing the telemetry
        // layer profiles (hits are O(hash) and not worth a clock read).
        let v = if cliffguard_telemetry::metrics_enabled() {
            let t0 = std::time::Instant::now();
            let v = compute();
            if let Some(h) = cliffguard_telemetry::histogram("cliffguard.sim.query_cost_ms") {
                h.record(cliffguard_telemetry::elapsed_ms(t0));
            }
            v
        } else {
            compute()
        };
        let mut map = shard.lock();
        if map.len() >= self.shard_capacity && !map.contains_key(&key) {
            self.evictions
                .fetch_add(map.len() as u64, Ordering::Relaxed);
            map.clear();
        }
        map.insert(key, v);
        v
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters keep accumulating).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Publishes the counter snapshot into the installed telemetry
    /// registry as `cliffguard.sim.cache.*` gauges. A no-op when metrics
    /// are off; call at natural boundaries (end of a design run, end of
    /// an experiment).
    pub fn publish_metrics(&self) {
        if !cliffguard_telemetry::metrics_enabled() {
            return;
        }
        let stats = self.stats();
        for (name, v) in [
            ("cliffguard.sim.cache.hits", stats.hits as f64),
            ("cliffguard.sim.cache.misses", stats.misses as f64),
            ("cliffguard.sim.cache.evictions", stats.evictions as f64),
            ("cliffguard.sim.cache.hit_rate", stats.hit_rate()),
            ("cliffguard.sim.cache.entries", self.len() as f64),
        ] {
            if let Some(g) = cliffguard_telemetry::gauge(name) {
                g.set(v);
            }
        }
    }
}

/// An [`Engine`] wrapper that memoizes per-query latencies in a
/// [`CostCache`].
///
/// `workload_cost` is overridden to fingerprint the design **once** per
/// workload rather than once per query, so the cached fast path does no
/// per-query hashing of the design.
pub struct CachedEngine<'e, E: Engine> {
    inner: &'e E,
    cache: CostCache,
}

impl<'e, E: Engine> CachedEngine<'e, E> {
    /// Wraps `inner` with a default-capacity cache.
    pub fn new(inner: &'e E) -> Self {
        Self {
            inner,
            cache: CostCache::default(),
        }
    }

    /// Wraps `inner` with a cache of ~`capacity` entries.
    pub fn with_capacity(inner: &'e E, capacity: usize) -> Self {
        Self {
            inner,
            cache: CostCache::with_capacity(capacity),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &'e E {
        self.inner
    }

    /// The cache's counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The underlying cache.
    pub fn cache(&self) -> &CostCache {
        &self.cache
    }
}

impl<E: Engine> Engine for CachedEngine<'_, E> {
    type Design = E::Design;

    fn query_latency_ms(&self, q: &Query, d: &Self::Design) -> f64 {
        self.cache
            .get_or_insert_with(q.signature(), d.fingerprint(), || {
                self.inner.query_latency_ms(q, d)
            })
    }

    fn catalog(&self) -> &Catalog {
        self.inner.catalog()
    }

    fn workload_cost(&self, w: &Workload, d: &Self::Design) -> WorkloadCost {
        if w.is_empty() {
            return WorkloadCost::zero();
        }
        // Same fold, in the same order, as the trait default — results
        // are bit-identical to the uncached engine's.
        let fingerprint = d.fingerprint();
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        let mut weight = 0.0;
        for (q, wt) in w.iter() {
            let l = self
                .cache
                .get_or_insert_with(q.signature(), fingerprint, || {
                    self.inner.query_latency_ms(q, d)
                });
            total += l * wt;
            weight += wt;
            max = max.max(l);
        }
        WorkloadCost {
            avg_ms: total / weight,
            max_ms: max,
            total_ms: total,
        }
    }

    fn deployment_ms(&self, d: &Self::Design) -> f64 {
        self.inner.deployment_ms(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{ColumnarDesign, ColumnarEngine, Projection};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{ColumnSet, PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 4_000_000,
        }])
    }

    fn design(cols: &[u32]) -> ColumnarDesign {
        ColumnarDesign::from_structures(vec![Projection::new(
            TableId(0),
            ColumnSet::from_iter(cols.iter().map(|&c| cliffguard_workload::ColumnId(c))),
            vec![],
        )])
    }

    #[test]
    fn cached_matches_uncached_bitwise() {
        let engine = ColumnarEngine::new(catalog());
        let cached = CachedEngine::new(&engine);
        let d = design(&[1, 2, 3]);
        let w = Workload::from_queries([
            (
                QueryBuilder::new(TableId(0))
                    .select(&[1, 2])
                    .filter(3, PredOp::Eq, 0.001)
                    .build(),
                5.0,
            ),
            (QueryBuilder::new(TableId(0)).select(&[4]).build(), 2.0),
        ]);
        for _ in 0..3 {
            let a = engine.workload_cost(&w, &d);
            let b = cached.workload_cost(&w, &d);
            assert_eq!(a.total_ms.to_bits(), b.total_ms.to_bits());
            assert_eq!(a.avg_ms.to_bits(), b.avg_ms.to_bits());
            assert_eq!(a.max_ms.to_bits(), b.max_ms.to_bits());
        }
        let stats = cached.cache_stats();
        assert_eq!(stats.misses, 2, "two distinct queries, one design");
        assert_eq!(stats.hits, 4, "two repeat passes over both");
    }

    #[test]
    fn publish_metrics_exports_cache_gauges() {
        // Installing telemetry is process-global; this is the only test
        // in this binary that does, so no serialization lock is needed.
        let t = cliffguard_telemetry::install(cliffguard_telemetry::TelemetryConfig {
            metrics: true,
            ..Default::default()
        })
        .unwrap();
        let engine = ColumnarEngine::new(catalog());
        let cached = CachedEngine::new(&engine);
        let d = design(&[1, 2]);
        let w = Workload::from_queries([(QueryBuilder::new(TableId(0)).select(&[1]).build(), 1.0)]);
        cached.workload_cost(&w, &d);
        cached.workload_cost(&w, &d);
        cached.cache().publish_metrics();
        let snap = t.registry().unwrap().snapshot();
        assert_eq!(snap.gauge("cliffguard.sim.cache.hits"), Some(1.0));
        assert_eq!(snap.gauge("cliffguard.sim.cache.misses"), Some(1.0));
        assert_eq!(snap.gauge("cliffguard.sim.cache.hit_rate"), Some(0.5));
        // `>=`: concurrently running tests may add their own misses
        // while the registry is installed.
        let h = snap.histogram("cliffguard.sim.query_cost_ms").unwrap();
        assert!(h.count >= 1, "the miss must be timed");
    }

    #[test]
    fn accounting_identity_holds() {
        let engine = ColumnarEngine::new(catalog());
        let cached = CachedEngine::new(&engine);
        let q = QueryBuilder::new(TableId(0))
            .select(&[1])
            .filter(2, PredOp::Eq, 0.01)
            .build();
        for i in 0..10 {
            let d = design(&[1, (i % 3) + 2]);
            let _ = cached.query_latency_ms(&q, &d);
        }
        let s = cached.cache_stats();
        assert_eq!(s.lookups(), 10);
        assert_eq!(s.hits + s.misses, s.lookups());
        assert_eq!(s.misses, 3, "three distinct designs");
        assert!(s.hit_rate() > 0.5);
    }

    #[test]
    fn capacity_eviction_counts_and_recovers() {
        let cache = CostCache::with_capacity(SHARDS); // one entry per shard
        for i in 0..200u64 {
            let v = cache.get_or_insert_with(QuerySignature(i), 7, || i as f64);
            assert_eq!(v, i as f64);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 200);
        assert!(s.evictions > 0, "tiny cache must have evicted");
        assert!(cache.len() <= 2 * SHARDS);
        // Evicted keys recompute correctly.
        assert_eq!(cache.get_or_insert_with(QuerySignature(0), 7, || 0.0), 0.0);
    }

    #[test]
    fn wholesale_shard_clear_counts_every_dropped_entry() {
        // Regression lock on the eviction-counter semantics: an epoch
        // eviction clears a whole shard, and must charge *every* dropped
        // entry to `evictions` — not 1 per clear.
        let cache = CostCache::with_capacity(3 * SHARDS); // shard_capacity = 3
        let fp = 42u64;
        let anchor = QuerySignature(0);
        let same_shard: Vec<QuerySignature> = (0..100_000u64)
            .map(QuerySignature)
            .filter(|&s| std::ptr::eq(cache.shard(s, fp), cache.shard(anchor, fp)))
            .take(4)
            .collect();
        assert_eq!(same_shard.len(), 4, "need four keys in one shard");
        for (i, &s) in same_shard[..3].iter().enumerate() {
            cache.get_or_insert_with(s, fp, || i as f64);
        }
        assert_eq!(
            cache.stats().evictions,
            0,
            "shard at capacity, no clear yet"
        );
        // The 4th distinct key overflows the shard.
        cache.get_or_insert_with(same_shard[3], fp, || 3.0);
        assert_eq!(
            cache.stats().evictions,
            3,
            "a wholesale clear must count all dropped entries"
        );
        assert_eq!(cache.len(), 1, "only the newcomer survives");
        // An evicted key recomputes as a fresh miss without another clear
        // until the shard refills.
        cache.get_or_insert_with(same_shard[0], fp, || 0.0);
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = CostCache::default();
        cache.get_or_insert_with(QuerySignature(1), 1, || 1.0);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let engine = ColumnarEngine::new(catalog());
        let cached = CachedEngine::new(&engine);
        let d = design(&[1, 2]);
        let queries: Vec<_> = (0..32u32)
            .map(|i| {
                QueryBuilder::new(TableId(0))
                    .select(&[i % 8])
                    .filter((i + 1) % 8, PredOp::Eq, 0.001)
                    .build()
            })
            .collect();
        let expected: Vec<f64> = queries
            .iter()
            .map(|q| engine.query_latency_ms(q, &d))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (q, &e) in queries.iter().zip(&expected) {
                        assert_eq!(cached.query_latency_ms(q, &d).to_bits(), e.to_bits());
                    }
                });
            }
        });
        let stats = cached.cache_stats();
        assert_eq!(stats.lookups(), 4 * 32);
        assert!(
            stats.hits >= 3 * 32,
            "at most one computing pass per key per racer"
        );
    }
}
