//! Database simulators for CliffGuard: a projection-based columnar engine
//! ("Vertica-like") and a row-store engine with indexes and materialized
//! views ("DBMS-X-like").
//!
//! The paper evaluates CliffGuard against two commercial systems it treats
//! as black boxes. This crate provides those black boxes as *analytical
//! simulators*: given a [`cliffguard_workload::Query`] and a physical
//! design, each engine's cost-based optimizer picks the cheapest access
//! path and returns a model latency in milliseconds. No bytes are stored;
//! everything derives from [`cliffguard_storage::Catalog`] statistics and
//! [`cliffguard_storage::CostConstants`].
//!
//! The models deliberately preserve the mechanism that makes nominal
//! designs brittle (Section 1):
//!
//! * **Columnar** ([`ColumnarEngine`]): a [`Projection`] only helps a query
//!   whose referenced columns it *covers*; its sorted prefix prunes the
//!   scan when predicate columns match, and sorted columns RLE-compress.
//!   Anything uncovered falls back to the super-projection — a full scan of
//!   the referenced columns with no pruning. That fallback *is* the cliff.
//! * **Row store** ([`RowEngine`]): B-tree [`Index`]es accelerate matching
//!   predicate prefixes (at random-I/O cost per fetched row unless
//!   covering); [`MatView`]s answer matching aggregates from pre-aggregated
//!   data. Benefits are real but smaller than columnar pruning, matching
//!   the paper's smaller DBMS-X margins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod columnar;
mod engine;
mod epoch_cache;
mod kernel;
mod replica;
mod row;

pub mod ddl;

pub use cache::{CacheStats, CachedEngine, CostCache};
pub use columnar::{
    ColumnarDesign, ColumnarEngine, ColumnarExplain, ColumnarPlan, Projection, TableAccess,
};
pub use engine::{table_mask_bit, Engine, PhysicalDesign, PlanningEngine, WorkloadCost};
pub use epoch_cache::EpochCacheStore;
pub use kernel::{CostKernel, DesignEpoch, KernelOptions, KernelStats};
pub use replica::{combine_fingerprints, QueryRouter};
pub use row::{Index, MatView, RowDesign, RowEngine, RowPath, RowPlan, RowStructure};
