//! Query routing across a fleet of divergent replica designs.
//!
//! A replicated deployment keeps R copies of the data, each under a
//! *different* physical design, and routes every query to the replica
//! whose design serves it cheapest (the RITA idea). [`QueryRouter`] is
//! that routing layer over the dense cost kernel: it holds one
//! [`DesignEpoch`] latency vector per replica and answers per-query
//! argmin lookups in O(R) — or O(1) against the precomputed full-fleet
//! route table.
//!
//! Determinism contract (the replicated analogue of the kernel's):
//!
//! * **Tie-break**: the argmin scans replicas in ascending index with a
//!   strict `<` comparison, so exact latency ties always route to the
//!   lowest replica index. Routing is a pure function of the epochs —
//!   bit-identical at any thread count.
//! * **Degenerate fleet**: with one replica, no crashes, and unit scale
//!   factors, [`routed_workload_cost`](QueryRouter::routed_workload_cost)
//!   performs *exactly* the fold of
//!   [`CostKernel::workload_cost`](crate::CostKernel::workload_cost) —
//!   same entry order, same operations — so the replicated objective
//!   reduces bit-for-bit to the uniform one.
//! * **Failure masks**: a mask (bit `i` set = replica `i` crashed)
//!   reroutes each query to the argmin *surviving* replica; an optional
//!   inflation factor models the capacity squeeze on survivors. A factor
//!   of exactly `1.0` skips the multiplication, preserving bit-identity.

use crate::engine::WorkloadCost;
use crate::kernel::DesignEpoch;
use cliffguard_workload::{InternedWorkload, QueryId};
use std::sync::Arc;

/// Routes interned queries to their argmin replica over per-replica
/// [`DesignEpoch`] latency vectors.
#[derive(Debug, Clone)]
pub struct QueryRouter {
    epochs: Vec<Arc<DesignEpoch>>,
    /// Per-replica latency scale (1.0 = healthy; >1 = degraded/slow).
    scales: Vec<f64>,
    /// Precomputed full-fleet (mask 0) route: query id → replica index.
    routes: Vec<u32>,
}

impl QueryRouter {
    /// Builds a router over one epoch per replica, all healthy.
    ///
    /// # Panics
    ///
    /// If `epochs` is empty or the latency vectors disagree in length
    /// (epochs must come from the same [`CostKernel`](crate::CostKernel)).
    pub fn new(epochs: Vec<Arc<DesignEpoch>>) -> Self {
        let scales = vec![1.0; epochs.len()];
        Self::with_scales(epochs, scales)
    }

    /// Builds a router with an explicit per-replica latency scale factor
    /// (`1.0` = healthy; a slow replica gets a factor `> 1.0`, which the
    /// argmin then routes around).
    ///
    /// # Panics
    ///
    /// If `epochs` is empty, `scales.len() != epochs.len()`, or the
    /// epochs' latency vectors disagree in length.
    pub fn with_scales(epochs: Vec<Arc<DesignEpoch>>, scales: Vec<f64>) -> Self {
        assert!(!epochs.is_empty(), "a router needs at least one replica");
        assert_eq!(scales.len(), epochs.len(), "one scale per replica");
        let n = epochs[0].latencies().len();
        for e in &epochs[1..] {
            assert_eq!(
                e.latencies().len(),
                n,
                "replica epochs must come from the same kernel"
            );
        }
        let mut router = Self {
            epochs,
            scales,
            routes: Vec::new(),
        };
        router.routes = (0..n)
            .map(|q| router.argmin(q, 0).expect("mask 0 always has survivors") as u32)
            .collect();
        router
    }

    /// The number of replicas in the fleet.
    pub fn replicas(&self) -> usize {
        self.epochs.len()
    }

    /// The number of distinct interned queries the route table covers.
    pub fn query_count(&self) -> usize {
        self.routes.len()
    }

    /// The scaled latency of query `q` on `replica`. A scale of exactly
    /// `1.0` returns the epoch latency bit-for-bit (no multiplication).
    #[inline]
    fn scaled(&self, replica: usize, q: usize) -> f64 {
        let l = self.epochs[replica].latencies()[q];
        let s = self.scales[replica];
        if s == 1.0 {
            l
        } else {
            l * s
        }
    }

    /// Argmin surviving replica for raw query index `q` under `mask`
    /// (ascending scan, strict `<`: ties go to the lowest index).
    #[inline]
    fn argmin(&self, q: usize, mask: u32) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.epochs.len() {
            if mask & (1u32 << r) != 0 {
                continue;
            }
            let l = self.scaled(r, q);
            match best {
                Some((_, b)) if l >= b => {}
                _ => best = Some((r, l)),
            }
        }
        best.map(|(r, _)| r)
    }

    /// The full-fleet (no crashes) route for `id`: an O(1) table lookup.
    #[inline]
    pub fn route(&self, id: QueryId) -> usize {
        self.routes[id.index()] as usize
    }

    /// The route for `id` when the replicas in `mask` are crashed, or
    /// `None` if the mask kills the whole fleet. Mask `0` takes the O(1)
    /// table path.
    #[inline]
    pub fn route_masked(&self, id: QueryId, mask: u32) -> Option<usize> {
        if mask == 0 {
            Some(self.route(id))
        } else {
            self.argmin(id.index(), mask)
        }
    }

    /// The routed latency of `id` under `mask`, inflated by `inflation`
    /// (surviving-capacity factor; exactly `1.0` skips the multiply).
    #[inline]
    pub fn routed_latency_ms(&self, id: QueryId, mask: u32, inflation: f64) -> Option<f64> {
        let r = self.route_masked(id, mask)?;
        let l = self.scaled(r, id.index());
        Some(if inflation == 1.0 { l } else { l * inflation })
    }

    /// The cost of `w` with every query served by its argmin surviving
    /// replica under `mask`, latencies inflated by `inflation`. Returns
    /// `None` when the mask crashes the entire fleet.
    ///
    /// The fold mirrors [`CostKernel::workload_cost`](crate::CostKernel::workload_cost)
    /// operation-for-operation in entry order, so with one replica, mask
    /// `0`, unit scales, and `inflation == 1.0` the result is
    /// bit-identical to the unreplicated kernel cost.
    pub fn routed_workload_cost(
        &self,
        w: &InternedWorkload,
        mask: u32,
        inflation: f64,
    ) -> Option<WorkloadCost> {
        if (0..self.epochs.len()).all(|r| mask & (1u32 << r) != 0) {
            return None;
        }
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        let mut weight = 0.0;
        let ids = w.ids();
        let wts = w.weights();
        if mask == 0 && inflation == 1.0 {
            // Healthy-fleet fast path: a branch-free pass over the flat
            // id/weight slices and the precomputed route table — same
            // operations in the same entry order as the general path, so
            // the numbers are bit-identical.
            for (&id, &wt) in ids.iter().zip(wts) {
                let q = id as usize;
                let l = self.scaled(self.routes[q] as usize, q);
                total += l * wt;
                weight += wt;
                max = max.max(l);
            }
        } else {
            for (&id, &wt) in ids.iter().zip(wts) {
                let l = self.routed_latency_ms(QueryId(id), mask, inflation)?;
                total += l * wt;
                weight += wt;
                max = max.max(l);
            }
        }
        Some(WorkloadCost {
            avg_ms: total / weight,
            max_ms: max,
            total_ms: total,
        })
    }

    /// The fraction of `w`'s total weight routed to each replica under
    /// `mask` (crashed replicas get `0.0`). Empty workloads yield all
    /// zeros. Returns `None` when the mask kills the fleet.
    pub fn routing_shares(&self, w: &InternedWorkload, mask: u32) -> Option<Vec<f64>> {
        let mut routed = vec![0.0f64; self.epochs.len()];
        let mut weight = 0.0f64;
        for &(id, wt) in w.entries() {
            let r = self.route_masked(id, mask)?;
            routed[r] += wt;
            weight += wt;
        }
        if weight > 0.0 {
            for share in &mut routed {
                *share /= weight;
            }
        }
        Some(routed)
    }

    /// The per-replica epoch fingerprints, in replica order.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.fingerprint()).collect()
    }
}

/// Order-insensitive combination of per-replica design fingerprints — the
/// *set* fingerprint of a replicated design. Permuting the replicas never
/// changes it; the same bit-mix-and-sum scheme as the per-design
/// structure-set fingerprint, so collision behavior matches.
pub fn combine_fingerprints(fingerprints: impl Iterator<Item = u64>) -> u64 {
    crate::engine::combine_structure_hashes(fingerprints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(fp: u64, lat: &[f64]) -> Arc<DesignEpoch> {
        Arc::new(DesignEpoch::from_parts(fp, lat.to_vec()))
    }

    #[test]
    fn ties_route_to_the_lowest_replica_index() {
        let r = QueryRouter::new(vec![epoch(1, &[5.0, 3.0]), epoch(2, &[5.0, 2.0])]);
        assert_eq!(r.route(QueryId(0)), 0, "exact tie → lowest index");
        assert_eq!(r.route(QueryId(1)), 1);
    }

    #[test]
    fn masked_routing_falls_over_to_survivors() {
        let r = QueryRouter::new(vec![epoch(1, &[1.0, 9.0]), epoch(2, &[9.0, 1.0])]);
        assert_eq!(r.route_masked(QueryId(0), 0b01), Some(1));
        assert_eq!(r.route_masked(QueryId(0), 0b10), Some(0));
        assert_eq!(r.route_masked(QueryId(0), 0b11), None, "fleet dead");
    }

    #[test]
    fn slow_scale_routes_around_the_degraded_replica() {
        let fast_on_0 = vec![epoch(1, &[1.0]), epoch(2, &[1.5])];
        let r = QueryRouter::with_scales(fast_on_0, vec![4.0, 1.0]);
        assert_eq!(r.route(QueryId(0)), 1, "scaled 4.0 > 1.5 → replica 1");
    }

    #[test]
    fn unit_inflation_is_bit_exact() {
        let r = QueryRouter::new(vec![epoch(1, &[3.5])]);
        let l = r.routed_latency_ms(QueryId(0), 0, 1.0).unwrap();
        assert_eq!(l.to_bits(), 3.5f64.to_bits());
        let inflated = r.routed_latency_ms(QueryId(0), 0, 1.5).unwrap();
        assert_eq!(inflated.to_bits(), (3.5f64 * 1.5).to_bits());
    }

    #[test]
    fn set_fingerprint_is_order_insensitive() {
        let a = combine_fingerprints([1u64, 2, 3].into_iter());
        let b = combine_fingerprints([3u64, 1, 2].into_iter());
        assert_eq!(a, b);
        assert_ne!(a, combine_fingerprints([1u64, 2].into_iter()));
    }
}
