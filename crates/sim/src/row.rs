//! The row-store (DBMS-X-like) engine: heap tables, secondary B-tree
//! indexes, and materialized views.
//!
//! DBMS-X "finds various types of indices and materialized views"
//! (Section 6.1). The cost model:
//!
//! * **Heap scan** reads the *full row width* — the columnar engine's
//!   column-selective advantage does not exist here, which is why DBMS-X
//!   margins in the paper (2–5×) are smaller than Vertica's (up to 40×).
//! * **Index** on a key prefix matching the query's predicates: a covering
//!   index leaf-scans just the matched range; a non-covering index pays a
//!   random heap fetch per matched row (and is therefore only chosen when
//!   selective enough to beat the scan).
//! * **Materialized view** answers a matching aggregate from pre-grouped
//!   rows; an exact group-by match is free of re-aggregation, a coarser
//!   query re-aggregates the view's rows.

use crate::engine::{Engine, PhysicalDesign, PlanningEngine};
use cliffguard_storage::{Catalog, CostConstants};
use cliffguard_workload::{ColumnId, ColumnSet, PredOp, Predicate, Query, TableId};
use serde::{Deserialize, Serialize};

/// Fraction of matched rows that still incur a random heap fetch through a
/// non-covering index (partial clustering / buffer hits).
const HEAP_FETCH_FRACTION: f64 = 0.2;
/// B-tree descent cost in random I/Os.
const BTREE_DESCENT_IOS: f64 = 3.0;
/// Per-row space overhead of an index entry (pointers, headers), bytes.
const INDEX_ENTRY_OVERHEAD: u64 = 12;

/// A secondary B-tree index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Index {
    /// Indexed table.
    pub table: TableId,
    /// Key columns, most significant first.
    pub key: Vec<ColumnId>,
}

impl Index {
    /// Creates an index.
    pub fn new(table: TableId, key: Vec<ColumnId>) -> Self {
        assert!(!key.is_empty(), "index needs at least one key column");
        Self { table, key }
    }

    /// Key columns as a set.
    pub fn key_set(&self) -> ColumnSet {
        ColumnSet::from_iter(self.key.iter().copied())
    }

    /// Stored size in bytes.
    pub fn size_bytes(&self, catalog: &Catalog) -> u64 {
        let rows = catalog.table(self.table).rows;
        let entry: u64 = self
            .key
            .iter()
            .map(|&c| catalog.column(c).width_bytes as u64)
            .sum::<u64>()
            + INDEX_ENTRY_OVERHEAD;
        rows * entry
    }
}

/// A materialized view: pre-aggregated columns grouped by `group_by`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatView {
    /// Source table.
    pub table: TableId,
    /// Stored columns (must include the group-by columns).
    pub columns: ColumnSet,
    /// Grouping columns.
    pub group_by: ColumnSet,
}

impl MatView {
    /// Creates a materialized view; the grouping columns must be stored.
    pub fn new(table: TableId, columns: ColumnSet, group_by: ColumnSet) -> Self {
        assert!(
            group_by.is_subset(&columns),
            "group-by columns must be stored in the view"
        );
        assert!(
            !group_by.is_empty(),
            "views are grouped; use an index otherwise"
        );
        Self {
            table,
            columns,
            group_by,
        }
    }

    /// Expected number of rows (groups) of the view.
    pub fn group_rows(&self, catalog: &Catalog) -> u64 {
        let rows = catalog.table(self.table).rows;
        let mut groups: f64 = 1.0;
        for c in self.group_by.iter() {
            groups = (groups * catalog.column(c).stats.ndv as f64).min(rows as f64);
        }
        groups.max(1.0) as u64
    }

    /// Stored size in bytes.
    pub fn size_bytes(&self, catalog: &Catalog) -> u64 {
        let width: u64 = self
            .columns
            .iter()
            .map(|c| catalog.column(c).width_bytes as u64)
            .sum();
        self.group_rows(catalog) * width
    }
}

/// One structure of a row-store design.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowStructure {
    /// A secondary index.
    Index(Index),
    /// A materialized view.
    MatView(MatView),
}

/// A row-store physical design: indexes + materialized views.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RowDesign {
    /// Secondary indexes.
    pub indexes: Vec<Index>,
    /// Materialized views.
    pub views: Vec<MatView>,
}

impl RowDesign {
    /// The empty design.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a structure if not already present.
    pub fn add(&mut self, s: RowStructure) {
        match s {
            RowStructure::Index(i) => {
                if !self.indexes.contains(&i) {
                    self.indexes.push(i);
                }
            }
            RowStructure::MatView(v) => {
                if !self.views.contains(&v) {
                    self.views.push(v);
                }
            }
        }
    }
}

impl PhysicalDesign for RowDesign {
    type Structure = RowStructure;

    fn structures(&self) -> Vec<RowStructure> {
        self.indexes
            .iter()
            .cloned()
            .map(RowStructure::Index)
            .chain(self.views.iter().cloned().map(RowStructure::MatView))
            .collect()
    }

    fn from_structures(structures: Vec<RowStructure>) -> Self {
        let mut d = Self::default();
        for s in structures {
            d.add(s);
        }
        d
    }

    fn structure_price(s: &RowStructure, catalog: &Catalog) -> u64 {
        match s {
            RowStructure::Index(i) => i.size_bytes(catalog),
            RowStructure::MatView(v) => v.size_bytes(catalog),
        }
    }

    fn fingerprint(&self) -> u64 {
        // In place, without materializing `RowStructure` wrappers; the
        // (kind, inner) tuples hash distinctly per kind, so an index and
        // a view over the same columns cannot collide structurally.
        crate::engine::combine_structure_hashes(
            self.indexes
                .iter()
                .map(|i| crate::engine::structure_hash((0u8, i)))
                .chain(
                    self.views
                        .iter()
                        .map(|v| crate::engine::structure_hash((1u8, v))),
                ),
        )
    }
}

/// The row-store engine.
#[derive(Debug, Clone)]
pub struct RowEngine {
    catalog: Catalog,
    cost: CostConstants,
}

/// Access path chosen by the row optimizer for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowPath {
    /// Sequential heap scan.
    SeqScan,
    /// Index access; `covering` means no heap fetches were needed.
    Index {
        /// The chosen index.
        index: Index,
        /// Whether the index covers all referenced columns.
        covering: bool,
    },
    /// Materialized-view rewrite.
    MatView(MatView),
}

/// Outcome of choosing the best access path for one table.
struct Access {
    ms: f64,
    survived: f64,
    /// True when an exactly-matching MV already produced the aggregate.
    agg_done: bool,
    path: RowPath,
}

/// One table slice of a compiled row plan.
#[derive(Debug, Clone)]
struct RowPlannedTable {
    table: TableId,
    referenced: ColumnSet,
    preds: Vec<Predicate>,
}

/// A compiled row-store plan: the per-table decomposition and the query
/// attributes the access-path chooser and post-processing read, hoisted out
/// of `query_latency_ms` so the design-epoch kernel's fill loop does no
/// repeated allocation.
#[derive(Debug, Clone)]
pub struct RowPlan {
    tables: Vec<RowPlannedTable>,
    aggregates: bool,
    group_by: ColumnSet,
    filter: ColumnSet,
    has_order_by: bool,
}

impl RowEngine {
    /// Creates the engine with default cost constants.
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            cost: CostConstants::default(),
        }
    }

    /// Creates the engine with explicit cost constants.
    pub fn with_cost(catalog: Catalog, cost: CostConstants) -> Self {
        Self { catalog, cost }
    }

    /// Matched selectivity of predicates against an index key prefix.
    fn prefix_selectivity(key: &[ColumnId], preds: &[Predicate]) -> f64 {
        let mut sel = 1.0;
        let mut matched = false;
        for &c in key {
            let best = preds
                .iter()
                .filter(|p| p.column == c)
                .min_by(|a, b| a.selectivity.total_cmp(&b.selectivity));
            match best {
                Some(p) if p.op == PredOp::Eq => {
                    sel *= p.selectivity;
                    matched = true;
                }
                Some(p) if matches!(p.op, PredOp::Range | PredOp::In) => {
                    sel *= p.selectivity;
                    matched = true;
                    break;
                }
                _ => break,
            }
        }
        if matched {
            sel
        } else {
            1.0
        }
    }

    /// Sequential heap-scan cost for a table.
    fn scan_ms(&self, t: TableId) -> f64 {
        let table = self.catalog.table(t);
        let bytes = table.rows as f64 * table.row_width() as f64;
        self.cost.seq_read_ms(bytes) + self.cost.cpu_ms(table.rows as f64)
    }

    /// Best access path for one table of the query.
    fn table_access(
        &self,
        plan: &RowPlan,
        d: &RowDesign,
        pt: &RowPlannedTable,
        is_anchor: bool,
    ) -> Access {
        let t = pt.table;
        let referenced = &pt.referenced;
        let preds = &pt.preds;
        let table = self.catalog.table(t);
        let rows = table.rows as f64;
        let survived = rows
            * preds
                .iter()
                .map(|p| p.selectivity)
                .product::<f64>()
                .clamp(1e-12, 1.0);
        let survived = survived.max(1.0);

        let mut best = Access {
            ms: self.scan_ms(t),
            survived,
            agg_done: false,
            path: RowPath::SeqScan,
        };

        // Indexes.
        for idx in d.indexes.iter().filter(|i| i.table == t) {
            let sel = Self::prefix_selectivity(&idx.key, preds);
            if sel >= 1.0 {
                continue;
            }
            let matched = (rows * sel).max(1.0);
            let covering = referenced.is_subset(&idx.key_set());
            let ms = if covering {
                let entry: f64 = idx
                    .key
                    .iter()
                    .map(|&c| self.catalog.column(c).width_bytes as f64)
                    .sum();
                BTREE_DESCENT_IOS * self.cost.random_io_ms
                    + self.cost.seq_read_ms(matched * entry)
                    + self.cost.cpu_ms(matched)
            } else {
                BTREE_DESCENT_IOS * self.cost.random_io_ms
                    + matched * HEAP_FETCH_FRACTION * self.cost.random_io_ms
                    + self.cost.cpu_ms(matched)
            };
            if ms < best.ms {
                best = Access {
                    ms,
                    survived,
                    agg_done: false,
                    path: RowPath::Index {
                        index: idx.clone(),
                        covering,
                    },
                };
            }
        }

        // Materialized views (anchor only; view rewrites over joins are out
        // of scope, as in most commercial MV matchers of the era).
        if is_anchor && plan.aggregates && !plan.group_by.is_empty() {
            for v in d.views.iter().filter(|v| v.table == t) {
                let filters_ok = plan
                    .filter
                    .iter()
                    .filter(|&c| self.catalog.table_of(c) == t)
                    .all(|c| v.group_by.contains(c));
                if !referenced.is_subset(&v.columns)
                    || !plan.group_by.is_subset(&v.group_by)
                    || !filters_ok
                {
                    continue;
                }
                let vrows = v.group_rows(&self.catalog) as f64;
                let width: f64 = v
                    .columns
                    .iter()
                    .map(|c| self.catalog.column(c).width_bytes as f64)
                    .sum();
                let ms = self.cost.seq_read_ms(vrows * width) + self.cost.cpu_ms(vrows);
                if ms < best.ms {
                    let vsurvived = (vrows
                        * preds
                            .iter()
                            .map(|p| p.selectivity)
                            .product::<f64>()
                            .clamp(1e-12, 1.0))
                    .max(1.0);
                    best = Access {
                        ms,
                        survived: vsurvived,
                        agg_done: v.group_by == plan.group_by,
                        path: RowPath::MatView(v.clone()),
                    };
                }
            }
        }
        best
    }

    /// Explains the optimizer's per-table access-path choices for a query.
    pub fn explain(&self, q: &Query, d: &RowDesign) -> Vec<(TableId, RowPath, f64)> {
        let plan = self.compile_plan(q);
        plan.tables
            .iter()
            .enumerate()
            .map(|(i, pt)| {
                let acc = self.table_access(&plan, d, pt, i == 0);
                (pt.table, acc.path, acc.ms)
            })
            .collect()
    }

    fn per_table(&self, q: &Query) -> Vec<RowPlannedTable> {
        let mut tables = vec![q.anchor];
        for &t in &q.joins {
            if !tables.contains(&t) {
                tables.push(t);
            }
        }
        tables
            .into_iter()
            .map(|t| {
                let referenced: ColumnSet = q
                    .all_columns()
                    .iter()
                    .filter(|&c| self.catalog.table_of(c) == t)
                    .collect();
                let preds: Vec<Predicate> = q
                    .predicates
                    .iter()
                    .filter(|p| self.catalog.table_of(p.column) == t)
                    .copied()
                    .collect();
                RowPlannedTable {
                    table: t,
                    referenced,
                    preds,
                }
            })
            .collect()
    }
}

impl Engine for RowEngine {
    type Design = RowDesign;

    fn query_latency_ms(&self, q: &Query, d: &RowDesign) -> f64 {
        // Compile-then-evaluate: shares every arithmetic step with the
        // kernel's reused-plan path, so costs are bit-identical.
        self.plan_latency_ms(&self.compile_plan(q), d)
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn deployment_ms(&self, d: &RowDesign) -> f64 {
        let mut ms = 0.0;
        for i in &d.indexes {
            let rows = self.catalog.table(i.table).rows as f64;
            ms += self.cost.build_ms(i.size_bytes(&self.catalog) as f64) + self.cost.sort_ms(rows);
        }
        for v in &d.views {
            let rows = self.catalog.table(v.table).rows as f64;
            ms += self.cost.build_ms(v.size_bytes(&self.catalog) as f64) + self.cost.cpu_ms(rows);
        }
        ms
    }
}

impl PlanningEngine for RowEngine {
    type Plan = RowPlan;

    fn compile_plan(&self, q: &Query) -> RowPlan {
        RowPlan {
            tables: self.per_table(q),
            aggregates: q.aggregates,
            group_by: q.group_by.clone(),
            filter: q.filter.clone(),
            has_order_by: !q.order_by.is_empty(),
        }
    }

    fn plan_latency_ms(&self, plan: &RowPlan, d: &RowDesign) -> f64 {
        let mut total = self.cost.fixed_overhead_ms;
        let mut anchor = Access {
            ms: 0.0,
            survived: 1.0,
            agg_done: false,
            path: RowPath::SeqScan,
        };
        for (i, pt) in plan.tables.iter().enumerate() {
            let acc = self.table_access(plan, d, pt, i == 0);
            total += acc.ms;
            if i == 0 {
                anchor = acc;
            } else {
                total += self.cost.cpu_ms(acc.survived + anchor.survived * 0.5);
            }
        }
        // Aggregation.
        let mut out_rows = anchor.survived;
        if plan.aggregates && !plan.group_by.is_empty() {
            let mut groups = 1.0f64;
            for c in plan.group_by.iter() {
                groups = (groups * self.catalog.column(c).stats.ndv as f64).min(anchor.survived);
            }
            if !anchor.agg_done {
                total += self.cost.cpu_ms(anchor.survived * 1.2);
            }
            out_rows = groups;
        } else if plan.aggregates {
            total += self.cost.cpu_ms(anchor.survived * 0.3);
            out_rows = 1.0;
        }
        // Ordering (row stores always sort here).
        if plan.has_order_by {
            total += self.cost.sort_ms(out_rows);
        }
        total
    }

    fn plan_depends_on(&self, plan: &RowPlan, s: &RowStructure) -> bool {
        match s {
            // An index enters the access-path competition for a table slice
            // only when it matches the table and some predicate prefix
            // (`prefix_selectivity < 1.0` — the exact skip condition in
            // `table_access`).
            RowStructure::Index(i) => plan.tables.iter().any(|pt| {
                pt.table == i.table && Self::prefix_selectivity(&i.key, &pt.preds) < 1.0
            }),
            // MVs are matched at the anchor only, and only for grouped
            // aggregates over the view's table.
            RowStructure::MatView(v) => {
                plan.aggregates
                    && !plan.group_by.is_empty()
                    && plan.tables.first().is_some_and(|pt| pt.table == v.table)
            }
        }
    }

    fn engine_version_tag(&self) -> &'static str {
        "row-v1"
    }

    fn plan_tables_mask(&self, plan: &RowPlan) -> u64 {
        plan.tables
            .iter()
            .fold(0, |m, pt| m | crate::engine::table_mask_bit(pt.table))
    }

    fn structure_tables_mask(&self, s: &RowStructure) -> u64 {
        // Both arms of `plan_depends_on` require a same-table slice
        // (indexes at any slice, MVs at the anchor).
        crate::engine::table_mask_bit(match s {
            RowStructure::Index(i) => i.table,
            RowStructure::MatView(v) => v.table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_storage::{ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::QueryBuilder;

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000_000),
                },
                ColumnDef {
                    name: "region".into(),
                    width_bytes: 4,
                    stats: ColumnStats::uniform(100),
                },
                ColumnDef {
                    name: "amount".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(1_000_000),
                },
                ColumnDef {
                    name: "day".into(),
                    width_bytes: 4,
                    stats: ColumnStats::uniform(365),
                },
            ],
            rows: 10_000_000,
        }])
    }

    fn engine() -> RowEngine {
        RowEngine::new(catalog())
    }

    #[test]
    fn selective_index_beats_scan() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(0, PredOp::Eq, 1e-7)
            .build();
        let idx = RowDesign::from_structures(vec![RowStructure::Index(Index::new(
            TableId(0),
            vec![ColumnId(0)],
        ))]);
        let with = e.query_latency_ms(&q, &idx);
        let without = e.query_latency_ms(&q, &RowDesign::empty());
        assert!(with * 3.0 < without, "{with} vs {without}");
    }

    #[test]
    fn unselective_index_ignored() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Range, 0.6)
            .build();
        let idx = RowDesign::from_structures(vec![RowStructure::Index(Index::new(
            TableId(0),
            vec![ColumnId(1)],
        ))]);
        // With 60% matched and random heap fetches, the optimizer should
        // stick to the sequential scan: latency identical to NoDesign.
        assert_eq!(
            e.query_latency_ms(&q, &idx),
            e.query_latency_ms(&q, &RowDesign::empty())
        );
    }

    #[test]
    fn covering_index_beats_non_covering() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Eq, 0.01)
            .build();
        let covering = RowDesign::from_structures(vec![RowStructure::Index(Index::new(
            TableId(0),
            vec![ColumnId(1), ColumnId(2)],
        ))]);
        let fetching = RowDesign::from_structures(vec![RowStructure::Index(Index::new(
            TableId(0),
            vec![ColumnId(1)],
        ))]);
        assert!(e.query_latency_ms(&q, &covering) < e.query_latency_ms(&q, &fetching));
    }

    #[test]
    fn matview_answers_matching_aggregate() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .group_by(&[1])
            .build();
        let mv = RowDesign::from_structures(vec![RowStructure::MatView(MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            ColumnSet::from_ids(&[1]),
        ))]);
        let with = e.query_latency_ms(&q, &mv);
        let without = e.query_latency_ms(&q, &RowDesign::empty());
        assert!(with * 10.0 < without, "{with} vs {without}");
    }

    #[test]
    fn matview_not_used_for_non_matching_group() {
        let e = engine();
        // group by day, view grouped by region only → unusable
        let q = QueryBuilder::new(TableId(0))
            .select(&[2, 3])
            .group_by(&[3])
            .build();
        let mv = RowDesign::from_structures(vec![RowStructure::MatView(MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            ColumnSet::from_ids(&[1]),
        ))]);
        assert_eq!(
            e.query_latency_ms(&q, &mv),
            e.query_latency_ms(&q, &RowDesign::empty())
        );
    }

    #[test]
    fn coarser_query_reaggregates_view() {
        let e = engine();
        // view grouped by (region, day); query groups by region only
        let fine = MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2, 3]),
            ColumnSet::from_ids(&[1, 3]),
        );
        let q = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .group_by(&[1])
            .build();
        let d = RowDesign::from_structures(vec![RowStructure::MatView(fine)]);
        let with = e.query_latency_ms(&q, &d);
        let without = e.query_latency_ms(&q, &RowDesign::empty());
        assert!(with < without);
    }

    #[test]
    fn prices_positive_and_views_smaller_than_base() {
        let cat = catalog();
        let idx = Index::new(TableId(0), vec![ColumnId(1)]);
        let mv = MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            ColumnSet::from_ids(&[1]),
        );
        assert!(idx.size_bytes(&cat) > 0);
        assert!(mv.size_bytes(&cat) > 0);
        // 100 groups × 12B ≪ table
        let table_bytes = cat.table(TableId(0)).rows * cat.table(TableId(0)).row_width();
        assert!(mv.size_bytes(&cat) < table_bytes / 1000);
    }

    #[test]
    fn design_structures_roundtrip() {
        let idx = RowStructure::Index(Index::new(TableId(0), vec![ColumnId(1)]));
        let mv = RowStructure::MatView(MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            ColumnSet::from_ids(&[1]),
        ));
        let d = RowDesign::from_structures(vec![idx.clone(), mv.clone(), idx.clone()]);
        assert_eq!(d.len(), 2);
        let back = RowDesign::from_structures(d.structures());
        assert_eq!(back, d);
    }

    #[test]
    fn deployment_time_positive() {
        let e = engine();
        let d = RowDesign::from_structures(vec![RowStructure::Index(Index::new(
            TableId(0),
            vec![ColumnId(1)],
        ))]);
        assert!(e.deployment_ms(&d) > 0.0);
        assert_eq!(e.deployment_ms(&RowDesign::empty()), 0.0);
    }

    #[test]
    fn explain_reports_path_kinds() {
        let e = engine();
        let selective = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(0, PredOp::Eq, 1e-7)
            .build();
        let d = RowDesign::from_structures(vec![RowStructure::Index(Index::new(
            TableId(0),
            vec![ColumnId(0)],
        ))]);
        let plan = e.explain(&selective, &d);
        assert!(matches!(plan[0].1, RowPath::Index { .. }));
        let bare_plan = e.explain(&selective, &RowDesign::empty());
        assert_eq!(bare_plan[0].1, RowPath::SeqScan);
        assert!(bare_plan[0].2 > plan[0].2);

        // MV rewrite shows up as MatView.
        let agg = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .group_by(&[1])
            .build();
        let mv = RowDesign::from_structures(vec![RowStructure::MatView(MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            ColumnSet::from_ids(&[1]),
        ))]);
        assert!(matches!(e.explain(&agg, &mv)[0].1, RowPath::MatView(_)));
    }

    #[test]
    #[should_panic(expected = "group-by columns")]
    fn view_must_store_group_columns() {
        let _ = MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[2]),
            ColumnSet::from_ids(&[1]),
        );
    }
}
