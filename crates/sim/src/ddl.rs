//! DDL export: render physical designs as the SQL a DBA would deploy.
//!
//! CliffGuard's output in production is a set of `CREATE PROJECTION` /
//! `CREATE INDEX` / `CREATE MATERIALIZED VIEW` statements handed to the
//! administrator ("The final (robust) design is then sent back to the
//! administrator, who may decide to deploy it in the DBMS", Section 2).
//! The projection syntax follows the paper's own Section 3 sketch.

use crate::columnar::{ColumnarDesign, Projection};
use crate::row::{Index, MatView, RowDesign};
use cliffguard_storage::Catalog;
use std::fmt::Write as _;

/// Renders one projection as Vertica-style DDL.
pub fn projection_ddl(p: &Projection, catalog: &Catalog, name: &str) -> String {
    let table = &catalog.table(p.table).name;
    let cols: Vec<String> = p
        .columns
        .iter()
        .map(|c| catalog.column(c).name.clone())
        .collect();
    let mut ddl = String::new();
    let _ = write!(
        ddl,
        "CREATE PROJECTION {name}\n  AS SELECT {}\n  FROM {table}",
        cols.join(", ")
    );
    if !p.sort_order.is_empty() {
        let sort: Vec<String> = p
            .sort_order
            .iter()
            .map(|&c| catalog.column(c).name.clone())
            .collect();
        let _ = write!(ddl, "\n  ORDER BY {}", sort.join(", "));
    }
    ddl.push(';');
    ddl
}

/// Renders one index as DDL.
pub fn index_ddl(i: &Index, catalog: &Catalog, name: &str) -> String {
    let table = &catalog.table(i.table).name;
    let cols: Vec<String> = i
        .key
        .iter()
        .map(|&c| catalog.column(c).name.clone())
        .collect();
    format!("CREATE INDEX {name} ON {table} ({});", cols.join(", "))
}

/// Renders one materialized view as DDL (aggregates rendered as `MAX`
/// placeholders — the structural model does not track aggregate functions).
pub fn matview_ddl(v: &MatView, catalog: &Catalog, name: &str) -> String {
    let table = &catalog.table(v.table).name;
    let group: Vec<String> = v
        .group_by
        .iter()
        .map(|c| catalog.column(c).name.clone())
        .collect();
    let aggs: Vec<String> = v
        .columns
        .iter()
        .filter(|c| !v.group_by.contains(*c))
        .map(|c| {
            let n = &catalog.column(c).name;
            format!("MAX({n}) AS {n}")
        })
        .collect();
    let mut select = group.clone();
    select.extend(aggs);
    format!(
        "CREATE MATERIALIZED VIEW {name} AS\n  SELECT {}\n  FROM {table}\n  GROUP BY {};",
        select.join(", "),
        group.join(", ")
    )
}

/// Full deployment script for a columnar design.
pub fn columnar_script(d: &ColumnarDesign, catalog: &Catalog) -> String {
    let mut out = String::new();
    for (i, p) in d.projections.iter().enumerate() {
        let table = &catalog.table(p.table).name;
        let _ = writeln!(
            out,
            "{}\n",
            projection_ddl(p, catalog, &format!("{table}_proj_{i}"))
        );
    }
    out
}

/// Full deployment script for a row-store design.
pub fn row_script(d: &RowDesign, catalog: &Catalog) -> String {
    let mut out = String::new();
    for (i, idx) in d.indexes.iter().enumerate() {
        let table = &catalog.table(idx.table).name;
        let _ = writeln!(
            out,
            "{}",
            index_ddl(idx, catalog, &format!("{table}_idx_{i}"))
        );
    }
    for (i, v) in d.views.iter().enumerate() {
        let table = &catalog.table(v.table).name;
        let _ = writeln!(
            out,
            "{}",
            matview_ddl(v, catalog, &format!("{table}_mv_{i}"))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhysicalDesign, RowStructure};
    use cliffguard_storage::{ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{ColumnId, ColumnSet, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "sales".into(),
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(1000),
                },
                ColumnDef {
                    name: "region".into(),
                    width_bytes: 4,
                    stats: ColumnStats::uniform(10),
                },
                ColumnDef {
                    name: "amount".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(500),
                },
            ],
            rows: 1000,
        }])
    }

    #[test]
    fn projection_ddl_matches_paper_syntax() {
        let cat = catalog();
        let p = Projection::new(TableId(0), ColumnSet::from_ids(&[1, 2]), vec![ColumnId(1)]);
        let ddl = projection_ddl(&p, &cat, "sales_proj_0");
        assert_eq!(
            ddl,
            "CREATE PROJECTION sales_proj_0\n  AS SELECT region, amount\n  FROM sales\n  ORDER BY region;"
        );
    }

    #[test]
    fn unsorted_projection_omits_order_by() {
        let cat = catalog();
        let p = Projection::new(TableId(0), ColumnSet::from_ids(&[0]), vec![]);
        let ddl = projection_ddl(&p, &cat, "x");
        assert!(!ddl.contains("ORDER BY"));
    }

    #[test]
    fn index_and_view_ddl() {
        let cat = catalog();
        let idx = Index::new(TableId(0), vec![ColumnId(1), ColumnId(0)]);
        assert_eq!(
            index_ddl(&idx, &cat, "i0"),
            "CREATE INDEX i0 ON sales (region, id);"
        );
        let v = MatView::new(
            TableId(0),
            ColumnSet::from_ids(&[1, 2]),
            ColumnSet::from_ids(&[1]),
        );
        let ddl = matview_ddl(&v, &cat, "mv0");
        assert!(ddl.contains("GROUP BY region"));
        assert!(ddl.contains("MAX(amount) AS amount"));
    }

    #[test]
    fn scripts_cover_all_structures() {
        let cat = catalog();
        let cd = ColumnarDesign::from_structures(vec![
            Projection::new(TableId(0), ColumnSet::from_ids(&[1]), vec![ColumnId(1)]),
            Projection::new(TableId(0), ColumnSet::from_ids(&[2]), vec![]),
        ]);
        let s = columnar_script(&cd, &cat);
        assert_eq!(s.matches("CREATE PROJECTION").count(), 2);

        let rd = RowDesign::from_structures(vec![
            RowStructure::Index(Index::new(TableId(0), vec![ColumnId(1)])),
            RowStructure::MatView(MatView::new(
                TableId(0),
                ColumnSet::from_ids(&[1, 2]),
                ColumnSet::from_ids(&[1]),
            )),
        ]);
        let s = row_script(&rd, &cat);
        assert_eq!(s.matches("CREATE INDEX").count(), 1);
        assert_eq!(s.matches("CREATE MATERIALIZED VIEW").count(), 1);
    }
}
