//! The engine and design abstractions shared by both simulators.

use cliffguard_storage::Catalog;
use cliffguard_workload::{Query, Workload};
use std::hash::{Hash, Hasher};

/// A physical design: a priced set of auxiliary structures.
///
/// Structure-level access (`structures` / `from_structures`) is what lets
/// the `MajorityVoteDesigner` and the ILP baseline reason about designs
/// generically, exactly as the paper describes ("for each structure (e.g.,
/// index, materialized view, projection) s, …").
///
/// Designs are `Send + Sync` so the robust-design search can cost many
/// workloads against the same design from worker threads.
pub trait PhysicalDesign: Clone + Default + Send + Sync {
    /// The unit structure (a projection, an index, a materialized view…).
    type Structure: Clone + Eq + Hash + Send + Sync;

    /// The structures of this design.
    fn structures(&self) -> Vec<Self::Structure>;

    /// Builds a design from structures.
    fn from_structures(structures: Vec<Self::Structure>) -> Self;

    /// Storage price of one structure in bytes.
    fn structure_price(s: &Self::Structure, catalog: &Catalog) -> u64;

    /// Total storage price in bytes (`price(D)` of formulation (1)).
    fn price_bytes(&self, catalog: &Catalog) -> u64 {
        self.structures()
            .iter()
            .map(|s| Self::structure_price(s, catalog))
            .sum()
    }

    /// Number of structures.
    fn len(&self) -> usize {
        self.structures().len()
    }

    /// Whether the design is empty (the `NoDesign` baseline).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable fingerprint of this design, for cost memoization: two
    /// designs holding the same **multiset of structures** fingerprint
    /// identically, whatever order the structures were added in.
    ///
    /// The default combines per-structure hashes commutatively over
    /// [`structures`](Self::structures); engines with direct field access
    /// override it to skip the intermediate `Vec` (the result need only
    /// be stable within one design type — fingerprints are never compared
    /// across engines).
    fn fingerprint(&self) -> u64 {
        combine_structure_hashes(self.structures().iter().map(structure_hash))
    }
}

/// Deterministic hash of one structure (`DefaultHasher` with its fixed
/// zero keys: stable across runs and platforms for our derive-based
/// `Hash` impls).
pub(crate) fn structure_hash<S: Hash>(s: S) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Order-insensitive combination of per-structure hashes: each hash is
/// bit-mixed (so near-identical structure hashes spread) and the mixes
/// are summed, which is commutative; the count is folded in last so
/// `{}` and `{s}` with `mix(h(s)) == 0` cannot collide trivially.
pub(crate) fn combine_structure_hashes(hashes: impl Iterator<Item = u64>) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut n: u64 = 0;
    for h in hashes {
        acc = acc.wrapping_add(splitmix64(h));
        n += 1;
    }
    splitmix64(acc ^ n)
}

/// SplitMix64 finalizer — a cheap, high-quality 64-bit bit mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Aggregate latency statistics of a workload under a design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadCost {
    /// Frequency-weighted mean query latency (ms).
    pub avg_ms: f64,
    /// Maximum single-query latency (ms).
    pub max_ms: f64,
    /// Weighted total latency (ms) — the `f(W, D)` the designers minimize.
    pub total_ms: f64,
}

impl WorkloadCost {
    /// The zero cost (empty workload).
    pub fn zero() -> Self {
        Self {
            avg_ms: 0.0,
            max_ms: 0.0,
            total_ms: 0.0,
        }
    }
}

/// A simulated database engine with a cost-based optimizer.
///
/// Engines are `Sync`: they are immutable cost models shared by
/// reference across the worker threads of the parallel cost-evaluation
/// layer.
pub trait Engine: Sync {
    /// The engine's physical-design type.
    type Design: PhysicalDesign;

    /// Model latency (ms) of one query under a design; the engine's
    /// optimizer picks the best access path the design allows.
    fn query_latency_ms(&self, q: &Query, d: &Self::Design) -> f64;

    /// The catalog this engine runs over.
    fn catalog(&self) -> &Catalog;

    /// Aggregate cost of a workload under a design. `f(W, D)` is
    /// `total_ms`; the evaluation section reports `avg_ms` and `max_ms`.
    fn workload_cost(&self, w: &Workload, d: &Self::Design) -> WorkloadCost {
        if w.is_empty() {
            return WorkloadCost::zero();
        }
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        let mut weight = 0.0;
        for (q, wt) in w.iter() {
            let l = self.query_latency_ms(q, d);
            total += l * wt;
            weight += wt;
            max = max.max(l);
        }
        WorkloadCost {
            avg_ms: total / weight,
            max_ms: max,
            total_ms: total,
        }
    }

    /// `f(W, D)` — the scalar objective the designers minimize.
    fn cost_f(&self, w: &Workload, d: &Self::Design) -> f64 {
        self.workload_cost(w, d).total_ms
    }

    /// Time to build (deploy) the design, for the Figure 14 deployment-time
    /// model.
    fn deployment_ms(&self, d: &Self::Design) -> f64;
}

/// An engine whose optimizer can split query costing into a one-time
/// **compile** step and a cheap per-design **evaluate** step.
///
/// `compile_plan` hoists everything derivable from the query alone — the
/// per-table column/predicate decomposition, fallback access paths — out of
/// the latency computation, so the design-epoch kernel can cost the same
/// query against a stream of designs with no per-call allocation.
///
/// **Contract:** `plan_latency_ms(&compile_plan(q), d)` must be
/// bit-identical to `query_latency_ms(q, d)` for every query and design
/// (the engines here guarantee it by routing both paths through the same
/// arithmetic).
pub trait PlanningEngine: Engine {
    /// The compiled form of one query.
    type Plan: Send + Sync;

    /// Compiles a query once, independent of any design.
    fn compile_plan(&self, q: &Query) -> Self::Plan;

    /// Latency (ms) of a compiled query under a design; bit-identical to
    /// [`Engine::query_latency_ms`] on the query the plan was compiled from.
    fn plan_latency_ms(&self, plan: &Self::Plan, d: &Self::Design) -> f64;

    /// Whether structure `s` can influence `plan`'s latency at all — the
    /// dependency predicate behind delta epochs.
    ///
    /// **Contract (soundness):** if this returns `false`, then for every
    /// pair of designs `d` and `d ∪ {s}` (and `d \ {s}`),
    /// `plan_latency_ms(plan, ·)` must be **bit-identical** on both. A
    /// conservative over-approximation (returning `true` for a structure
    /// that turns out not to matter) only wastes re-costing work; an
    /// under-approximation silently serves stale latencies — a cost bug.
    /// The default is the maximally conservative `true`, which disables
    /// delta savings but can never be wrong.
    fn plan_depends_on(
        &self,
        plan: &Self::Plan,
        s: &<Self::Design as PhysicalDesign>::Structure,
    ) -> bool {
        let _ = (plan, s);
        true
    }

    /// A stable tag naming this engine's cost-model version, used to key
    /// persistent epoch-cache entries. Bump it whenever the latency
    /// arithmetic changes in any bit-observable way, so stale snapshots
    /// are rejected instead of trusted.
    fn engine_version_tag(&self) -> &'static str {
        "engine-v0"
    }

    /// A 64-bit over-approximating mask of the tables `plan` reads: bit
    /// [`table_mask_bit`] set for every referenced table. The delta
    /// builder stores one word per plan and ANDs it against the touched
    /// structures' masks as a branch-cheap prefilter before the full
    /// [`plan_depends_on`](Self::plan_depends_on) predicate.
    ///
    /// **Contract (soundness):** a cleared bit asserts `plan_depends_on`
    /// is `false` for every structure whose mask has only that bit —
    /// i.e. the mask must cover every table the predicate can match on.
    /// Wraparound collisions (`table % 64`) and the all-ones default only
    /// over-approximate, which is always safe.
    fn plan_tables_mask(&self, plan: &Self::Plan) -> u64 {
        let _ = plan;
        !0
    }

    /// The matching mask for the tables structure `s` can influence. The
    /// all-ones default disables pruning but can never be wrong.
    fn structure_tables_mask(&self, s: &<Self::Design as PhysicalDesign>::Structure) -> u64 {
        let _ = s;
        !0
    }
}

/// The bit [`PlanningEngine::plan_tables_mask`] assigns to a table:
/// `1 << (t % 64)`. Dense schemas below 64 tables get exact masks;
/// larger ones alias mod 64, which only over-approximates.
#[inline]
pub fn table_mask_bit(t: cliffguard_workload::TableId) -> u64 {
    1u64 << (t.0 % 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_storage::{CatalogGenerator, CostConstants};
    use cliffguard_workload::generator::SchemaShape;
    use cliffguard_workload::{QueryBuilder, TableId};

    /// A trivial engine charging 1ms per selected column, to exercise the
    /// provided trait methods.
    struct ToyEngine {
        catalog: Catalog,
    }

    #[derive(Debug, Clone, Default)]
    struct ToyDesign;

    impl PhysicalDesign for ToyDesign {
        type Structure = u32;
        fn structures(&self) -> Vec<u32> {
            vec![]
        }
        fn from_structures(_: Vec<u32>) -> Self {
            ToyDesign
        }
        fn structure_price(_: &u32, _: &Catalog) -> u64 {
            0
        }
    }

    impl Engine for ToyEngine {
        type Design = ToyDesign;
        fn query_latency_ms(&self, q: &Query, _d: &ToyDesign) -> f64 {
            q.select.len() as f64
        }
        fn catalog(&self) -> &Catalog {
            &self.catalog
        }
        fn deployment_ms(&self, _d: &ToyDesign) -> f64 {
            CostConstants::default().build_ms(0.0)
        }
    }

    #[test]
    fn workload_cost_aggregates() {
        let catalog = CatalogGenerator::default().generate(&SchemaShape::new(vec![4]));
        let e = ToyEngine { catalog };
        let w = Workload::from_queries([
            (QueryBuilder::new(TableId(0)).select(&[0]).build(), 3.0), // 1 ms
            (
                QueryBuilder::new(TableId(0)).select(&[0, 1, 2]).build(),
                1.0,
            ), // 3 ms
        ]);
        let c = e.workload_cost(&w, &ToyDesign);
        assert!((c.total_ms - 6.0).abs() < 1e-12);
        assert!((c.avg_ms - 1.5).abs() < 1e-12);
        assert!((c.max_ms - 3.0).abs() < 1e-12);
        assert_eq!(e.cost_f(&w, &ToyDesign), c.total_ms);
    }

    #[test]
    fn empty_workload_zero_cost() {
        let catalog = CatalogGenerator::default().generate(&SchemaShape::new(vec![4]));
        let e = ToyEngine { catalog };
        assert_eq!(
            e.workload_cost(&Workload::new(), &ToyDesign),
            WorkloadCost::zero()
        );
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_discriminating() {
        use crate::columnar::{ColumnarDesign, Projection};
        use crate::row::{Index, RowDesign, RowStructure};
        use cliffguard_workload::{ColumnId, ColumnSet};

        let p = |cols: &[u32]| {
            Projection::new(
                cliffguard_workload::TableId(0),
                ColumnSet::from_iter(cols.iter().map(|&c| ColumnId(c))),
                vec![],
            )
        };
        let ab = ColumnarDesign::from_structures(vec![p(&[1, 2]), p(&[3, 4])]);
        let ba = ColumnarDesign::from_structures(vec![p(&[3, 4]), p(&[1, 2])]);
        assert_eq!(ab.fingerprint(), ba.fingerprint(), "order must not matter");
        let other = ColumnarDesign::from_structures(vec![p(&[1, 2]), p(&[3, 5])]);
        assert_ne!(ab.fingerprint(), other.fingerprint());
        assert_ne!(ab.fingerprint(), ColumnarDesign::empty().fingerprint());

        // Row designs: an index and nothing-at-all must differ, and the
        // override must be deterministic across construction orders.
        let idx = |c: u32| {
            RowStructure::Index(Index::new(
                cliffguard_workload::TableId(0),
                vec![ColumnId(c)],
            ))
        };
        let r12 = RowDesign::from_structures(vec![idx(1), idx(2)]);
        let r21 = RowDesign::from_structures(vec![idx(2), idx(1)]);
        assert_eq!(r12.fingerprint(), r21.fingerprint());
        assert_ne!(r12.fingerprint(), RowDesign::empty().fingerprint());
    }

    #[test]
    fn trait_default_fingerprint_matches_columnar_override() {
        use crate::columnar::{ColumnarDesign, Projection};
        use cliffguard_workload::{ColumnId, ColumnSet};
        let d = ColumnarDesign::from_structures(vec![Projection::new(
            cliffguard_workload::TableId(0),
            ColumnSet::from_iter([ColumnId(1), ColumnId(2)]),
            vec![ColumnId(1)],
        )]);
        let via_default =
            super::combine_structure_hashes(d.structures().iter().map(super::structure_hash));
        assert_eq!(d.fingerprint(), via_default);
    }

    #[test]
    fn default_design_is_empty() {
        assert!(ToyDesign.is_empty());
        assert_eq!(
            ToyDesign
                .price_bytes(&CatalogGenerator::default().generate(&SchemaShape::new(vec![2]))),
            0
        );
    }
}
