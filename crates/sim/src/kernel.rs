//! The design-epoch cost kernel.
//!
//! CliffGuard's descent re-costs a *fixed* set of workloads (the target
//! plus its Γ-neighborhood samples) against a stream of candidate designs.
//! The memoizing [`CachedEngine`](crate::CachedEngine) already avoids
//! recomputing the cost model, but still pays a full structural query hash
//! plus a sharded-mutex map probe on **every** lookup. The kernel removes
//! both:
//!
//! 1. All workloads are interned once through a
//!    [`WorkloadInterner`], assigning dense [`QueryId`]s and turning each
//!    workload into a frequency vector.
//! 2. Each query is compiled once into an engine [`Plan`]
//!    ([`PlanningEngine::compile_plan`]), hoisting the per-table
//!    decomposition out of the latency computation.
//! 3. Per design, one [`DesignEpoch`] materializes the full latency vector
//!    (`Vec<f64>` indexed by [`QueryId`]) via the chunked parallel map —
//!    after which every cost is an array read and `cost(w, d)` a weighted
//!    dot product.
//!
//! # Delta epochs
//!
//! The descent's candidates differ from the incumbent by ~one structure,
//! so rebuilding the whole latency vector per design re-derives mostly
//! unchanged numbers. On a memo miss with any memoized epoch available,
//! [`epoch`](CostKernel::epoch) instead **delta-builds**: it picks the
//! memoized base whose structure multiset is closest to the target's,
//! clones its latency vector, and re-costs only the queries whose plans
//! depend on a *touched* structure (the symmetric difference), per the
//! engine's [`PlanningEngine::plan_depends_on`] predicate. Because that
//! predicate is a sound over-approximation — `false` guarantees the
//! structure cannot move the plan's latency by a single bit — a delta
//! build is bit-identical to a full rebuild by construction. The explicit
//! [`epoch_from`](CostKernel::epoch_from) exposes the same machinery for
//! tests and benches.
//!
//! # Warm starts
//!
//! With an [`EpochCacheStore`] configured ([`KernelOptions::epoch_cache`]),
//! every built epoch is persisted to disk keyed by
//! `(engine version tag, interner fingerprint, design fingerprint)`, and a
//! cold kernel (no memoized base to delta from) consults the store before
//! paying a full build. Corrupt, truncated, or version-mismatched entries
//! are rejected and overwritten — never trusted.
//!
//! One-off queries that were never interned (none arise in the descent
//! loop, but callers may ask) fall back to a plain [`CostCache`].
//!
//! # Determinism
//!
//! `par_map` returns input-ordered results and the per-workload cost fold
//! visits entries in the source workload's order, so every number the
//! kernel produces is **bit-identical** to direct `Engine` evaluation at
//! any thread count (`PlanningEngine`'s compile/evaluate contract supplies
//! per-query equality; the fold here mirrors `Engine::workload_cost`).
//!
//! Telemetry is metrics-only (`cliffguard.sim.kernel.*`): the kernel never
//! emits trace events, keeping traces byte-identical with and without it.

use crate::cache::{CacheStats, CostCache};
use crate::engine::{PhysicalDesign, PlanningEngine, WorkloadCost};
use crate::epoch_cache::EpochCacheStore;
use cliffguard_workload::{InternedWorkload, Query, QueryId, Workload, WorkloadInterner};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default epochs kept in the kernel's internal memo. The descent loop only
/// ever alternates between the incumbent design and one candidate, so a
/// handful of slots suffices; replica fleets override this via
/// [`KernelOptions::memo_capacity`] (R live epochs + a candidate).
const EPOCH_MEMO_CAPACITY: usize = 4;

/// Build-time knobs for [`CostKernel::build_with`].
#[derive(Debug, Clone)]
pub struct KernelOptions {
    /// Epochs kept in the in-memory memo (clamped to ≥ 1). Replica fleets
    /// should size this `max(4, R + 2)` so every live replica epoch plus a
    /// candidate fits without thrashing.
    pub memo_capacity: usize,
    /// Persistent epoch store for warm starts; `None` disables disk
    /// snapshots entirely.
    pub epoch_cache: Option<EpochCacheStore>,
}

impl Default for KernelOptions {
    fn default() -> Self {
        Self {
            memo_capacity: EPOCH_MEMO_CAPACITY,
            epoch_cache: None,
        }
    }
}

/// The latency vector of one design: `lat[QueryId]` for every interned
/// query, filled once by [`CostKernel::epoch`].
#[derive(Debug)]
pub struct DesignEpoch {
    fingerprint: u64,
    lat: Vec<f64>,
}

impl DesignEpoch {
    /// Builds an epoch from raw parts — a fingerprint and a dense latency
    /// vector indexed by [`QueryId`]. The kernel builds epochs itself via
    /// [`CostKernel::epoch`]; this constructor exists for router tests and
    /// benches that synthesize latency surfaces directly.
    pub fn from_parts(fingerprint: u64, lat: Vec<f64>) -> Self {
        Self { fingerprint, lat }
    }

    /// Fingerprint of the design this epoch was built for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Latency (ms) of one interned query under this epoch's design.
    pub fn latency_ms(&self, id: QueryId) -> f64 {
        self.lat[id.index()]
    }

    /// The full latency vector, indexed by dense [`QueryId`].
    pub fn latencies(&self) -> &[f64] {
        &self.lat
    }

    /// Aggregate cost of an interned workload under this epoch: a
    /// branch-free pass over the workload's flat id/weight slices and this
    /// epoch's flat latency vector — no per-entry hash, no `Option`, no
    /// tuple striding. The fold performs the same operations in the same
    /// entry order as [`Engine::workload_cost`](crate::Engine::workload_cost),
    /// so results are bit-identical to costing the source workload
    /// directly.
    pub fn workload_cost(&self, w: &InternedWorkload) -> WorkloadCost {
        if w.is_empty() {
            return WorkloadCost::zero();
        }
        let lat: &[f64] = &self.lat;
        let ids: &[u32] = w.ids();
        let wts: &[f64] = w.weights();
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        let mut weight = 0.0;
        for (&id, &wt) in ids.iter().zip(wts) {
            let l = lat[id as usize];
            total += l * wt;
            weight += wt;
            max = max.max(l);
        }
        WorkloadCost {
            avg_ms: total / weight,
            max_ms: max,
            total_ms: total,
        }
    }
}

/// Counter snapshot of a [`CostKernel`].
#[derive(Debug, Clone, Copy)]
pub struct KernelStats {
    /// Distinct queries interned.
    pub interned_queries: usize,
    /// Workload entries seen before deduplication.
    pub raw_entries: u64,
    /// `raw_entries / interned_queries`.
    pub dedup_ratio: f64,
    /// Epochs materialized from scratch (full latency-vector fills).
    pub epoch_builds: u64,
    /// Epochs materialized incrementally from a memoized base (only
    /// dependent queries re-costed).
    pub delta_builds: u64,
    /// Queries re-costed across all delta builds (the dependent sets).
    pub recosted_queries: u64,
    /// Epoch requests answered from the memo.
    pub epoch_reuses: u64,
    /// Memo entries displaced by capacity pressure.
    pub epoch_evictions: u64,
    /// Epochs loaded intact from the persistent store.
    pub disk_hits: u64,
    /// Fallback cache counters (un-interned one-off queries).
    pub fallback: CacheStats,
}

/// One memoized epoch plus the structure multiset it was built for — the
/// delta path needs the structures to compute touched sets against new
/// targets.
struct MemoEntry<E: PlanningEngine> {
    epoch: Arc<DesignEpoch>,
    structures: Vec<<E::Design as PhysicalDesign>::Structure>,
}

/// The dense cost kernel: interned queries, compiled plans, and per-design
/// latency epochs over a [`PlanningEngine`].
pub struct CostKernel<'e, E: PlanningEngine> {
    engine: &'e E,
    interner: WorkloadInterner,
    /// Fingerprint of the interned query set (signature-mixed in id
    /// order) — half of the persistent cache key.
    interner_fingerprint: u64,
    plans: Vec<E::Plan>,
    /// One word per plan: the engine's over-approximating table mask,
    /// hoisted to a flat slice so the delta builder's dependency scan
    /// prunes unrelated plans with a single AND instead of chasing into
    /// the (much larger) compiled-plan structs.
    plan_masks: Vec<u64>,
    fallback: CostCache,
    memo: Mutex<Vec<MemoEntry<E>>>,
    memo_capacity: usize,
    cache: Option<EpochCacheStore>,
    epoch_builds: AtomicU64,
    delta_builds: AtomicU64,
    recosted_queries: AtomicU64,
    epoch_reuses: AtomicU64,
    epoch_evictions: AtomicU64,
    disk_hits: AtomicU64,
}

impl<'e, E: PlanningEngine> CostKernel<'e, E> {
    /// Interns `workloads` (preserving each one's entry order) and compiles
    /// every distinct query once. Returns the kernel plus the interned
    /// workloads, aligned with the input slice.
    pub fn build(engine: &'e E, workloads: &[Workload]) -> (Self, Vec<InternedWorkload>) {
        Self::build_with(engine, workloads, KernelOptions::default())
    }

    /// [`build`](Self::build) with explicit [`KernelOptions`] (memo
    /// capacity, persistent epoch cache).
    pub fn build_with(
        engine: &'e E,
        workloads: &[Workload],
        options: KernelOptions,
    ) -> (Self, Vec<InternedWorkload>) {
        let mut interner = WorkloadInterner::new();
        let interned: Vec<InternedWorkload> =
            workloads.iter().map(|w| interner.intern(w)).collect();
        let plans: Vec<E::Plan> = interner
            .queries()
            .iter()
            .map(|q| engine.compile_plan(q))
            .collect();
        let interner_fingerprint = interner_fingerprint(&interner);
        let memo_capacity = options.memo_capacity.max(1);
        let plan_masks: Vec<u64> = plans.iter().map(|p| engine.plan_tables_mask(p)).collect();
        let kernel = Self {
            engine,
            interner,
            interner_fingerprint,
            plans,
            plan_masks,
            fallback: CostCache::default(),
            memo: Mutex::new(Vec::with_capacity(memo_capacity)),
            memo_capacity,
            cache: options.epoch_cache,
            epoch_builds: AtomicU64::new(0),
            delta_builds: AtomicU64::new(0),
            recosted_queries: AtomicU64::new(0),
            epoch_reuses: AtomicU64::new(0),
            epoch_evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        };
        (kernel, interned)
    }

    /// The engine this kernel evaluates against.
    pub fn engine(&self) -> &'e E {
        self.engine
    }

    /// The interner (for id lookups and dedup statistics).
    pub fn interner(&self) -> &WorkloadInterner {
        &self.interner
    }

    /// Fingerprint of the interned query set — with the engine's version
    /// tag and a design fingerprint, the persistent cache key.
    pub fn interner_fingerprint(&self) -> u64 {
        self.interner_fingerprint
    }

    /// The latency epoch for `d`, cheapest source first:
    ///
    /// 1. **memo** — fingerprint hit returns the shared epoch;
    /// 2. **delta** — any memoized base: clone its vector, re-cost only
    ///    the queries depending on a touched structure;
    /// 3. **disk** — a cold kernel consults the persistent store;
    /// 4. **full** — fill the whole vector through the parallel map.
    ///
    /// All four sources yield bit-identical vectors (delta by the
    /// dependency-predicate contract, disk by checksum-verified bits from
    /// an identical earlier build), so callers never observe which one
    /// answered.
    pub fn epoch(&self, d: &E::Design) -> Arc<DesignEpoch> {
        let fingerprint = d.fingerprint();
        let base = {
            let mut memo = self.memo.lock();
            if let Some(i) = memo
                .iter()
                .position(|e| e.epoch.fingerprint == fingerprint)
            {
                let hit = memo.remove(i);
                let epoch = Arc::clone(&hit.epoch);
                memo.push(hit); // most-recently-used last
                self.epoch_reuses.fetch_add(1, Ordering::Relaxed);
                return epoch;
            }
            self.pick_delta_base(&memo, d)
        };
        // Build outside the lock: epoch fills are the kernel's one heavy
        // step and must not serialize against memo probes. The descent
        // loop is sequential at this level, so duplicate concurrent fills
        // do not arise in practice (and would be harmless — pure).
        let structures = d.structures();
        let epoch = match base {
            Some((base_epoch, base_structures)) => Arc::new(self.delta_epoch(
                fingerprint,
                d,
                &base_epoch,
                &base_structures,
                &structures,
            )),
            None => match self.load_from_disk(fingerprint) {
                Some(epoch) => epoch,
                None => Arc::new(self.build_epoch(fingerprint, d)),
            },
        };
        self.insert_memo(Arc::clone(&epoch), structures);
        epoch
    }

    /// Delta-builds the epoch for `d` from `base`'s epoch explicitly: the
    /// touched set is the symmetric difference of the two structure
    /// multisets, and only queries whose plans depend on a touched
    /// structure are re-costed. Bit-identical to [`epoch`](Self::epoch)
    /// on `d` by the [`PlanningEngine::plan_depends_on`] contract; the
    /// result is memoized like any other epoch.
    pub fn epoch_from(&self, base: &E::Design, d: &E::Design) -> Arc<DesignEpoch> {
        let base_epoch = self.epoch(base);
        let structures = d.structures();
        let epoch = Arc::new(self.delta_epoch(
            d.fingerprint(),
            d,
            &base_epoch,
            &base.structures(),
            &structures,
        ));
        self.insert_memo(Arc::clone(&epoch), structures);
        epoch
    }

    /// The memoized base closest to `d` (smallest touched set), cloned out
    /// of the lock. Ties break to the earliest (least recently used)
    /// entry — deterministic because memo order is.
    #[allow(clippy::type_complexity)]
    fn pick_delta_base(
        &self,
        memo: &[MemoEntry<E>],
        d: &E::Design,
    ) -> Option<(
        Arc<DesignEpoch>,
        Vec<<E::Design as PhysicalDesign>::Structure>,
    )> {
        let target = d.structures();
        let mut best: Option<(usize, usize)> = None; // (touched count, index)
        for (i, entry) in memo.iter().enumerate() {
            let touched = symmetric_difference::<E>(&entry.structures, &target).len();
            let better = match best {
                None => true,
                Some((b, _)) => touched < b,
            };
            if better {
                best = Some((touched, i));
            }
        }
        best.map(|(_, i)| (Arc::clone(&memo[i].epoch), memo[i].structures.clone()))
    }

    /// Memoizes an epoch, evicting the least recently used entry under
    /// capacity pressure.
    fn insert_memo(
        &self,
        epoch: Arc<DesignEpoch>,
        structures: Vec<<E::Design as PhysicalDesign>::Structure>,
    ) {
        let mut memo = self.memo.lock();
        if memo
            .iter()
            .any(|e| e.epoch.fingerprint == epoch.fingerprint)
        {
            return;
        }
        if memo.len() >= self.memo_capacity {
            memo.remove(0); // least-recently-used first
            self.epoch_evictions.fetch_add(1, Ordering::Relaxed);
        }
        memo.push(MemoEntry { epoch, structures });
    }

    /// Consults the persistent store; `None` on miss or any rejected
    /// (corrupt / mismatched) entry.
    fn load_from_disk(&self, fingerprint: u64) -> Option<Arc<DesignEpoch>> {
        let cache = self.cache.as_ref()?;
        let lat = cache.load(
            self.engine.engine_version_tag(),
            self.interner_fingerprint,
            fingerprint,
            self.plans.len(),
        )?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::new(DesignEpoch { fingerprint, lat }))
    }

    /// Persists a freshly built vector (best effort — I/O errors only cost
    /// the next cold start a rebuild).
    fn store_to_disk(&self, fingerprint: u64, lat: &[f64]) {
        if let Some(cache) = &self.cache {
            cache.store(
                self.engine.engine_version_tag(),
                self.interner_fingerprint,
                fingerprint,
                lat,
            );
        }
    }

    fn build_epoch(&self, fingerprint: u64, d: &E::Design) -> DesignEpoch {
        let t0 = cliffguard_telemetry::metrics_enabled().then(std::time::Instant::now);
        let lat = cliffguard_parallel::par_map(&self.plans, |p| self.engine.plan_latency_ms(p, d));
        self.epoch_builds.fetch_add(1, Ordering::Relaxed);
        if let Some(t0) = t0 {
            if let Some(h) = cliffguard_telemetry::histogram("cliffguard.sim.kernel.build_ms") {
                h.record(cliffguard_telemetry::elapsed_ms(t0));
            }
        }
        self.store_to_disk(fingerprint, &lat);
        DesignEpoch { fingerprint, lat }
    }

    /// Clones the base vector and re-costs only the queries whose plans
    /// depend on a touched structure. `par_map` over the ascending
    /// dependent-index list keeps results input-ordered, so the spliced
    /// vector is identical at any thread count.
    fn delta_epoch(
        &self,
        fingerprint: u64,
        d: &E::Design,
        base_epoch: &DesignEpoch,
        base_structures: &[<E::Design as PhysicalDesign>::Structure],
        target_structures: &[<E::Design as PhysicalDesign>::Structure],
    ) -> DesignEpoch {
        let t0 = cliffguard_telemetry::metrics_enabled().then(std::time::Instant::now);
        let touched = symmetric_difference::<E>(base_structures, target_structures);
        let mut lat = base_epoch.lat.clone();
        let dependent: Vec<usize> = if touched.is_empty() {
            Vec::new()
        } else {
            // Flat mask prefilter first: one AND per plan rules out every
            // plan on unrelated tables before the per-structure predicate
            // walks the compiled plan. Both layers over-approximate, so
            // the surviving set is exactly the predicate's.
            let touched_mask = touched
                .iter()
                .fold(0u64, |m, s| m | self.engine.structure_tables_mask(s));
            (0..self.plans.len())
                .filter(|&i| {
                    self.plan_masks[i] & touched_mask != 0
                        && touched
                            .iter()
                            .any(|s| self.engine.plan_depends_on(&self.plans[i], s))
                })
                .collect()
        };
        let recosted =
            cliffguard_parallel::par_map(&dependent, |&i| self.engine.plan_latency_ms(&self.plans[i], d));
        for (&i, v) in dependent.iter().zip(recosted) {
            lat[i] = v;
        }
        self.delta_builds.fetch_add(1, Ordering::Relaxed);
        self.recosted_queries
            .fetch_add(dependent.len() as u64, Ordering::Relaxed);
        if let Some(t0) = t0 {
            if let Some(ct) = cliffguard_telemetry::counter("cliffguard.sim.kernel.delta_builds") {
                ct.incr(1);
            }
            if let Some(ct) =
                cliffguard_telemetry::counter("cliffguard.sim.kernel.recosted_queries")
            {
                ct.incr(dependent.len() as u64);
            }
            if let Some(h) =
                cliffguard_telemetry::histogram("cliffguard.sim.kernel.delta_build_ms")
            {
                h.record(cliffguard_telemetry::elapsed_ms(t0));
            }
        }
        self.store_to_disk(fingerprint, &lat);
        DesignEpoch { fingerprint, lat }
    }

    /// Aggregate cost of an interned workload under an epoch. Same fold,
    /// in the same entry order, as [`Engine::workload_cost`] — results are
    /// bit-identical to costing the source workload directly. Delegates to
    /// the flat-slice fold on [`DesignEpoch::workload_cost`].
    pub fn workload_cost(&self, w: &InternedWorkload, epoch: &DesignEpoch) -> WorkloadCost {
        epoch.workload_cost(w)
    }

    /// Latency of one query under the epoch's design: a dense array read
    /// for interned queries, the fallback [`CostCache`] (keyed like
    /// [`CachedEngine`](crate::CachedEngine)) for one-off queries the
    /// kernel has never seen.
    pub fn query_latency_ms(&self, q: &Query, d: &E::Design, epoch: &DesignEpoch) -> f64 {
        match self.interner.id_of(q) {
            Some(id) => epoch.latency_ms(id),
            None => self
                .fallback
                .get_or_insert_with(q.signature(), epoch.fingerprint, || {
                    self.engine.query_latency_ms(q, d)
                }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            interned_queries: self.interner.len(),
            raw_entries: self.interner.raw_entries(),
            dedup_ratio: self.interner.dedup_ratio(),
            epoch_builds: self.epoch_builds.load(Ordering::Relaxed),
            delta_builds: self.delta_builds.load(Ordering::Relaxed),
            recosted_queries: self.recosted_queries.load(Ordering::Relaxed),
            epoch_reuses: self.epoch_reuses.load(Ordering::Relaxed),
            epoch_evictions: self.epoch_evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            fallback: self.fallback.stats(),
        }
    }

    /// Publishes interner and delta-path gauges
    /// (`cliffguard.sim.kernel.interned_queries`, `dedup_ratio`,
    /// `delta_fraction`) into the installed telemetry registry; the
    /// `delta_builds` / `recosted_queries` counters increment live at each
    /// delta build. Metrics only — the kernel never writes trace events. A
    /// no-op when metrics are off.
    pub fn publish_metrics(&self) {
        if !cliffguard_telemetry::metrics_enabled() {
            return;
        }
        let stats = self.stats();
        let constructions = stats.epoch_builds + stats.delta_builds;
        let delta_fraction = if constructions == 0 {
            0.0
        } else {
            stats.delta_builds as f64 / constructions as f64
        };
        for (name, v) in [
            (
                "cliffguard.sim.kernel.interned_queries",
                stats.interned_queries as f64,
            ),
            ("cliffguard.sim.kernel.dedup_ratio", stats.dedup_ratio),
            ("cliffguard.sim.kernel.delta_fraction", delta_fraction),
        ] {
            if let Some(g) = cliffguard_telemetry::gauge(name) {
                g.set(v);
            }
        }
    }
}

/// Fingerprint of an interner's query set: per-query structural signatures
/// mixed in dense-id order, count folded in last — the same splitmix
/// scheme as the design fingerprint, so collision behavior matches.
fn interner_fingerprint(interner: &WorkloadInterner) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for q in interner.queries() {
        acc = crate::engine::splitmix64(acc ^ q.signature().0);
    }
    crate::engine::splitmix64(acc ^ interner.len() as u64)
}

/// The structures whose multiset count differs between `a` and `b` — the
/// touched set of a delta build. First-occurrence order over `a` then `b`
/// (deterministic, though the dependency filter is an order-insensitive
/// `any` regardless).
///
/// Quadratic equality scans instead of a hash map: designs hold at most a
/// few dozen structures, and structure `Eq` (a couple of word compares) is
/// far cheaper than hashing every column id on the delta hot path.
fn symmetric_difference<E: PlanningEngine>(
    a: &[<E::Design as PhysicalDesign>::Structure],
    b: &[<E::Design as PhysicalDesign>::Structure],
) -> Vec<<E::Design as PhysicalDesign>::Structure> {
    let count = |xs: &[<E::Design as PhysicalDesign>::Structure],
                 s: &<E::Design as PhysicalDesign>::Structure| {
        xs.iter().filter(|x| *x == s).count()
    };
    let mut touched: Vec<<E::Design as PhysicalDesign>::Structure> = Vec::new();
    for s in a.iter().chain(b) {
        if count(a, s) != count(b, s) && !touched.contains(s) {
            touched.push(s.clone());
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{ColumnarDesign, ColumnarEngine, Projection};
    use crate::engine::Engine;
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{ColumnSet, PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 4_000_000,
        }])
    }

    fn design(cols: &[u32], sort: &[u32]) -> ColumnarDesign {
        ColumnarDesign::from_structures(vec![Projection::new(
            TableId(0),
            ColumnSet::from_ids(cols),
            sort.iter()
                .map(|&c| cliffguard_workload::ColumnId(c))
                .collect(),
        )])
    }

    fn workloads() -> Vec<Workload> {
        let q = |sel: u32, f: f64| {
            QueryBuilder::new(TableId(0))
                .select(&[sel])
                .filter((sel + 1) % 8, PredOp::Eq, f)
                .build()
        };
        vec![
            Workload::from_queries([(q(1, 0.01), 3.0), (q(2, 0.05), 1.0)]),
            Workload::from_queries([(q(2, 0.05), 2.0), (q(3, 0.2), 5.0)]),
            Workload::from_queries([(q(1, 0.01), 1.0)]),
        ]
    }

    #[test]
    fn kernel_costs_match_direct_engine_bitwise() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, interned) = CostKernel::build(&engine, &ws);
        for d in [
            design(&[1, 2], &[2]),
            design(&[1, 2, 3, 4], &[3]),
            ColumnarDesign::empty(),
        ] {
            let epoch = kernel.epoch(&d);
            for (w, iw) in ws.iter().zip(&interned) {
                let direct = engine.workload_cost(w, &d);
                let dense = kernel.workload_cost(iw, &epoch);
                assert_eq!(direct.total_ms.to_bits(), dense.total_ms.to_bits());
                assert_eq!(direct.avg_ms.to_bits(), dense.avg_ms.to_bits());
                assert_eq!(direct.max_ms.to_bits(), dense.max_ms.to_bits());
            }
        }
    }

    #[test]
    fn epoch_memo_reuses_designs() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let d = design(&[1, 2], &[1]);
        let a = kernel.epoch(&d);
        let b = kernel.epoch(&d);
        assert!(Arc::ptr_eq(&a, &b), "same design must reuse its epoch");
        let s = kernel.stats();
        assert_eq!(s.epoch_builds, 1);
        assert_eq!(s.epoch_reuses, 1);
        // A structurally equal design built in a different order also hits.
        let d2 = design(&[1, 2], &[1]);
        let c = kernel.epoch(&d2);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn memo_evicts_least_recently_used() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let designs: Vec<ColumnarDesign> = (0..=EPOCH_MEMO_CAPACITY as u32)
            .map(|i| design(&[1, 2 + i % 5], &[]))
            .collect();
        for d in &designs {
            let _ = kernel.epoch(d);
        }
        let s = kernel.stats();
        assert!(s.epoch_evictions >= 1, "cycling past capacity must evict");
        // First design was evicted; asking again reconstructs it (via the
        // delta path, since the memo holds usable bases).
        let before = s.epoch_builds + s.delta_builds;
        let _ = kernel.epoch(&designs[0]);
        let after = kernel.stats();
        assert_eq!(after.epoch_builds + after.delta_builds, before + 1);
        assert!(after.delta_builds >= 1, "rebuild should take the delta path");
    }

    #[test]
    fn custom_memo_capacity_avoids_eviction() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build_with(
            &engine,
            &ws,
            KernelOptions {
                memo_capacity: EPOCH_MEMO_CAPACITY + 4,
                ..KernelOptions::default()
            },
        );
        let designs: Vec<ColumnarDesign> = (0..=EPOCH_MEMO_CAPACITY as u32)
            .map(|i| design(&[1, 2 + i % 5], &[]))
            .collect();
        for d in &designs {
            let _ = kernel.epoch(d);
        }
        // Everything still fits: re-asking the first design is a memo hit.
        let constructions = {
            let s = kernel.stats();
            s.epoch_builds + s.delta_builds
        };
        let _ = kernel.epoch(&designs[0]);
        let s = kernel.stats();
        assert_eq!(s.epoch_builds + s.delta_builds, constructions);
        assert_eq!(s.epoch_evictions, 0);
        assert!(s.epoch_reuses >= 1);
    }

    #[test]
    fn delta_epoch_matches_full_build_bitwise() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let base = ColumnarDesign::from_structures(vec![
            Projection::new(TableId(0), ColumnSet::from_ids(&[1, 2]), vec![]),
            Projection::new(TableId(0), ColumnSet::from_ids(&[3, 4]), vec![]),
        ]);
        let target = ColumnarDesign::from_structures(vec![
            Projection::new(TableId(0), ColumnSet::from_ids(&[1, 2]), vec![]),
            Projection::new(TableId(0), ColumnSet::from_ids(&[2, 3]), vec![]),
        ]);
        // Delta path.
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let delta = kernel.epoch_from(&base, &target);
        assert!(kernel.stats().delta_builds >= 1);
        // Full reference on a fresh kernel (cold memo → full build).
        let (fresh, _) = CostKernel::build(&engine, &ws);
        let full = fresh.epoch(&target);
        assert_eq!(delta.fingerprint(), full.fingerprint());
        for (a, b) in delta.latencies().iter().zip(full.latencies()) {
            assert_eq!(a.to_bits(), b.to_bits(), "delta epoch diverged from full");
        }
        // The touched set was one projection swap, so the delta re-costed
        // at most everything, typically less.
        assert!(kernel.stats().recosted_queries <= kernel.interner().len() as u64);
    }

    #[test]
    fn uninterned_query_uses_fallback_cache() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let d = design(&[1, 2], &[1]);
        let epoch = kernel.epoch(&d);
        let stranger = QueryBuilder::new(TableId(0))
            .select(&[6, 7])
            .filter(5, PredOp::Range, 0.4)
            .build();
        let direct = engine.query_latency_ms(&stranger, &d);
        let via_kernel = kernel.query_latency_ms(&stranger, &d, &epoch);
        assert_eq!(direct.to_bits(), via_kernel.to_bits());
        let _ = kernel.query_latency_ms(&stranger, &d, &epoch);
        let fb = kernel.stats().fallback;
        assert_eq!(fb.misses, 1);
        assert_eq!(fb.hits, 1);
        // Interned queries never touch the fallback.
        let (q0, _) = ws[0].iter().next().unwrap();
        let _ = kernel.query_latency_ms(q0, &d, &epoch);
        assert_eq!(kernel.stats().fallback.lookups(), 2);
    }

    #[test]
    fn dedup_ratio_reflects_sharing() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let s = kernel.stats();
        assert_eq!(s.interned_queries, 3, "three distinct queries");
        assert_eq!(s.raw_entries, 5, "five entries across the workloads");
        assert!((s.dedup_ratio - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interner_fingerprint_tracks_query_set() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (a, _) = CostKernel::build(&engine, &ws);
        let (b, _) = CostKernel::build(&engine, &ws);
        assert_eq!(
            a.interner_fingerprint(),
            b.interner_fingerprint(),
            "same workloads → same fingerprint"
        );
        let (c, _) = CostKernel::build(&engine, &ws[..1]);
        assert_ne!(a.interner_fingerprint(), c.interner_fingerprint());
    }
}
