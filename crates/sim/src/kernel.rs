//! The design-epoch cost kernel.
//!
//! CliffGuard's descent re-costs a *fixed* set of workloads (the target
//! plus its Γ-neighborhood samples) against a stream of candidate designs.
//! The memoizing [`CachedEngine`](crate::CachedEngine) already avoids
//! recomputing the cost model, but still pays a full structural query hash
//! plus a sharded-mutex map probe on **every** lookup. The kernel removes
//! both:
//!
//! 1. All workloads are interned once through a
//!    [`WorkloadInterner`], assigning dense [`QueryId`]s and turning each
//!    workload into a frequency vector.
//! 2. Each query is compiled once into an engine [`Plan`]
//!    ([`PlanningEngine::compile_plan`]), hoisting the per-table
//!    decomposition out of the latency computation.
//! 3. Per design, one [`DesignEpoch`] materializes the full latency vector
//!    (`Vec<f64>` indexed by [`QueryId`]) via the chunked parallel map —
//!    after which every cost is an array read and `cost(w, d)` a weighted
//!    dot product.
//!
//! One-off queries that were never interned (none arise in the descent
//! loop, but callers may ask) fall back to a plain [`CostCache`].
//!
//! # Determinism
//!
//! `par_map` returns input-ordered results and the per-workload cost fold
//! visits entries in the source workload's order, so every number the
//! kernel produces is **bit-identical** to direct `Engine` evaluation at
//! any thread count (`PlanningEngine`'s compile/evaluate contract supplies
//! per-query equality; the fold here mirrors `Engine::workload_cost`).
//!
//! Telemetry is metrics-only (`cliffguard.sim.kernel.*`): the kernel never
//! emits trace events, keeping traces byte-identical with and without it.

use crate::cache::{CacheStats, CostCache};
use crate::engine::{PhysicalDesign, PlanningEngine, WorkloadCost};
use cliffguard_workload::{InternedWorkload, Query, QueryId, Workload, WorkloadInterner};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Epochs kept in the kernel's internal memo. The descent loop only ever
/// alternates between the incumbent design and one candidate, so a handful
/// of slots suffices.
const EPOCH_MEMO_CAPACITY: usize = 4;

/// The latency vector of one design: `lat[QueryId]` for every interned
/// query, filled once by [`CostKernel::epoch`].
#[derive(Debug)]
pub struct DesignEpoch {
    fingerprint: u64,
    lat: Vec<f64>,
}

impl DesignEpoch {
    /// Builds an epoch from raw parts — a fingerprint and a dense latency
    /// vector indexed by [`QueryId`]. The kernel builds epochs itself via
    /// [`CostKernel::epoch`]; this constructor exists for router tests and
    /// benches that synthesize latency surfaces directly.
    pub fn from_parts(fingerprint: u64, lat: Vec<f64>) -> Self {
        Self { fingerprint, lat }
    }

    /// Fingerprint of the design this epoch was built for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Latency (ms) of one interned query under this epoch's design.
    pub fn latency_ms(&self, id: QueryId) -> f64 {
        self.lat[id.index()]
    }

    /// The full latency vector, indexed by dense [`QueryId`].
    pub fn latencies(&self) -> &[f64] {
        &self.lat
    }
}

/// Counter snapshot of a [`CostKernel`].
#[derive(Debug, Clone, Copy)]
pub struct KernelStats {
    /// Distinct queries interned.
    pub interned_queries: usize,
    /// Workload entries seen before deduplication.
    pub raw_entries: u64,
    /// `raw_entries / interned_queries`.
    pub dedup_ratio: f64,
    /// Epochs materialized (full latency-vector fills).
    pub epoch_builds: u64,
    /// Epoch requests answered from the memo.
    pub epoch_reuses: u64,
    /// Fallback cache counters (un-interned one-off queries).
    pub fallback: CacheStats,
}

/// The dense cost kernel: interned queries, compiled plans, and per-design
/// latency epochs over a [`PlanningEngine`].
pub struct CostKernel<'e, E: PlanningEngine> {
    engine: &'e E,
    interner: WorkloadInterner,
    plans: Vec<E::Plan>,
    fallback: CostCache,
    memo: Mutex<Vec<Arc<DesignEpoch>>>,
    epoch_builds: AtomicU64,
    epoch_reuses: AtomicU64,
}

impl<'e, E: PlanningEngine> CostKernel<'e, E> {
    /// Interns `workloads` (preserving each one's entry order) and compiles
    /// every distinct query once. Returns the kernel plus the interned
    /// workloads, aligned with the input slice.
    pub fn build(engine: &'e E, workloads: &[Workload]) -> (Self, Vec<InternedWorkload>) {
        let mut interner = WorkloadInterner::new();
        let interned: Vec<InternedWorkload> =
            workloads.iter().map(|w| interner.intern(w)).collect();
        let plans: Vec<E::Plan> = interner
            .queries()
            .iter()
            .map(|q| engine.compile_plan(q))
            .collect();
        let kernel = Self {
            engine,
            interner,
            plans,
            fallback: CostCache::default(),
            memo: Mutex::new(Vec::with_capacity(EPOCH_MEMO_CAPACITY)),
            epoch_builds: AtomicU64::new(0),
            epoch_reuses: AtomicU64::new(0),
        };
        (kernel, interned)
    }

    /// The engine this kernel evaluates against.
    pub fn engine(&self) -> &'e E {
        self.engine
    }

    /// The interner (for id lookups and dedup statistics).
    pub fn interner(&self) -> &WorkloadInterner {
        &self.interner
    }

    /// The latency epoch for `d`: memoized by design fingerprint, built by
    /// filling the full latency vector through the chunked parallel map on
    /// a miss. Results are input-ordered, so the vector — and everything
    /// derived from it — is identical at any thread count.
    pub fn epoch(&self, d: &E::Design) -> Arc<DesignEpoch> {
        let fingerprint = d.fingerprint();
        {
            let mut memo = self.memo.lock();
            if let Some(i) = memo.iter().position(|e| e.fingerprint == fingerprint) {
                let hit = memo.remove(i);
                memo.push(Arc::clone(&hit)); // most-recently-used last
                self.epoch_reuses.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        // Build outside the lock: epoch fills are the kernel's one heavy
        // step and must not serialize against memo probes. The descent
        // loop is sequential at this level, so duplicate concurrent fills
        // do not arise in practice (and would be harmless — pure).
        let epoch = Arc::new(self.build_epoch(fingerprint, d));
        let mut memo = self.memo.lock();
        if memo.len() >= EPOCH_MEMO_CAPACITY {
            memo.remove(0); // least-recently-used first
        }
        memo.push(Arc::clone(&epoch));
        epoch
    }

    fn build_epoch(&self, fingerprint: u64, d: &E::Design) -> DesignEpoch {
        let t0 = std::time::Instant::now();
        let lat = cliffguard_parallel::par_map(&self.plans, |p| self.engine.plan_latency_ms(p, d));
        self.epoch_builds.fetch_add(1, Ordering::Relaxed);
        if cliffguard_telemetry::metrics_enabled() {
            if let Some(h) = cliffguard_telemetry::histogram("cliffguard.sim.kernel.build_ms") {
                h.record(cliffguard_telemetry::elapsed_ms(t0));
            }
        }
        DesignEpoch { fingerprint, lat }
    }

    /// Aggregate cost of an interned workload under an epoch. Same fold,
    /// in the same entry order, as [`Engine::workload_cost`] — results are
    /// bit-identical to costing the source workload directly.
    pub fn workload_cost(&self, w: &InternedWorkload, epoch: &DesignEpoch) -> WorkloadCost {
        if w.is_empty() {
            return WorkloadCost::zero();
        }
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        let mut weight = 0.0;
        for &(id, wt) in w.entries() {
            let l = epoch.latency_ms(id);
            total += l * wt;
            weight += wt;
            max = max.max(l);
        }
        WorkloadCost {
            avg_ms: total / weight,
            max_ms: max,
            total_ms: total,
        }
    }

    /// Latency of one query under the epoch's design: a dense array read
    /// for interned queries, the fallback [`CostCache`] (keyed like
    /// [`CachedEngine`](crate::CachedEngine)) for one-off queries the
    /// kernel has never seen.
    pub fn query_latency_ms(&self, q: &Query, d: &E::Design, epoch: &DesignEpoch) -> f64 {
        match self.interner.id_of(q) {
            Some(id) => epoch.latency_ms(id),
            None => self
                .fallback
                .get_or_insert_with(q.signature(), epoch.fingerprint, || {
                    self.engine.query_latency_ms(q, d)
                }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            interned_queries: self.interner.len(),
            raw_entries: self.interner.raw_entries(),
            dedup_ratio: self.interner.dedup_ratio(),
            epoch_builds: self.epoch_builds.load(Ordering::Relaxed),
            epoch_reuses: self.epoch_reuses.load(Ordering::Relaxed),
            fallback: self.fallback.stats(),
        }
    }

    /// Publishes interner gauges (`cliffguard.sim.kernel.interned_queries`,
    /// `cliffguard.sim.kernel.dedup_ratio`) into the installed telemetry
    /// registry. Metrics only — the kernel never writes trace events. A
    /// no-op when metrics are off.
    pub fn publish_metrics(&self) {
        if !cliffguard_telemetry::metrics_enabled() {
            return;
        }
        let stats = self.stats();
        for (name, v) in [
            (
                "cliffguard.sim.kernel.interned_queries",
                stats.interned_queries as f64,
            ),
            ("cliffguard.sim.kernel.dedup_ratio", stats.dedup_ratio),
        ] {
            if let Some(g) = cliffguard_telemetry::gauge(name) {
                g.set(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{ColumnarDesign, ColumnarEngine, Projection};
    use crate::engine::Engine;
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{ColumnSet, PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..8)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 4_000_000,
        }])
    }

    fn design(cols: &[u32], sort: &[u32]) -> ColumnarDesign {
        ColumnarDesign::from_structures(vec![Projection::new(
            TableId(0),
            ColumnSet::from_ids(cols),
            sort.iter()
                .map(|&c| cliffguard_workload::ColumnId(c))
                .collect(),
        )])
    }

    fn workloads() -> Vec<Workload> {
        let q = |sel: u32, f: f64| {
            QueryBuilder::new(TableId(0))
                .select(&[sel])
                .filter((sel + 1) % 8, PredOp::Eq, f)
                .build()
        };
        vec![
            Workload::from_queries([(q(1, 0.01), 3.0), (q(2, 0.05), 1.0)]),
            Workload::from_queries([(q(2, 0.05), 2.0), (q(3, 0.2), 5.0)]),
            Workload::from_queries([(q(1, 0.01), 1.0)]),
        ]
    }

    #[test]
    fn kernel_costs_match_direct_engine_bitwise() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, interned) = CostKernel::build(&engine, &ws);
        for d in [
            design(&[1, 2], &[2]),
            design(&[1, 2, 3, 4], &[3]),
            ColumnarDesign::empty(),
        ] {
            let epoch = kernel.epoch(&d);
            for (w, iw) in ws.iter().zip(&interned) {
                let direct = engine.workload_cost(w, &d);
                let dense = kernel.workload_cost(iw, &epoch);
                assert_eq!(direct.total_ms.to_bits(), dense.total_ms.to_bits());
                assert_eq!(direct.avg_ms.to_bits(), dense.avg_ms.to_bits());
                assert_eq!(direct.max_ms.to_bits(), dense.max_ms.to_bits());
            }
        }
    }

    #[test]
    fn epoch_memo_reuses_designs() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let d = design(&[1, 2], &[1]);
        let a = kernel.epoch(&d);
        let b = kernel.epoch(&d);
        assert!(Arc::ptr_eq(&a, &b), "same design must reuse its epoch");
        let s = kernel.stats();
        assert_eq!(s.epoch_builds, 1);
        assert_eq!(s.epoch_reuses, 1);
        // A structurally equal design built in a different order also hits.
        let d2 = design(&[1, 2], &[1]);
        let c = kernel.epoch(&d2);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn memo_evicts_least_recently_used() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let designs: Vec<ColumnarDesign> = (0..=EPOCH_MEMO_CAPACITY as u32)
            .map(|i| design(&[1, 2 + i % 5], &[]))
            .collect();
        for d in &designs {
            let _ = kernel.epoch(d);
        }
        // First design was evicted; asking again rebuilds.
        let builds_before = kernel.stats().epoch_builds;
        let _ = kernel.epoch(&designs[0]);
        assert_eq!(kernel.stats().epoch_builds, builds_before + 1);
    }

    #[test]
    fn uninterned_query_uses_fallback_cache() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let d = design(&[1, 2], &[1]);
        let epoch = kernel.epoch(&d);
        let stranger = QueryBuilder::new(TableId(0))
            .select(&[6, 7])
            .filter(5, PredOp::Range, 0.4)
            .build();
        let direct = engine.query_latency_ms(&stranger, &d);
        let via_kernel = kernel.query_latency_ms(&stranger, &d, &epoch);
        assert_eq!(direct.to_bits(), via_kernel.to_bits());
        let _ = kernel.query_latency_ms(&stranger, &d, &epoch);
        let fb = kernel.stats().fallback;
        assert_eq!(fb.misses, 1);
        assert_eq!(fb.hits, 1);
        // Interned queries never touch the fallback.
        let (q0, _) = ws[0].iter().next().unwrap();
        let _ = kernel.query_latency_ms(q0, &d, &epoch);
        assert_eq!(kernel.stats().fallback.lookups(), 2);
    }

    #[test]
    fn dedup_ratio_reflects_sharing() {
        let engine = ColumnarEngine::new(catalog());
        let ws = workloads();
        let (kernel, _) = CostKernel::build(&engine, &ws);
        let s = kernel.stats();
        assert_eq!(s.interned_queries, 3, "three distinct queries");
        assert_eq!(s.raw_entries, 5, "five entries across the workloads");
        assert!((s.dedup_ratio - 5.0 / 3.0).abs() < 1e-12);
    }
}
