//! Persistent epoch snapshots for warm starts.
//!
//! An [`EpochCacheStore`] keeps per-design latency vectors on disk so that
//! repeated runs — a re-issued CLI design, a drift-triggered online
//! redesign, a restarted serve daemon — start from the previous run's
//! epochs instead of a cold full rebuild. Entries are keyed by the triple
//!
//! ```text
//! (engine version tag, interner fingerprint, design fingerprint)
//! ```
//!
//! so a snapshot is only ever served back to the *exact* cost model,
//! query set, and design that produced it; any component changing (a cost
//! arithmetic bump, a different neighborhood, another design) simply
//! misses. Latencies are stored as IEEE-754 **bit patterns** (`u64`), so a
//! loaded epoch is bit-identical to the one that was stored — no float
//! formatting round-trip.
//!
//! # Durability and trust
//!
//! Writes go through the tmp-file → `write_all` → `sync_all` → `rename`
//! idiom (plus a best-effort parent-directory sync), so a crash mid-store
//! leaves either the old entry or the new one, never a torn file. Reads
//! **never trust** the snapshot: version, engine tag, both fingerprints,
//! the vector length, and a splitmix checksum over the latency bits are
//! all verified, and any mismatch — truncation, a flipped bit, a stale
//! engine — rejects the entry (the kernel then rebuilds and overwrites
//! it). A cache directory can be deleted at any time; it only costs the
//! next run a cold start.

use serde::{map_get, Deserialize, Value};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Snapshot format version; bump on any layout change.
const FORMAT_VERSION: u64 = 1;

/// An on-disk store of design-epoch latency vectors.
#[derive(Debug, Clone)]
pub struct EpochCacheStore {
    root: PathBuf,
}

impl EpochCacheStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The snapshot path for one key triple.
    fn entry_path(&self, tag: &str, interner_fp: u64, design_fp: u64) -> PathBuf {
        // The tag is a short static identifier ("columnar-v1"); sanitize
        // anyway so a hostile tag cannot escape the root.
        let safe: String = tag
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
            .collect();
        self.root
            .join(format!("epoch-{safe}-{interner_fp:016x}-{design_fp:016x}.json"))
    }

    /// Loads a snapshot, returning the latency vector only if every
    /// integrity check passes: parseable JSON, format version, engine tag,
    /// both fingerprints, `expected_len`, and the checksum over the
    /// latency bits. Any failure returns `None` (the caller rebuilds and
    /// overwrites).
    pub fn load(
        &self,
        tag: &str,
        interner_fp: u64,
        design_fp: u64,
        expected_len: usize,
    ) -> Option<Vec<f64>> {
        let path = self.entry_path(tag, interner_fp, design_fp);
        let text = fs::read_to_string(path).ok()?;
        let value: Value = serde_json::from_str(&text).ok()?;
        let map = value.as_map()?;
        if u64::from_value(map_get(map, "version")).ok()? != FORMAT_VERSION {
            return None;
        }
        if String::from_value(map_get(map, "engine")).ok()? != tag {
            return None;
        }
        if u64::from_value(map_get(map, "interner")).ok()? != interner_fp {
            return None;
        }
        if u64::from_value(map_get(map, "design")).ok()? != design_fp {
            return None;
        }
        let checksum = u64::from_value(map_get(map, "checksum")).ok()?;
        let bits = Vec::<u64>::from_value(map_get(map, "lat_bits")).ok()?;
        if bits.len() != expected_len || latency_checksum(&bits) != checksum {
            return None;
        }
        Some(bits.into_iter().map(f64::from_bits).collect())
    }

    /// Persists one snapshot atomically. Best effort: I/O failures are
    /// swallowed (a missing snapshot only costs the next cold start a
    /// rebuild), surfacing nothing to the costing hot path.
    pub fn store(&self, tag: &str, interner_fp: u64, design_fp: u64, lat: &[f64]) {
        let path = self.entry_path(tag, interner_fp, design_fp);
        let _ = write_atomic(&path, &render_snapshot(tag, interner_fp, design_fp, lat));
    }
}

/// Renders a snapshot as single-line JSON with a fixed key order and
/// latencies as `u64` bit patterns.
fn render_snapshot(tag: &str, interner_fp: u64, design_fp: u64, lat: &[f64]) -> String {
    let bits: Vec<u64> = lat.iter().map(|l| l.to_bits()).collect();
    let mut out = String::with_capacity(64 + bits.len() * 21);
    out.push_str("{\"version\":");
    out.push_str(&FORMAT_VERSION.to_string());
    out.push_str(",\"engine\":\"");
    // Tags are static ASCII identifiers; escape defensively anyway.
    for c in tag.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    out.push_str("\",\"interner\":");
    out.push_str(&interner_fp.to_string());
    out.push_str(",\"design\":");
    out.push_str(&design_fp.to_string());
    out.push_str(",\"checksum\":");
    out.push_str(&latency_checksum(&bits).to_string());
    out.push_str(",\"lat_bits\":[");
    for (i, b) in bits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
    out.push_str("]}");
    out
}

/// Order-sensitive splitmix fold over the latency bit patterns: any
/// flipped bit, dropped element, or reorder changes the checksum.
fn latency_checksum(bits: &[u64]) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for &b in bits {
        acc = crate::engine::splitmix64(acc ^ b);
    }
    crate::engine::splitmix64(acc ^ bits.len() as u64)
}

/// Atomic file replace: tmp file (unique per process, so concurrent
/// writers of the same — deterministic, hence identical — entry cannot
/// interleave), fsync, rename over the target, best-effort directory
/// sync. The same durability idiom as the serve layer's checkpoint store.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    let mut file = fs::File::create(&tmp)?;
    file.write_all(contents.as_bytes())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(label: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "cliffguard-epoch-cache-{label}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    const LAT: [f64; 4] = [1.5, 0.25, 3.75e-3, 1.0e9];

    #[test]
    fn roundtrip_preserves_bits() {
        let scratch = Scratch::new("roundtrip");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        store.store("columnar-v1", 11, 22, &LAT);
        let loaded = store.load("columnar-v1", 11, 22, LAT.len()).unwrap();
        for (a, b) in loaded.iter().zip(&LAT) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mismatched_keys_miss() {
        let scratch = Scratch::new("keys");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        store.store("columnar-v1", 11, 22, &LAT);
        assert!(store.load("columnar-v2", 11, 22, LAT.len()).is_none());
        assert!(store.load("columnar-v1", 12, 22, LAT.len()).is_none());
        assert!(store.load("columnar-v1", 11, 23, LAT.len()).is_none());
        assert!(store.load("columnar-v1", 11, 22, LAT.len() + 1).is_none());
    }

    #[test]
    fn wrong_engine_tag_in_file_is_rejected() {
        let scratch = Scratch::new("tag");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        // A file stored under one tag but renamed to another tag's key
        // (or written by a buggy producer) must fail the embedded-tag
        // check even though the path matches.
        store.store("columnar-v1", 11, 22, &LAT);
        let from = store.entry_path("columnar-v1", 11, 22);
        let to = store.entry_path("columnar-v9", 11, 22);
        fs::rename(from, to).unwrap();
        assert!(store.load("columnar-v9", 11, 22, LAT.len()).is_none());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let scratch = Scratch::new("trunc");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        store.store("columnar-v1", 11, 22, &LAT);
        let path = store.entry_path("columnar-v1", 11, 22);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.load("columnar-v1", 11, 22, LAT.len()).is_none());
    }

    #[test]
    fn bit_flipped_latency_is_rejected_by_checksum() {
        let scratch = Scratch::new("flip");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        store.store("columnar-v1", 11, 22, &LAT);
        let path = store.entry_path("columnar-v1", 11, 22);
        let text = fs::read_to_string(&path).unwrap();
        // Flip one bit of the first latency by rewriting its decimal bits.
        let original = LAT[0].to_bits();
        let flipped = original ^ 1;
        let poisoned = text.replace(&original.to_string(), &flipped.to_string());
        assert_ne!(poisoned, text, "fixture must actually flip a latency");
        fs::write(&path, poisoned).unwrap();
        assert!(store.load("columnar-v1", 11, 22, LAT.len()).is_none());
    }

    #[test]
    fn store_overwrites_poisoned_entries() {
        let scratch = Scratch::new("overwrite");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        store.store("columnar-v1", 11, 22, &LAT);
        let path = store.entry_path("columnar-v1", 11, 22);
        fs::write(&path, "not json at all").unwrap();
        assert!(store.load("columnar-v1", 11, 22, LAT.len()).is_none());
        store.store("columnar-v1", 11, 22, &LAT);
        assert!(store.load("columnar-v1", 11, 22, LAT.len()).is_some());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let scratch = Scratch::new("version");
        let store = EpochCacheStore::open(&scratch.0).unwrap();
        store.store("columnar-v1", 11, 22, &LAT);
        let path = store.entry_path("columnar-v1", 11, 22);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"version\":1", "\"version\":999")).unwrap();
        assert!(store.load("columnar-v1", 11, 22, LAT.len()).is_none());
    }
}
