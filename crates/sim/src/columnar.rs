//! The columnar (Vertica-like) engine: sorted projections.
//!
//! Vertica "build[s] a number of column projections, each sorted
//! differently. Instead of traditional indices, Vertica chooses a
//! projection with the appropriate sort order (depending on the columns in
//! the query) in order to locate relevant tuples quickly" (Section 2). The
//! cost model here captures the three effects that matter:
//!
//! 1. **Coverage**: a projection can answer a query's accesses to its table
//!    only if it contains *all* referenced columns; otherwise the
//!    super-projection (all columns, unsorted) must be scanned.
//! 2. **Sort-prefix pruning**: predicates on a prefix of the sort order cut
//!    the scanned fraction multiplicatively (equality keeps matching deeper
//!    prefix columns; the first range/IN/LIKE match ends the prefix).
//! 3. **Compression**: sorted columns run-length encode; the leading sort
//!    column compresses by the full RLE ratio, deeper sort columns by a
//!    damped ratio, unsorted columns by a modest generic factor.

use crate::engine::{Engine, PhysicalDesign, PlanningEngine};
use cliffguard_storage::{Catalog, CostConstants};
use cliffguard_workload::{ColumnId, ColumnSet, PredOp, Predicate, Query, TableId};
use serde::{Deserialize, Serialize};

/// Generic compression achieved on unsorted columns (dictionary + LZ;
/// columnar stores commonly reach 3-10x on warehouse data — Vertica's own
/// papers report ~90% space reduction on customer data).
const GENERIC_COMPRESSION: f64 = 6.0;
/// Damping of the RLE benefit for non-leading sort columns.
const DEEP_SORT_COMPRESSION: f64 = 16.0;
/// Minimum rows any scan touches (block granularity).
const MIN_SCAN_ROWS: f64 = 1024.0;

/// A sorted column projection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Projection {
    /// Anchor table.
    pub table: TableId,
    /// Stored columns (must contain every sort column).
    pub columns: ColumnSet,
    /// Sort order, most-significant first.
    pub sort_order: Vec<ColumnId>,
}

impl Projection {
    /// Creates a projection; panics if a sort column is not stored.
    pub fn new(table: TableId, columns: ColumnSet, sort_order: Vec<ColumnId>) -> Self {
        assert!(
            sort_order.iter().all(|c| columns.contains(*c)),
            "sort columns must be stored in the projection"
        );
        Self {
            table,
            columns,
            sort_order,
        }
    }

    /// Whether this projection covers all of `referenced`.
    pub fn covers(&self, referenced: &ColumnSet) -> bool {
        referenced.is_subset(&self.columns)
    }

    /// Compression factor of one stored column inside this projection.
    fn compression(&self, c: ColumnId, catalog: &Catalog) -> f64 {
        let rows = catalog.table(self.table).rows;
        match self.sort_order.iter().position(|&s| s == c) {
            Some(0) => catalog.column(c).stats.rle_ratio(rows),
            Some(_) => DEEP_SORT_COMPRESSION,
            None => GENERIC_COMPRESSION,
        }
    }

    /// Stored size in bytes.
    pub fn size_bytes(&self, catalog: &Catalog) -> u64 {
        let rows = catalog.table(self.table).rows as f64;
        self.columns
            .iter()
            .map(|c| rows * catalog.column(c).width_bytes as f64 / self.compression(c, catalog))
            .sum::<f64>() as u64
    }
}

/// A set of projections (the columnar physical design).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnarDesign {
    /// The projections.
    pub projections: Vec<Projection>,
}

impl ColumnarDesign {
    /// The empty design (`NoDesign`: only super-projections exist).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a projection if not already present.
    pub fn add(&mut self, p: Projection) {
        if !self.projections.contains(&p) {
            self.projections.push(p);
        }
    }
}

impl PhysicalDesign for ColumnarDesign {
    type Structure = Projection;

    fn structures(&self) -> Vec<Projection> {
        self.projections.clone()
    }

    fn from_structures(structures: Vec<Projection>) -> Self {
        let mut d = Self::default();
        for p in structures {
            d.add(p);
        }
        d
    }

    fn structure_price(s: &Projection, catalog: &Catalog) -> u64 {
        s.size_bytes(catalog)
    }

    fn fingerprint(&self) -> u64 {
        // Same combination as the trait default, minus the structures()
        // clone: projections hash in place.
        crate::engine::combine_structure_hashes(
            self.projections.iter().map(crate::engine::structure_hash),
        )
    }
}

/// One table slice of a compiled plan: the columns and predicates that land
/// on this table, plus the prebuilt super-projection it falls back to.
#[derive(Debug, Clone)]
struct PlannedTable {
    table: TableId,
    referenced: ColumnSet,
    preds: Vec<Predicate>,
    super_proj: Projection,
}

/// A compiled columnar plan.
///
/// Everything `query_latency_ms` derives from the [`Query`] — the per-table
/// column/predicate decomposition and the super-projection fallbacks — is
/// hoisted here once, so repeated costing of the same query against many
/// designs (the design-epoch kernel's fill loop) does no per-call
/// allocation or catalog lookups.
#[derive(Debug, Clone)]
pub struct ColumnarPlan {
    tables: Vec<PlannedTable>,
    aggregates: bool,
    group_by: ColumnSet,
    order_by: Vec<ColumnId>,
    predicates: Vec<Predicate>,
}

/// One table access in an explain plan.
#[derive(Debug, Clone)]
pub struct TableAccess {
    /// The accessed table.
    pub table: TableId,
    /// Chosen projection (`None` = the super-projection).
    pub projection: Option<Projection>,
    /// Estimated access latency (ms), excluding joins/post-processing.
    pub est_ms: f64,
}

/// Explain output of the columnar optimizer for one query.
#[derive(Debug, Clone)]
pub struct ColumnarExplain {
    /// Per-table access choices.
    pub accesses: Vec<TableAccess>,
    /// Total estimated latency (ms) including joins and post-processing.
    pub total_ms: f64,
}

/// The columnar engine.
#[derive(Debug, Clone)]
pub struct ColumnarEngine {
    catalog: Catalog,
    cost: CostConstants,
}

impl ColumnarEngine {
    /// Creates the engine over a catalog with default cost constants.
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            cost: CostConstants::default(),
        }
    }

    /// Creates the engine with explicit cost constants.
    pub fn with_cost(catalog: Catalog, cost: CostConstants) -> Self {
        Self { catalog, cost }
    }

    /// The cost constants in use.
    pub fn cost_constants(&self) -> &CostConstants {
        &self.cost
    }

    /// Splits a query's referenced columns and predicates by table, and
    /// builds each table's super-projection fallback.
    fn per_table(&self, q: &Query) -> Vec<PlannedTable> {
        let mut tables = vec![q.anchor];
        for &t in &q.joins {
            if !tables.contains(&t) {
                tables.push(t);
            }
        }
        tables
            .into_iter()
            .map(|t| {
                let referenced: ColumnSet = q
                    .all_columns()
                    .iter()
                    .filter(|&c| self.catalog.table_of(c) == t)
                    .collect();
                let preds: Vec<Predicate> = q
                    .predicates
                    .iter()
                    .filter(|p| self.catalog.table_of(p.column) == t)
                    .copied()
                    .collect();
                // Super-projection: every column, unsorted — full scan of
                // the referenced columns at generic compression, no pruning.
                let super_proj = Projection {
                    table: t,
                    columns: self.catalog.columns_of(t).collect(),
                    sort_order: Vec::new(),
                };
                PlannedTable {
                    table: t,
                    referenced,
                    preds,
                    super_proj,
                }
            })
            .collect()
    }

    /// Scan fraction implied by matching `preds` against a sort order, and
    /// the number of leading sort columns consumed by equality predicates.
    fn prefix_match(sort_order: &[ColumnId], preds: &[Predicate]) -> (f64, usize) {
        let mut frac = 1.0;
        let mut eq_depth = 0;
        for &c in sort_order {
            // best (most selective) predicate available on this column
            let best = preds
                .iter()
                .filter(|p| p.column == c)
                .min_by(|a, b| a.selectivity.total_cmp(&b.selectivity));
            match best {
                Some(p) if p.op == PredOp::Eq => {
                    frac *= p.selectivity;
                    eq_depth += 1;
                }
                Some(p) => {
                    // range/IN/LIKE: prunes, but ends the usable prefix
                    frac *= p.selectivity;
                    break;
                }
                None => break,
            }
        }
        (frac, eq_depth)
    }

    /// Cost of accessing one table through one projection. Returns the
    /// latency and the number of rows surviving the table's filters.
    fn projection_access_ms(
        &self,
        p: &Projection,
        referenced: &ColumnSet,
        preds: &[Predicate],
    ) -> (f64, f64) {
        let rows = self.catalog.table(p.table).rows as f64;
        let (frac, _) = Self::prefix_match(&p.sort_order, preds);
        let scanned = (rows * frac).max(MIN_SCAN_ROWS.min(rows));
        let bytes: f64 = referenced
            .iter()
            .map(|c| {
                scanned * self.catalog.column(c).width_bytes as f64
                    / p.compression(c, &self.catalog)
            })
            .sum();
        let io = self.cost.seq_read_ms(bytes);
        let cpu = self
            .cost
            .cpu_ms(scanned * (1.0 + 0.15 * preds.len() as f64));
        let survived = rows
            * preds
                .iter()
                .map(|p| p.selectivity)
                .product::<f64>()
                .clamp(1e-12, 1.0);
        (io + cpu, survived.max(1.0))
    }

    /// Best (cheapest) access for one table: the covering projections of
    /// the design compete with the super-projection. The chosen projection
    /// is borrowed from the design (`None` = super-projection).
    fn table_access_ms<'d>(
        &self,
        d: &'d ColumnarDesign,
        pt: &PlannedTable,
    ) -> (f64, f64, Option<&'d Projection>) {
        let (mut best_ms, mut survived) =
            self.projection_access_ms(&pt.super_proj, &pt.referenced, &pt.preds);
        let mut chosen = None;
        for p in &d.projections {
            if p.table == pt.table && p.covers(&pt.referenced) {
                let (ms, surv) = self.projection_access_ms(p, &pt.referenced, &pt.preds);
                if ms < best_ms {
                    best_ms = ms;
                    survived = surv;
                    chosen = Some(p);
                }
            }
        }
        // Which projection serves the anchor's sort/agg matters:
        (best_ms, survived, chosen)
    }

    /// The projection the optimizer would pick for the query's anchor table
    /// (None = super-projection). Exposed for tests and explain output.
    pub fn chosen_projection(&self, q: &Query, d: &ColumnarDesign) -> Option<Projection> {
        let plan = self.compile_plan(q);
        self.table_access_ms(d, &plan.tables[0]).2.cloned()
    }

    /// Explains the optimizer's choices for a query under a design: per
    /// touched table, the chosen projection (`None` = super-projection)
    /// and the estimated access latency.
    pub fn explain(&self, q: &Query, d: &ColumnarDesign) -> ColumnarExplain {
        let plan = self.compile_plan(q);
        let mut accesses = Vec::new();
        for pt in &plan.tables {
            let (ms, _, chosen) = self.table_access_ms(d, pt);
            accesses.push(TableAccess {
                table: pt.table,
                projection: chosen.cloned(),
                est_ms: ms,
            });
        }
        ColumnarExplain {
            total_ms: self.plan_latency_ms(&plan, d),
            accesses,
        }
    }

    /// Aggregation + ordering cost on the anchor's surviving rows.
    fn post_processing_ms(
        &self,
        plan: &ColumnarPlan,
        survived: f64,
        chosen: Option<&Projection>,
    ) -> f64 {
        let mut ms = 0.0;
        let mut out_rows = survived;
        if plan.aggregates && !plan.group_by.is_empty() {
            // Expected group count: capped product of group-column NDVs.
            let mut groups = 1.0f64;
            for c in plan.group_by.iter() {
                groups = (groups * self.catalog.column(c).stats.ndv as f64).min(survived);
            }
            // Streaming aggregation if the group-by columns sit in the
            // projection's sort prefix (after the equality-matched columns).
            let streaming = chosen.is_some_and(|p| {
                let (_, eq_depth) = Self::prefix_match(&p.sort_order, &plan.predicates);
                plan.group_by.iter().all(|g| {
                    p.sort_order
                        .iter()
                        .take(eq_depth + plan.group_by.len())
                        .any(|&s| s == g)
                })
            });
            ms += if streaming {
                self.cost.cpu_ms(survived * 0.3)
            } else {
                self.cost.cpu_ms(survived * 1.2)
            };
            out_rows = groups;
        } else if plan.aggregates {
            // Scalar aggregate: single pass, one output row.
            ms += self.cost.cpu_ms(survived * 0.3);
            out_rows = 1.0;
        }
        if !plan.order_by.is_empty() {
            // Free if the chosen projection is already sorted that way and
            // no aggregation re-shuffled the rows.
            let presorted = !plan.aggregates
                && chosen.is_some_and(|p| {
                    plan.order_by.len() <= p.sort_order.len()
                        && plan.order_by.iter().zip(&p.sort_order).all(|(a, b)| a == b)
                });
            if !presorted {
                ms += self.cost.sort_ms(out_rows);
            }
        }
        ms
    }
}

impl Engine for ColumnarEngine {
    type Design = ColumnarDesign;

    fn query_latency_ms(&self, q: &Query, d: &ColumnarDesign) -> f64 {
        // The direct path compiles and evaluates in one shot; the kernel
        // compiles once and re-evaluates the plan across many designs.
        // Both run the exact same arithmetic, so costs are bit-identical.
        self.plan_latency_ms(&self.compile_plan(q), d)
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn deployment_ms(&self, d: &ColumnarDesign) -> f64 {
        d.projections
            .iter()
            .map(|p| {
                let bytes = p.size_bytes(&self.catalog) as f64;
                let rows = self.catalog.table(p.table).rows as f64;
                self.cost.build_ms(bytes) + self.cost.sort_ms(rows)
            })
            .sum()
    }
}

impl PlanningEngine for ColumnarEngine {
    type Plan = ColumnarPlan;

    fn compile_plan(&self, q: &Query) -> ColumnarPlan {
        ColumnarPlan {
            tables: self.per_table(q),
            aggregates: q.aggregates,
            group_by: q.group_by.clone(),
            order_by: q.order_by.clone(),
            predicates: q.predicates.clone(),
        }
    }

    fn plan_latency_ms(&self, plan: &ColumnarPlan, d: &ColumnarDesign) -> f64 {
        let mut total = self.cost.fixed_overhead_ms;
        let mut anchor_survived = 0.0;
        let mut anchor_chosen = None;
        for (i, pt) in plan.tables.iter().enumerate() {
            if pt.referenced.is_empty() && i > 0 {
                continue;
            }
            let (ms, survived, chosen) = self.table_access_ms(d, pt);
            total += ms;
            if i == 0 {
                anchor_survived = survived;
                anchor_chosen = chosen;
            } else {
                // Hash join: build on the smaller side, probe with the other.
                total += self.cost.cpu_ms(survived + anchor_survived * 0.5);
            }
        }
        total += self.post_processing_ms(plan, anchor_survived, anchor_chosen);
        total
    }

    fn plan_depends_on(&self, plan: &ColumnarPlan, p: &Projection) -> bool {
        // A projection competes in `table_access_ms` only for same-table
        // slices it covers; post-processing reads nothing but the anchor's
        // chosen projection, which that same competition determines. Tables
        // the evaluation skips (`referenced.is_empty() && i > 0`) have
        // `covers(∅) == true`, so this stays a sound over-approximation.
        plan.tables
            .iter()
            .any(|pt| pt.table == p.table && p.covers(&pt.referenced))
    }

    fn engine_version_tag(&self) -> &'static str {
        "columnar-v1"
    }

    fn plan_tables_mask(&self, plan: &ColumnarPlan) -> u64 {
        plan.tables
            .iter()
            .fold(0, |m, pt| m | crate::engine::table_mask_bit(pt.table))
    }

    fn structure_tables_mask(&self, p: &Projection) -> u64 {
        // `plan_depends_on` matches same-table slices only.
        crate::engine::table_mask_bit(p.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_storage::{ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::QueryBuilder;

    /// One 10M-row table: c0 id (ndv=rows), c1 region (ndv=100),
    /// c2 amount (ndv=1e6), c3 day (ndv=365), c4 note (wide).
    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000_000),
                },
                ColumnDef {
                    name: "region".into(),
                    width_bytes: 4,
                    stats: ColumnStats::uniform(100),
                },
                ColumnDef {
                    name: "amount".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(1_000_000),
                },
                ColumnDef {
                    name: "day".into(),
                    width_bytes: 4,
                    stats: ColumnStats::uniform(365),
                },
                ColumnDef {
                    name: "note".into(),
                    width_bytes: 48,
                    stats: ColumnStats::uniform(1_000_000),
                },
            ],
            rows: 10_000_000,
        }])
    }

    fn engine() -> ColumnarEngine {
        ColumnarEngine::new(catalog())
    }

    fn filter_query() -> Query {
        QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Eq, 0.01)
            .build()
    }

    fn proj(cols: &[u32], sort: &[u32]) -> Projection {
        Projection::new(
            TableId(0),
            ColumnSet::from_ids(cols),
            sort.iter().map(|&c| ColumnId(c)).collect(),
        )
    }

    #[test]
    fn covering_sorted_projection_beats_super() {
        let e = engine();
        let q = filter_query();
        let empty = ColumnarDesign::empty();
        let tuned = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[1])]);
        let slow = e.query_latency_ms(&q, &empty);
        let fast = e.query_latency_ms(&q, &tuned);
        assert!(
            fast * 3.0 < slow,
            "expected ≥3x speedup, got {slow:.2} vs {fast:.2}"
        );
        assert_eq!(e.chosen_projection(&q, &tuned), Some(proj(&[1, 2], &[1])));
    }

    #[test]
    fn non_covering_projection_is_useless() {
        // Projection misses the selected column → falls back to super.
        let e = engine();
        let q = filter_query();
        let non_covering = ColumnarDesign::from_structures(vec![proj(&[1, 3], &[1])]);
        let empty = ColumnarDesign::empty();
        assert_eq!(
            e.query_latency_ms(&q, &non_covering),
            e.query_latency_ms(&q, &empty)
        );
        assert_eq!(e.chosen_projection(&q, &non_covering), None);
    }

    #[test]
    fn unsorted_covering_projection_still_helps_via_width() {
        // Covering but unsorted: no pruning, but narrower than super and
        // never worse.
        let e = engine();
        let q = filter_query();
        let unsorted = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[])]);
        let empty = ColumnarDesign::empty();
        assert!(e.query_latency_ms(&q, &unsorted) <= e.query_latency_ms(&q, &empty));
    }

    #[test]
    fn deeper_eq_prefix_prunes_more() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(1, PredOp::Eq, 0.01)
            .filter(3, PredOp::Eq, 0.01)
            .build();
        let one = ColumnarDesign::from_structures(vec![proj(&[1, 2, 3], &[1])]);
        let two = ColumnarDesign::from_structures(vec![proj(&[1, 2, 3], &[1, 3])]);
        assert!(e.query_latency_ms(&q, &two) < e.query_latency_ms(&q, &one));
    }

    #[test]
    fn range_predicate_ends_prefix() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[2])
            .filter(3, PredOp::Range, 0.1)
            .filter(1, PredOp::Eq, 0.01)
            .build();
        // range first in sort order blocks the deeper eq match
        let range_first = ColumnarDesign::from_structures(vec![proj(&[1, 2, 3], &[3, 1])]);
        let eq_first = ColumnarDesign::from_structures(vec![proj(&[1, 2, 3], &[1, 3])]);
        assert!(e.query_latency_ms(&q, &eq_first) < e.query_latency_ms(&q, &range_first));
    }

    #[test]
    fn streaming_aggregation_cheaper_than_hash() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .group_by(&[1])
            .build();
        let sorted_by_group = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[1])]);
        let sorted_other = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[2])]);
        assert!(e.query_latency_ms(&q, &sorted_by_group) < e.query_latency_ms(&q, &sorted_other));
    }

    #[test]
    fn order_by_free_when_presorted() {
        let e = engine();
        let q = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .order_by(&[1])
            .build();
        let presorted = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[1])]);
        let unsorted = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[])]);
        assert!(e.query_latency_ms(&q, &presorted) < e.query_latency_ms(&q, &unsorted));
    }

    #[test]
    fn projection_price_reflects_compression() {
        let cat = catalog();
        // Sorting by the low-cardinality region column RLE-compresses it.
        let sorted = proj(&[1, 2], &[1]);
        let unsorted = proj(&[1, 2], &[]);
        assert!(sorted.size_bytes(&cat) < unsorted.size_bytes(&cat));
        let d = ColumnarDesign::from_structures(vec![sorted.clone()]);
        assert_eq!(d.price_bytes(&cat), sorted.size_bytes(&cat));
    }

    #[test]
    fn deployment_time_grows_with_design() {
        let e = engine();
        let small = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[1])]);
        let big =
            ColumnarDesign::from_structures(vec![proj(&[1, 2], &[1]), proj(&[1, 2, 3, 4], &[3])]);
        assert!(e.deployment_ms(&big) > e.deployment_ms(&small));
        assert_eq!(e.deployment_ms(&ColumnarDesign::empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "sort columns")]
    fn sort_column_must_be_stored() {
        let _ = proj(&[1, 2], &[3]);
    }

    #[test]
    fn explain_reports_chosen_paths() {
        let e = engine();
        let q = filter_query();
        let tuned = ColumnarDesign::from_structures(vec![proj(&[1, 2], &[1])]);
        let plan = e.explain(&q, &tuned);
        assert_eq!(plan.accesses.len(), 1);
        assert_eq!(plan.accesses[0].projection, Some(proj(&[1, 2], &[1])));
        assert!(plan.total_ms >= plan.accesses[0].est_ms);
        // Super-projection fallback is reported as None.
        let bare = e.explain(&q, &ColumnarDesign::empty());
        assert_eq!(bare.accesses[0].projection, None);
        assert!(bare.total_ms > plan.total_ms);
    }

    #[test]
    fn design_dedups_structures() {
        let mut d = ColumnarDesign::empty();
        d.add(proj(&[1, 2], &[1]));
        d.add(proj(&[1, 2], &[1]));
        assert_eq!(d.len(), 1);
    }
}
