//! Catalog, statistics, and cost constants for the CliffGuard simulators.
//!
//! The paper's designers consult the DBMS for metadata: table/column
//! definitions, row counts, data distributions ("we did have access to their
//! data distribution, which we used to generate a 151GB dataset"), and cost
//! constants. This crate is that layer:
//!
//! * [`Catalog`] / [`TableDef`] / [`ColumnDef`] — schema with per-column
//!   width, cardinality (NDV) and skew statistics; implements the workload
//!   crate's [`cliffguard_workload::NameResolver`] so SQL text can be parsed
//!   against it.
//! * [`ColumnStats`] + selectivity estimation for the predicate kinds the
//!   query model knows about.
//! * [`CostConstants`] — the page/IO/CPU constants the engine cost models
//!   share (a deliberately simple, documented analytical model).
//! * [`CatalogGenerator`] — builds a synthetic catalog (with statistics)
//!   over a [`cliffguard_workload::generator::SchemaShape`], standing in
//!   for the proprietary customer dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod datagen;
mod render;
mod schema;
mod stats;

pub use cost::CostConstants;
pub use datagen::CatalogGenerator;
pub use schema::{Catalog, ColumnDef, TableDef};
pub use stats::{ColumnStats, Distribution};
