//! Per-column statistics and selectivity estimation.
//!
//! The simulators never materialize rows; everything downstream (scan
//! fractions, group counts, compression ratios) is derived from these
//! statistics, the same information a real optimizer keeps in its catalog.

use cliffguard_workload::PredOp;
use serde::{Deserialize, Serialize};

/// Value distribution of a column, as the optimizer models it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Values uniformly spread over the NDV domain.
    Uniform,
    /// Zipf-skewed values with the given exponent (> 0); hot values absorb
    /// most rows, making equality predicates on them less selective than
    /// `1/ndv`.
    Zipf(f64),
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Value distribution.
    pub distribution: Distribution,
}

impl ColumnStats {
    /// Uniform stats with the given NDV.
    pub fn uniform(ndv: u64) -> Self {
        Self {
            ndv: ndv.max(1),
            distribution: Distribution::Uniform,
        }
    }

    /// Zipf-skewed stats.
    pub fn zipf(ndv: u64, exponent: f64) -> Self {
        Self {
            ndv: ndv.max(1),
            distribution: Distribution::Zipf(exponent),
        }
    }

    /// Estimated selectivity of a predicate of kind `op` against this
    /// column, for an "average" literal.
    ///
    /// * `Eq` on a uniform column → `1/ndv`; on a skewed column the expected
    ///   matched fraction is the second moment of the value distribution
    ///   (the probability two random rows share a value), which we
    ///   approximate for Zipf(θ) — hot literals are likelier to be queried.
    /// * `Range` → a default 20% span (refined by the caller if the query
    ///   carries an explicit selectivity).
    /// * `In` → `k/ndv` for a nominal list size `k = 5`.
    /// * `Like` → 10% (prefix match heuristic).
    pub fn selectivity(&self, op: PredOp) -> f64 {
        let ndv = self.ndv as f64;
        let eq = match self.distribution {
            Distribution::Uniform => 1.0 / ndv,
            Distribution::Zipf(theta) => {
                // Collision probability of a Zipf(θ) distribution over `ndv`
                // values: sum p_i^2 with p_i ∝ 1/i^θ. Closed-form-free but
                // cheap to approximate with the first few terms + integral
                // tail; we use a small direct sum capped at 1024 terms.
                let n = self.ndv.min(1024);
                let h: f64 = (1..=n).map(|i| (i as f64).powf(-theta)).sum();
                let sq: f64 = (1..=n).map(|i| (i as f64).powf(-2.0 * theta)).sum();
                (sq / (h * h)).clamp(1.0 / ndv, 1.0)
            }
        };
        match op {
            PredOp::Eq => eq.clamp(1e-9, 1.0),
            PredOp::Range => 0.2,
            PredOp::In => (5.0 * eq).clamp(1e-9, 1.0),
            PredOp::Like => 0.1,
        }
    }

    /// Expected number of groups when grouping `rows` rows by this column.
    pub fn group_count(&self, rows: u64) -> u64 {
        self.ndv.min(rows).max(1)
    }

    /// Run-length-encoding compression ratio achieved when this column is
    /// sorted: ~`rows/ndv` values per run means the sorted column stores
    /// `ndv` runs. Clamped to `[1, 64]` — real encoders cap out.
    pub fn rle_ratio(&self, rows: u64) -> f64 {
        if self.ndv == 0 {
            return 1.0;
        }
        (rows as f64 / self.ndv as f64).clamp(1.0, 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_eq_selectivity_is_inverse_ndv() {
        let s = ColumnStats::uniform(100);
        assert!((s.selectivity(PredOp::Eq) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zipf_eq_selectivity_exceeds_uniform() {
        let u = ColumnStats::uniform(1000);
        let z = ColumnStats::zipf(1000, 1.0);
        assert!(z.selectivity(PredOp::Eq) > u.selectivity(PredOp::Eq));
        assert!(z.selectivity(PredOp::Eq) < 1.0);
    }

    #[test]
    fn op_ordering_sane() {
        let s = ColumnStats::uniform(1000);
        assert!(s.selectivity(PredOp::Eq) < s.selectivity(PredOp::In));
        assert!(s.selectivity(PredOp::In) < s.selectivity(PredOp::Range));
    }

    #[test]
    fn group_count_capped_by_rows() {
        let s = ColumnStats::uniform(1_000_000);
        assert_eq!(s.group_count(500), 500);
        assert_eq!(ColumnStats::uniform(10).group_count(500), 10);
    }

    #[test]
    fn rle_ratio_bounds() {
        assert_eq!(ColumnStats::uniform(1).rle_ratio(1_000_000), 64.0);
        assert_eq!(ColumnStats::uniform(1_000_000).rle_ratio(100), 1.0);
        let mid = ColumnStats::uniform(100).rle_ratio(1000);
        assert!((mid - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ndv_zero_guarded() {
        let s = ColumnStats::uniform(0);
        assert_eq!(s.ndv, 1);
        assert_eq!(s.group_count(10), 1);
    }
}
