//! The catalog: tables, columns, and their statistics.

use crate::stats::ColumnStats;
use cliffguard_workload::{ColumnId, NameResolver, PredOp, TableId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Definition of one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within its table).
    pub name: String,
    /// Average stored width in bytes (uncompressed).
    pub width_bytes: u32,
    /// Value statistics.
    pub stats: ColumnStats,
}

/// Definition of one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Columns, in declaration order. Global [`ColumnId`]s are assigned
    /// densely across tables in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Row count.
    pub rows: u64,
}

impl TableDef {
    /// Total row width in bytes (the row-store scan unit).
    pub fn row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.width_bytes as u64).sum()
    }
}

/// The database catalog. Owns all schema and statistics information the
/// simulators and designers need, and resolves SQL names for the parser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableDef>,
    /// Global column id of each table's first column.
    offsets: Vec<u32>,
    #[serde(skip)]
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Builds a catalog from table definitions.
    pub fn new(tables: Vec<TableDef>) -> Self {
        assert!(!tables.is_empty(), "catalog needs at least one table");
        let mut offsets = Vec::with_capacity(tables.len());
        let mut acc = 0u32;
        for t in &tables {
            assert!(!t.columns.is_empty(), "table `{}` has no columns", t.name);
            offsets.push(acc);
            acc += t.columns.len() as u32;
        }
        let by_name = tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.to_ascii_lowercase(), TableId(i as u32)))
            .collect();
        Self {
            tables,
            offsets,
            by_name,
        }
    }

    /// Rebuilds derived lookup state after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.to_ascii_lowercase(), TableId(i as u32)))
            .collect();
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables (the paper's `n`).
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Table definition by id.
    pub fn table(&self, t: TableId) -> &TableDef {
        &self.tables[t.index()]
    }

    /// All table ids.
    pub fn tables(&self) -> impl Iterator<Item = TableId> {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// The table owning a global column id.
    pub fn table_of(&self, c: ColumnId) -> TableId {
        let i = match self.offsets.binary_search(&c.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        TableId(i as u32)
    }

    /// Column definition by global id.
    pub fn column(&self, c: ColumnId) -> &ColumnDef {
        let t = self.table_of(c);
        &self.tables[t.index()].columns[(c.0 - self.offsets[t.index()]) as usize]
    }

    /// Global column ids of a table.
    pub fn columns_of(&self, t: TableId) -> impl Iterator<Item = ColumnId> + '_ {
        let start = self.offsets[t.index()];
        (start..start + self.tables[t.index()].columns.len() as u32).map(ColumnId)
    }

    /// Global id of the `k`-th column of table `t`.
    pub fn column_id(&self, t: TableId, k: usize) -> ColumnId {
        ColumnId(self.offsets[t.index()] + k as u32)
    }

    /// Statistics-backed selectivity estimate for a predicate kind on a
    /// column (overrides the parser's static defaults).
    pub fn estimate_selectivity(&self, c: ColumnId, op: PredOp) -> f64 {
        self.column(c).stats.selectivity(op)
    }
}

impl NameResolver for Catalog {
    fn resolve_table(&self, name: &str) -> Option<TableId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    fn resolve_column(
        &self,
        table_hint: Option<TableId>,
        in_scope: &[TableId],
        name: &str,
    ) -> Option<ColumnId> {
        let find = |t: TableId| {
            self.tables[t.index()]
                .columns
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
                .map(|k| self.column_id(t, k))
        };
        match table_hint {
            Some(t) => find(t),
            None => in_scope.iter().copied().find_map(find),
        }
    }

    fn table_columns(&self, table: TableId) -> Vec<ColumnId> {
        self.columns_of(table).collect()
    }

    fn default_selectivity(&self, column: ColumnId, op: PredOp) -> f64 {
        self.estimate_selectivity(column, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(vec![
            TableDef {
                name: "fact".into(),
                columns: vec![
                    ColumnDef {
                        name: "id".into(),
                        width_bytes: 8,
                        stats: ColumnStats::uniform(1000),
                    },
                    ColumnDef {
                        name: "v".into(),
                        width_bytes: 4,
                        stats: ColumnStats::uniform(10),
                    },
                ],
                rows: 1000,
            },
            TableDef {
                name: "dim".into(),
                columns: vec![ColumnDef {
                    name: "id".into(),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(50),
                }],
                rows: 50,
            },
        ])
    }

    #[test]
    fn dense_global_ids() {
        let c = catalog();
        assert_eq!(c.column_count(), 3);
        assert_eq!(c.column_id(TableId(1), 0), ColumnId(2));
        assert_eq!(c.table_of(ColumnId(2)), TableId(1));
        assert_eq!(c.table_of(ColumnId(1)), TableId(0));
        assert_eq!(c.column(ColumnId(1)).name, "v");
        let cols: Vec<ColumnId> = c.columns_of(TableId(0)).collect();
        assert_eq!(cols, vec![ColumnId(0), ColumnId(1)]);
    }

    #[test]
    fn resolver_impl() {
        let c = catalog();
        assert_eq!(c.resolve_table("FACT"), Some(TableId(0)));
        assert_eq!(
            c.resolve_column(Some(TableId(1)), &[], "id"),
            Some(ColumnId(2))
        );
        // scope search order matters for ambiguous names
        assert_eq!(
            c.resolve_column(None, &[TableId(1), TableId(0)], "id"),
            Some(ColumnId(2))
        );
        assert_eq!(c.table_columns(TableId(0)).len(), 2);
    }

    #[test]
    fn selectivity_from_stats() {
        let c = catalog();
        assert!((c.estimate_selectivity(ColumnId(1), PredOp::Eq) - 0.1).abs() < 1e-12);
        assert!((c.default_selectivity(ColumnId(1), PredOp::Eq) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn row_width_sums_columns() {
        let c = catalog();
        assert_eq!(c.table(TableId(0)).row_width(), 12);
    }

    #[test]
    #[should_panic(expected = "no columns")]
    fn empty_table_rejected() {
        Catalog::new(vec![TableDef {
            name: "x".into(),
            columns: vec![],
            rows: 0,
        }]);
    }
}
