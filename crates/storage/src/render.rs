//! Rendering structural queries back to SQL text.
//!
//! Useful for exporting generated workloads to a real DBMS, for debugging,
//! and for round-trip testing the parser. The rendered text preserves the
//! clause column sets exactly; predicate literals are placeholders (the
//! structural model keeps selectivities, not values).

use crate::schema::Catalog;
use cliffguard_workload::{ColumnId, PredOp, Query, QueryLog};

impl Catalog {
    /// Qualified name of a column (`table.column`).
    pub fn qualified_name(&self, c: ColumnId) -> String {
        let t = self.table_of(c);
        format!("{}.{}", self.table(t).name, self.column(c).name)
    }

    /// Renders a structural [`Query`] as SQL `SELECT` text against this
    /// catalog. Parsing the result with
    /// [`cliffguard_workload::parser::parse_query`] recovers the same
    /// anchor and clause column sets.
    pub fn render_sql(&self, q: &Query) -> String {
        let mut sql = String::from("SELECT ");
        let select: Vec<String> = q.select.iter().map(|c| self.qualified_name(c)).collect();
        if select.is_empty() {
            sql.push('1');
        } else if q.aggregates && !q.group_by.is_empty() {
            // Group-by columns render bare; the rest as aggregates.
            let rendered: Vec<String> = q
                .select
                .iter()
                .map(|c| {
                    if q.group_by.contains(c) {
                        self.qualified_name(c)
                    } else {
                        format!("MAX({})", self.qualified_name(c))
                    }
                })
                .collect();
            sql.push_str(&rendered.join(", "));
        } else {
            sql.push_str(&select.join(", "));
        }
        sql.push_str(&format!(" FROM {}", self.table(q.anchor).name));
        for &j in &q.joins {
            sql.push_str(&format!(" CROSS JOIN {}", self.table(j).name));
        }
        let mut preds: Vec<String> = Vec::new();
        let pred_of = |c: ColumnId| q.predicates.iter().find(|p| p.column == c);
        for c in q.filter.iter() {
            let rendered = match pred_of(c).map(|p| p.op) {
                Some(PredOp::Eq) | None => format!("{} = 1", self.qualified_name(c)),
                Some(PredOp::Range) => format!("{} > 1", self.qualified_name(c)),
                Some(PredOp::In) => format!("{} IN (1, 2)", self.qualified_name(c)),
                Some(PredOp::Like) => format!("{} LIKE 'x%'", self.qualified_name(c)),
            };
            preds.push(rendered);
        }
        if !preds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&preds.join(" AND "));
        }
        if !q.group_by.is_empty() {
            let cols: Vec<String> = q.group_by.iter().map(|c| self.qualified_name(c)).collect();
            sql.push_str(" GROUP BY ");
            sql.push_str(&cols.join(", "));
        }
        if !q.order_by.is_empty() {
            let cols: Vec<String> = q.order_by.iter().map(|&c| self.qualified_name(c)).collect();
            sql.push_str(" ORDER BY ");
            sql.push_str(&cols.join(", "));
        }
        sql
    }
}

impl Catalog {
    /// Exports a [`QueryLog`] in the `epoch_seconds<TAB>SQL` text format
    /// that [`cliffguard_workload::logio::import_log`] reads back.
    pub fn export_log(&self, log: &QueryLog) -> String {
        let mut out = String::new();
        for e in log.entries() {
            out.push_str(&e.timestamp.to_string());
            out.push('\t');
            out.push_str(&self.render_sql(&e.query));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::datagen::CatalogGenerator;
    use cliffguard_workload::generator::SchemaShape;
    use cliffguard_workload::parser::parse_query;
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    #[test]
    fn render_and_reparse_roundtrips_clauses() {
        let cat = CatalogGenerator::default().generate(&SchemaShape::new(vec![6, 4]));
        let q = QueryBuilder::new(TableId(0))
            .select(&[1, 2])
            .filter(3, PredOp::Range, 0.2)
            .filter(4, PredOp::In, 0.05)
            .group_by(&[1])
            .order_by(&[2])
            .join(TableId(1))
            .build();
        let sql = cat.render_sql(&q);
        let parsed = parse_query(&sql, &cat).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(parsed.anchor, q.anchor);
        assert_eq!(parsed.select, q.select);
        assert_eq!(parsed.filter, q.filter);
        assert_eq!(parsed.group_by, q.group_by);
        assert_eq!(parsed.order_by, q.order_by);
        assert_eq!(parsed.joins, q.joins);
        assert!(parsed.aggregates);
    }

    #[test]
    fn log_export_import_roundtrip() {
        use cliffguard_workload::generator::{DriftingGenerator, WorkloadProfile};
        use cliffguard_workload::logio::import_log;
        let shape = SchemaShape::analytic_default();
        let cat = CatalogGenerator::default().generate(&shape);
        let mut config = WorkloadProfile::S1.config(3);
        config.n_windows = 1;
        config.queries_per_window = 40;
        let log = DriftingGenerator::new(config).generate();
        let text = cat.export_log(&log);
        let (back, report) = import_log(&text, &cat);
        assert_eq!(report.parsed, log.len(), "skipped: {report:?}");
        assert_eq!(back.len(), log.len());
        // Clause structure survives the round trip.
        for (a, b) in log.entries().iter().zip(back.entries()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.query.anchor, b.query.anchor);
            assert_eq!(a.query.select, b.query.select);
            assert_eq!(a.query.filter, b.query.filter);
            assert_eq!(a.query.group_by, b.query.group_by);
        }
    }

    #[test]
    fn trivial_query_renders() {
        let cat = CatalogGenerator::default().generate(&SchemaShape::new(vec![2]));
        let q = QueryBuilder::new(TableId(0)).build();
        assert_eq!(cat.render_sql(&q), "SELECT 1 FROM t0");
    }

    #[test]
    fn predicate_kinds_render_distinctly() {
        let cat = CatalogGenerator::default().generate(&SchemaShape::new(vec![5]));
        let q = QueryBuilder::new(TableId(0))
            .select(&[0])
            .filter(1, PredOp::Like, 0.1)
            .build();
        assert!(cat.render_sql(&q).contains("LIKE"));
    }
}
