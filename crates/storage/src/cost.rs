//! Shared cost constants for the engine cost models.
//!
//! The simulators are analytical: a query's latency is computed from bytes
//! read, tuples processed, and sorts performed, using the constants below.
//! Absolute values are loosely calibrated to commodity hardware circa the
//! paper (7.2K RPM disk arrays, ~100 MB/s effective sequential scan rate)
//! but only *ratios* matter for the reproduced experiment shapes.

use serde::{Deserialize, Serialize};

/// The cost constants of the analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// Page size in bytes (unit of I/O granularity).
    pub page_bytes: u64,
    /// Milliseconds to sequentially read one megabyte.
    pub seq_ms_per_mb: f64,
    /// Milliseconds per random page access (index traversals, row fetches).
    pub random_io_ms: f64,
    /// Milliseconds of CPU per million tuples flowing through an operator.
    pub cpu_ms_per_mtuples: f64,
    /// Multiplier on the n·log₂(n) term for sorts, in ms per million rows
    /// per log-level.
    pub sort_ms_per_mtuples_level: f64,
    /// Fixed per-query overhead in milliseconds (parse/plan/dispatch).
    pub fixed_overhead_ms: f64,
    /// Milliseconds per megabyte written when deploying (building) physical
    /// design structures — used by the Figure 14 deployment-time model.
    pub build_ms_per_mb: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        Self {
            page_bytes: 64 * 1024,
            seq_ms_per_mb: 10.0, // ~100 MB/s effective scan
            random_io_ms: 5.0,   // 7.2K RPM seek+rotate
            cpu_ms_per_mtuples: 120.0,
            sort_ms_per_mtuples_level: 35.0,
            fixed_overhead_ms: 2.0,
            build_ms_per_mb: 40.0, // sort + write + catalog work
        }
    }
}

impl CostConstants {
    /// Sequential-read latency for `bytes` bytes.
    pub fn seq_read_ms(&self, bytes: f64) -> f64 {
        self.seq_ms_per_mb * bytes / (1024.0 * 1024.0)
    }

    /// CPU latency for processing `tuples` tuples once.
    pub fn cpu_ms(&self, tuples: f64) -> f64 {
        self.cpu_ms_per_mtuples * tuples / 1.0e6
    }

    /// Latency of sorting `tuples` tuples (`n log n` model).
    pub fn sort_ms(&self, tuples: f64) -> f64 {
        if tuples <= 1.0 {
            return 0.0;
        }
        self.sort_ms_per_mtuples_level * (tuples / 1.0e6) * tuples.log2().max(1.0)
    }

    /// Time to build/deploy `bytes` bytes of physical structures.
    pub fn build_ms(&self, bytes: f64) -> f64 {
        self.build_ms_per_mb * bytes / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_read_scales_linearly() {
        let c = CostConstants::default();
        let one = c.seq_read_ms(1024.0 * 1024.0);
        assert!((c.seq_read_ms(10.0 * 1024.0 * 1024.0) - 10.0 * one).abs() < 1e-9);
        assert!((one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sort_is_superlinear() {
        let c = CostConstants::default();
        let s1 = c.sort_ms(1.0e6);
        let s2 = c.sort_ms(2.0e6);
        assert!(s2 > 2.0 * s1);
        assert_eq!(c.sort_ms(1.0), 0.0);
        assert_eq!(c.sort_ms(0.0), 0.0);
    }

    #[test]
    fn cpu_cost_positive() {
        let c = CostConstants::default();
        assert!(c.cpu_ms(1.0e6) > 0.0);
        assert!(c.build_ms(1024.0 * 1024.0) > 0.0);
    }
}
