//! Synthetic catalog generation.
//!
//! The paper's authors "did not have access to their original dataset but
//! did have access to their data distribution, which we used to generate a
//! 151GB dataset". [`CatalogGenerator`] plays the same role here: given a
//! [`SchemaShape`] (shared with the workload generator so ids line up), it
//! draws per-column widths, cardinalities and skews, and per-table row
//! counts from plausible warehouse distributions, deterministically under a
//! seed.

use crate::schema::{Catalog, ColumnDef, TableDef};
use crate::stats::ColumnStats;
use cliffguard_workload::generator::SchemaShape;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Builds synthetic catalogs over a schema shape.
#[derive(Debug, Clone)]
pub struct CatalogGenerator {
    /// Row count of the largest (first) table.
    pub fact_rows: u64,
    /// Ratio between consecutive tables' row counts as tables get smaller.
    pub size_decay: f64,
    /// Minimum rows for the smallest dimension tables.
    pub min_rows: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CatalogGenerator {
    fn default() -> Self {
        Self {
            // Laptop-scale substitute for the paper's 151 GB dataset: the
            // *relative* costs (covered projection vs super-projection scan)
            // drive every reproduced shape, not the absolute gigabytes.
            fact_rows: 40_000_000,
            size_decay: 0.72,
            min_rows: 10_000,
            seed: 0,
        }
    }
}

impl CatalogGenerator {
    /// Generates the catalog for `shape`. Table `i`'s row count decays
    /// geometrically from `fact_rows`; columns get widths in 4–48 bytes and
    /// NDVs spanning id-like (≈rows) to flag-like (2–100) with occasional
    /// Zipf skew.
    pub fn generate(&self, shape: &SchemaShape) -> Catalog {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut tables = Vec::with_capacity(shape.table_count());
        for t in shape.tables() {
            let rows = ((self.fact_rows as f64) * self.size_decay.powi(t.0 as i32))
                .max(self.min_rows as f64) as u64;
            let n_cols = shape.columns_of(t);
            let mut columns = Vec::with_capacity(n_cols as usize);
            for k in 0..n_cols {
                let width = match rng.random_range(0..10) {
                    0..=3 => 4,  // ints, dates
                    4..=6 => 8,  // bigints, floats
                    7..=8 => 16, // short strings
                    _ => 48,     // long strings
                };
                // First column is id-like; others span flag/category/value.
                let ndv = if k == 0 {
                    rows
                } else {
                    match rng.random_range(0..10) {
                        0..=1 => rng.random_range(2..=20),                    // flags
                        2..=5 => rng.random_range(20..=2_000),                // categories
                        6..=8 => rng.random_range(2_000..=200_000),           // values
                        _ => (rows / rng.random_range(2..=10u64)).max(1_000), // near-keys
                    }
                    .min(rows)
                };
                let stats = if rng.random::<f64>() < 0.35 {
                    ColumnStats::zipf(ndv, 0.6 + rng.random::<f64>())
                } else {
                    ColumnStats::uniform(ndv)
                };
                columns.push(ColumnDef {
                    name: format!("c{k}"),
                    width_bytes: width,
                    stats,
                });
            }
            tables.push(TableDef {
                name: format!("t{}", t.0),
                columns,
                rows,
            });
        }
        Catalog::new(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_workload::{ColumnId, NameResolver, TableId};

    #[test]
    fn catalog_matches_shape() {
        let shape = SchemaShape::new(vec![5, 3, 2]);
        let cat = CatalogGenerator::default().generate(&shape);
        assert_eq!(cat.table_count(), 3);
        assert_eq!(cat.column_count(), 10);
        for t in shape.tables() {
            assert_eq!(cat.columns_of(t).count(), shape.columns_of(t) as usize);
            for c in shape.column_range(t) {
                assert_eq!(cat.table_of(ColumnId(c)), t);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let shape = SchemaShape::analytic_default();
        let a = CatalogGenerator::default().generate(&shape);
        let b = CatalogGenerator::default().generate(&shape);
        for t in shape.tables() {
            assert_eq!(a.table(t).rows, b.table(t).rows);
            assert_eq!(a.table(t).row_width(), b.table(t).row_width());
        }
    }

    #[test]
    fn table_sizes_decay() {
        let shape = SchemaShape::new(vec![4, 4, 4, 4]);
        let cat = CatalogGenerator::default().generate(&shape);
        let rows: Vec<u64> = shape.tables().map(|t| cat.table(t).rows).collect();
        assert!(rows.windows(2).all(|w| w[0] >= w[1]));
        assert!(rows[0] > rows[3]);
    }

    #[test]
    fn names_resolve_through_parser_interface() {
        let shape = SchemaShape::new(vec![3, 2]);
        let cat = CatalogGenerator::default().generate(&shape);
        assert_eq!(cat.resolve_table("t1"), Some(TableId(1)));
        assert_eq!(
            cat.resolve_column(Some(TableId(1)), &[], "c1"),
            Some(ColumnId(4))
        );
    }

    #[test]
    fn ndv_never_exceeds_rows() {
        let shape = SchemaShape::analytic_default();
        let cat = CatalogGenerator::default().generate(&shape);
        for t in cat.tables() {
            let rows = cat.table(t).rows;
            for c in cat.columns_of(t) {
                assert!(cat.column(c).stats.ndv <= rows.max(1));
            }
        }
    }
}
