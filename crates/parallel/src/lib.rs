//! Deterministic data parallelism for CliffGuard's hot loops.
//!
//! The robust-design search spends almost all of its time in three
//! embarrassingly parallel maps: costing every workload of the
//! Γ-neighborhood, costing every candidate structure of the benefit
//! matrix, and costing every query of an evaluation window. This crate
//! provides the one primitive they share — [`par_map`] — built on
//! `std::thread::scope`, plus a process-wide thread-count knob
//! ([`set_threads`] / [`current_threads`], seeded from the
//! `CLIFFGUARD_THREADS` environment variable).
//!
//! # Determinism contract
//!
//! [`par_map`] applies a pure function to every element of a slice and
//! returns the results **in input order**, regardless of the thread
//! count. Callers then reduce serially over that ordered `Vec`, so every
//! floating-point reduction happens in exactly the order the serial code
//! would have used: results are **bit-identical** at 1, 2, or 64 threads.
//! (This is why the crate exposes an ordered map rather than a parallel
//! fold — re-associating f64 additions across threads would change
//! low-order bits with the thread count.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cliffguard_telemetry as telemetry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide thread count. 0 = not yet resolved (lazily read from the
/// environment on first use).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on the thread count, to keep a typo like
/// `CLIFFGUARD_THREADS=10000` from spawning 10 000 OS threads.
const MAX_THREADS: usize = 256;

/// Sets the process-wide worker thread count (clamped to `1..=256`).
///
/// `1` disables parallelism entirely: [`par_map`] then runs inline on the
/// calling thread. This is what `--threads` on the CLI and bench
/// harnesses call.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// The current worker thread count.
///
/// Resolution order: the last [`set_threads`] call, else the
/// `CLIFFGUARD_THREADS` environment variable, else
/// `std::thread::available_parallelism()`.
pub fn current_threads() -> usize {
    let n = THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = threads_from_env()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    let resolved = resolved.clamp(1, MAX_THREADS);
    // Another thread may have resolved concurrently; first write wins so
    // the answer is stable for the rest of the process.
    match THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => resolved,
        Err(existing) => existing,
    }
}

fn threads_from_env() -> Option<usize> {
    std::env::var("CLIFFGUARD_THREADS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// Fewer items per worker than this and the spawn + join overhead costs
/// more than the map itself; [`par_map`] caps the thread count so every
/// chunk holds at least this many items.
const MIN_CHUNK: usize = 8;

/// Maps `f` over `items`, returning results in input order.
///
/// The slice is split into at most [`current_threads`] contiguous chunks,
/// each mapped on its own scoped thread, and the per-chunk results are
/// stitched back together in chunk order — so the output is exactly
/// `items.iter().map(f).collect()` for any thread count. With one thread
/// (or one item) no thread is spawned at all, and small inputs use fewer
/// threads so each chunk amortizes its spawn cost over at least a
/// handful of items.
///
/// Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = current_threads().min(items.len().div_ceil(MIN_CHUNK));
    if threads <= 1 {
        if telemetry::metrics_enabled() {
            if let Some(c) = telemetry::counter("cliffguard.parallel.inline_calls") {
                c.incr(1);
            }
        }
        return items.iter().map(f).collect();
    }
    // Telemetry is metrics-only here: per-chunk wall times and thread
    // utilization, recorded from worker threads into lock-free handles.
    // No trace *events* are ever emitted from workers — trace byte-
    // identity across thread counts holds because only serial control
    // code writes to the subscriber.
    let profile = telemetry::metrics_enabled().then(|| {
        (
            telemetry::histogram("cliffguard.parallel.chunk_ms"),
            Instant::now(),
        )
    });
    let busy_us = AtomicU64::new(0);
    let chunk = items.len().div_ceil(threads);
    let out = std::thread::scope(|scope| {
        let f = &f;
        let busy = &busy_us;
        let chunk_hist = profile.as_ref().and_then(|(h, _)| h.clone());
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let chunk_hist = chunk_hist.clone();
                scope.spawn(move || {
                    let t0 = chunk_hist.as_ref().map(|_| Instant::now());
                    let part = c.iter().map(f).collect::<Vec<R>>();
                    if let (Some(h), Some(t0)) = (chunk_hist, t0) {
                        let us = t0.elapsed().as_micros() as u64;
                        busy.fetch_add(us, Ordering::Relaxed);
                        h.record(us as f64 / 1e3);
                    }
                    part
                })
            })
            .collect();
        let n_chunks = handles.len();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (out, n_chunks)
    });
    let (out, n_chunks) = out;
    if let Some((_, t_all)) = profile {
        if let Some(c) = telemetry::counter("cliffguard.parallel.par_calls") {
            c.incr(1);
        }
        if let Some(c) = telemetry::counter("cliffguard.parallel.items") {
            c.incr(items.len() as u64);
        }
        if let Some(g) = telemetry::gauge("cliffguard.parallel.threads") {
            g.set(n_chunks as f64);
        }
        let wall_us = t_all.elapsed().as_micros() as u64;
        if wall_us > 0 {
            if let Some(g) = telemetry::gauge("cliffguard.parallel.utilization") {
                // Busy worker time over available worker time for this
                // call: 1.0 = perfectly balanced chunks.
                g.set(busy_us.load(Ordering::Relaxed) as f64 / (wall_us * n_chunks as u64) as f64);
            }
        }
    }
    out
}

/// Ordered parallel map followed by a serial left fold — the shape every
/// CliffGuard reduction uses. Bit-identical to
/// `items.iter().map(f).fold(init, g)` at any thread count.
pub fn par_map_fold<T, R, A, F, G>(items: &[T], f: F, init: A, g: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(items, f).into_iter().fold(init, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads` mutates process state; tests that exercise specific
    /// counts serialize on this lock so cargo's parallel test runner
    /// cannot interleave them.
    static THREAD_KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            set_threads(threads);
            let out = par_map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fold_is_bit_identical_across_thread_counts() {
        let _guard = THREAD_KNOB.lock().unwrap();
        // Values chosen so addition order matters in the low bits.
        let items: Vec<f64> = (0..777).map(|i| 1.0 / (i as f64 + 0.3)).collect();
        set_threads(1);
        let serial = par_map_fold(&items, |&x| x.sin(), 0.0f64, |a, x| a + x);
        for threads in [2, 5, 8] {
            set_threads(threads);
            let parallel = par_map_fold(&items, |&x| x.sin(), 0.0f64, |a, x| a + x);
            assert_eq!(serial.to_bits(), parallel.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = THREAD_KNOB.lock().unwrap();
        set_threads(8);
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn small_inputs_cap_thread_count() {
        let _guard = THREAD_KNOB.lock().unwrap();
        set_threads(64);
        // Fewer items than MIN_CHUNK: runs inline, output still exact.
        let small: Vec<u64> = (0..MIN_CHUNK as u64 - 1).collect();
        assert_eq!(
            par_map(&small, |&x| x * 2),
            small.iter().map(|&x| x * 2).collect::<Vec<_>>()
        );
        // A few multiples of MIN_CHUNK: parallel, but never a chunk of 1.
        let medium: Vec<u64> = (0..3 * MIN_CHUNK as u64 + 1).collect();
        assert_eq!(
            par_map(&medium, |&x| x + 1),
            medium.iter().map(|&x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_threads_clamps() {
        let _guard = THREAD_KNOB.lock().unwrap();
        set_threads(0);
        assert_eq!(current_threads(), 1);
        set_threads(1_000_000);
        assert_eq!(current_threads(), 256);
        set_threads(4);
        assert_eq!(current_threads(), 4);
    }

    #[test]
    fn metrics_record_chunks_when_enabled() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let t = telemetry::install(telemetry::TelemetryConfig {
            metrics: true,
            ..Default::default()
        })
        .unwrap();
        set_threads(4);
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(par_map(&items, |&x| x + 1)[99], 100);
        set_threads(1);
        let _ = par_map(&items, |&x| x);
        let snap = t.registry().unwrap().snapshot();
        // `>=`: tests that don't hold the knob lock may run par_map
        // concurrently and add their own counts.
        assert!(snap.counter("cliffguard.parallel.par_calls") >= Some(1));
        assert!(snap.counter("cliffguard.parallel.inline_calls") >= Some(1));
        assert!(snap.counter("cliffguard.parallel.items") >= Some(100));
        let chunks = snap.histogram("cliffguard.parallel.chunk_ms").unwrap();
        assert!(
            chunks.count >= 4,
            "one sample per chunk, got {}",
            chunks.count
        );
        let util = snap.gauge("cliffguard.parallel.utilization").unwrap_or(0.0);
        assert!((0.0..=1.5).contains(&util), "utilization {util}");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        // Uses whatever thread count is active; panic must surface either way.
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, |&x| if x == 63 { panic!("boom") } else { x });
    }
}
