//! Prometheus text exposition (format v0.0.4) for metrics snapshots.
//!
//! [`render_prometheus`] turns a [`MetricsSnapshot`] into the plain-text
//! format every Prometheus-compatible scraper understands. The mapping
//! from the registry's flat names:
//!
//! * dots in metric names become underscores
//!   (`cliffguard.core.sessions` → `cliffguard_core_sessions`);
//! * a flat key produced by [`labeled`](crate::labeled) —
//!   `name{key="value"}` — is split back into a family plus one label,
//!   so every tenant series of one name shares a single `# TYPE` line;
//! * histograms publish cumulative `_bucket{le="…"}` samples on the
//!   log-linear bucket *upper* edges, then `_sum` and `_count`.
//!
//! Output is deterministic: families are sorted (counters, then gauges,
//! then histograms), series within a family are sorted by label, and
//! float formatting is fixed — so two snapshots with equal contents
//! render byte-identical text regardless of registration order.

use crate::metrics::{bucket_upper, HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;

/// Renders `snap` in the Prometheus text exposition format. See the
/// [module docs](self) for the name/label mapping and ordering.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    render_section(&mut out, "counter", &snap.counters, |out, _, labels, v| {
        push_sample(out, labels, &v.to_string());
    });
    render_section(&mut out, "gauge", &snap.gauges, |out, _, labels, v| {
        push_sample(out, labels, &fmt_f64(*v));
    });
    render_section(&mut out, "histogram", &snap.histograms, render_histogram);
    out
}

/// One family: the samples under a shared `# TYPE` line, keyed and
/// sorted by rendered label set.
type Family<'v, V> = BTreeMap<String, &'v V>;

fn render_section<V>(
    out: &mut String,
    kind: &str,
    series: &BTreeMap<String, V>,
    mut sample: impl FnMut(&mut String, &str, &str, &V),
) {
    let mut families: BTreeMap<String, Family<'_, V>> = BTreeMap::new();
    for (flat, value) in series {
        let (family, labels) = split_flat_key(flat);
        families.entry(family).or_default().insert(labels, value);
    }
    for (family, entries) in &families {
        out.push_str("# TYPE ");
        out.push_str(family);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        for (labels, value) in entries {
            sample(out, family, labels, value);
        }
    }
}

fn push_sample(out: &mut String, sample_name: &str, value: &str) {
    out.push_str(sample_name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(out: &mut String, family: &str, labels: &str, h: &HistogramSnapshot) {
    // `labels` here is the *full sample name* (family + rendered label
    // block); split it so `le` can be appended inside the braces.
    let (bare, label_body) = match labels.find('{') {
        Some(i) => (&labels[..i], Some(&labels[i + 1..labels.len() - 1])),
        None => (labels, None),
    };
    debug_assert!(bare.starts_with(family));
    let with_le = |le: &str| -> String {
        match label_body {
            Some(body) => format!("{bare}_bucket{{{body},le=\"{le}\"}}"),
            None => format!("{bare}_bucket{{le=\"{le}\"}}"),
        }
    };
    let mut cumulative = 0u64;
    for &(idx, count) in &h.buckets {
        cumulative += count;
        let upper = bucket_upper(idx as usize);
        if upper.is_infinite() {
            // The overflow bucket folds into the +Inf sample below.
            continue;
        }
        out.push_str(&with_le(&fmt_f64(upper)));
        out.push(' ');
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    out.push_str(&with_le("+Inf"));
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
    let suffixed = |suffix: &str| -> String {
        match label_body {
            Some(body) => format!("{bare}{suffix}{{{body}}}"),
            None => format!("{bare}{suffix}"),
        }
    };
    out.push_str(&suffixed("_sum"));
    out.push(' ');
    out.push_str(&fmt_f64(if h.count == 0 { 0.0 } else { h.sum }));
    out.push('\n');
    out.push_str(&suffixed("_count"));
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
}

/// Splits a registry flat key into `(family, full sample name)`.
///
/// The family is the sanitized metric name; the sample name is the
/// family plus the re-escaped label block (or just the family for an
/// unlabeled series). [`labeled`](crate::labeled) emits exactly one
/// `key="value"` pair, which is what this parses; a flat key whose
/// label block does not have that shape is sanitized wholesale into a
/// bare family name rather than emitting malformed exposition.
fn split_flat_key(flat: &str) -> (String, String) {
    let Some(brace) = flat.find('{') else {
        let family = sanitize_name(flat);
        return (family.clone(), family);
    };
    let parsed = (|| {
        let body = flat[brace..].strip_prefix('{')?.strip_suffix('}')?;
        let eq = body.find("=\"")?;
        let value = body[eq + 2..].strip_suffix('"')?;
        Some((sanitize_label_name(&body[..eq]), value))
    })();
    match parsed {
        Some((key, value)) => {
            let family = sanitize_name(&flat[..brace]);
            let sample = format!("{family}{{{key}=\"{}\"}}", escape_label_value(value));
            (family, sample)
        }
        None => {
            let family = sanitize_name(flat);
            (family.clone(), family)
        }
    }
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// `[a-zA-Z0-9_:]` (leading digits get an underscore prefix).
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            '0'..='9' => {
                out.push('_');
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Label names allow `[a-zA-Z0-9_]` (no colon).
fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Escapes a label value per the text format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic float spelling: Rust's shortest round-trip form with a
/// forced decimal point, and the Prometheus spellings for non-finite
/// values.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v == f64::INFINITY {
        return "+Inf".to_string();
    }
    if v == f64::NEG_INFINITY {
        return "-Inf".to_string();
    }
    let s = v.to_string();
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeled;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn families_merge_and_sort_with_type_lines() {
        let reg = MetricsRegistry::default();
        reg.counter(&labeled("cliffguard.serve.sessions", "tenant", "beta"))
            .incr(2);
        reg.counter(&labeled("cliffguard.serve.sessions", "tenant", "acme"))
            .incr(5);
        reg.counter("cliffguard.core.sessions").incr(1);
        reg.gauge("cliffguard.core.gamma").set(0.25);
        let text = render_prometheus(&reg.snapshot());
        assert_eq!(
            text,
            "# TYPE cliffguard_core_sessions counter\n\
             cliffguard_core_sessions 1\n\
             # TYPE cliffguard_serve_sessions counter\n\
             cliffguard_serve_sessions{tenant=\"acme\"} 5\n\
             cliffguard_serve_sessions{tenant=\"beta\"} 2\n\
             # TYPE cliffguard_core_gamma gauge\n\
             cliffguard_core_gamma 0.25\n"
        );
    }

    #[test]
    fn output_is_byte_identical_across_insertion_orders_and_reruns() {
        let names = [
            "cliffguard.a.one",
            "cliffguard.b.two",
            &labeled("cliffguard.c.three", "tenant", "t1"),
            &labeled("cliffguard.c.three", "tenant", "t0"),
        ];
        let forward = MetricsRegistry::default();
        for n in &names {
            forward.counter(n).incr(7);
        }
        let reverse = MetricsRegistry::default();
        for n in names.iter().rev() {
            reverse.counter(n).incr(7);
        }
        let a = render_prometheus(&forward.snapshot());
        let b = render_prometheus(&reverse.snapshot());
        assert_eq!(a, b);
        // Rerunning the renderer on the same snapshot is also stable.
        assert_eq!(a, render_prometheus(&forward.snapshot()));
    }

    #[test]
    fn label_values_are_escaped_per_the_text_format() {
        let mut snap = MetricsSnapshot::default();
        // `labeled` lets backslashes through, and a hand-built flat key
        // can carry quotes and newlines in the value slot; all three
        // must come out escaped, on a single exposition line each.
        snap.counters.insert(r#"m{t="a\b"}"#.to_string(), 1);
        snap.counters.insert("m{t=\"line1\nline2\"}".to_string(), 2);
        snap.counters.insert(r#"m{t="say "hi""}"#.to_string(), 3);
        let text = render_prometheus(&snap);
        assert!(text.contains(r#"m{t="a\\b"} 1"#), "{text}");
        assert!(text.contains(r#"m{t="line1\nline2"} 2"#), "{text}");
        assert!(text.contains(r#"m{t="say \"hi\""} 3"#), "{text}");
        for line in text.lines() {
            assert!(line.starts_with("# TYPE") || line.ends_with(|c: char| c.is_ascii_digit()));
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("cliffguard.test.latency");
        for v in [0.5, 0.5, 2.0, 8.0, 100.0] {
            h.record(v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(text.starts_with("# TYPE cliffguard_test_latency histogram\n"));
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "buckets must be cumulative: {text}");
            last = count;
            bucket_lines += 1;
        }
        // 4 distinct finite buckets + the +Inf sample.
        assert_eq!(bucket_lines, 5);
        assert_eq!(last, 5, "the +Inf bucket carries the total count");
        assert!(text.contains("cliffguard_test_latency_count 5\n"));
        assert!(text.contains("cliffguard_test_latency_sum 111.0\n"));
        // `le` edges bound the recorded values from above.
        let les: Vec<f64> = text
            .lines()
            .filter(|l| l.contains("le=\"") && !l.contains("+Inf"))
            .map(|l| {
                let start = l.find("le=\"").unwrap() + 4;
                let end = l[start..].find('"').unwrap() + start;
                l[start..end].parse().unwrap()
            })
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "{les:?}");
        assert!(les[0] > 0.5 && les[0] <= 0.53125);
    }

    #[test]
    fn empty_and_labeled_histograms_render() {
        let reg = MetricsRegistry::default();
        reg.histogram("cliffguard.test.empty");
        reg.histogram(&labeled("cliffguard.test.per_tenant", "tenant", "acme"))
            .record(3.0);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("cliffguard_test_empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("cliffguard_test_empty_sum 0.0\n"));
        assert!(text.contains("cliffguard_test_empty_count 0\n"));
        assert!(
            text.contains("cliffguard_test_per_tenant_bucket{tenant=\"acme\",le=\"+Inf\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("cliffguard_test_per_tenant_sum{tenant=\"acme\"} 3.0\n"));
        assert!(text.contains("cliffguard_test_per_tenant_count{tenant=\"acme\"} 1\n"));
    }
}
