//! First-party observability for the CliffGuard workspace.
//!
//! The robust-design search is a quantitative system — its whole value
//! claim is "worst-case cost over a Γ-neighborhood" — yet a run used to
//! be a black box between the CLI banner and the final DDL. This crate
//! is the one telemetry layer every other crate talks to:
//!
//! * **Structured tracing** ([`event`]): leveled events and spans with
//!   typed key-value fields, serialized as one JSON object per line
//!   (JSONL) to a file, an arbitrary writer, or an in-memory buffer.
//!   Timestamps come from a pluggable clock, so a session running on the
//!   virtual [`SessionClock`] produces **byte-identical traces** across
//!   reruns and thread counts (`SessionClock` lives in
//!   `cliffguard-resilience`; the bridge is a plain `Fn() -> u64`, which
//!   keeps this crate dependency-free).
//! * **Metrics** ([`metrics`]): counters, gauges, and log-linear-bucket
//!   histograms with p50/p95/p99 export and mergeable snapshots,
//!   registered by name (`cliffguard.<crate>.<name>`), renderable as
//!   Prometheus exposition text via [`render_prometheus`].
//! * **Flight recorder** ([`flight`]): a bounded per-session ring of the
//!   most recent trace lines — all levels, subscriber or not — dumped
//!   on degradation or a worker panic as the session's black box.
//! * **A disabled-by-default fast path**: when nothing is installed,
//!   every instrumentation site costs two relaxed atomic loads (level
//!   gate + flight-recorder gate) and nothing else — no allocation, no
//!   formatting, no locks.
//!
//! # Usage
//!
//! ```
//! use cliffguard_telemetry as telemetry;
//! use telemetry::{Level, TelemetryConfig, TraceSink};
//!
//! let guard = telemetry::install(TelemetryConfig {
//!     trace: Some(TraceSink::Memory),
//!     level: Level::Debug,
//!     metrics: true,
//!     ..TelemetryConfig::default()
//! })
//! .unwrap();
//!
//! telemetry::event(Level::Info, "cliffguard.doc.example")
//!     .u64("answer", 42)
//!     .emit();
//! if let Some(c) = telemetry::counter("cliffguard.doc.calls") {
//!     c.incr(1);
//! }
//!
//! let lines = guard.memory().unwrap().lines();
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].contains("\"name\":\"cliffguard.doc.example\""));
//! let snap = guard.registry().unwrap().snapshot();
//! assert_eq!(snap.counter("cliffguard.doc.calls"), Some(1));
//! // Dropping the guard uninstalls everything and restores the fast path.
//! ```
//!
//! [`SessionClock`]: https://docs.rs/cliffguard-resilience

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod flight;
mod json;
mod level;
pub mod metrics;
mod prometheus;
mod subscriber;

pub use event::{event, EventBuilder, SpanGuard};
pub use flight::{
    freeze_current, record_on_thread, FlightDump, FlightRecorder, RecorderGuard,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use level::Level;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use prometheus::render_prometheus;
pub use subscriber::{
    install, MemoryTrace, TelemetryConfig, TelemetryGuard, TraceClock, TraceSink,
};

use metrics::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable selecting the trace level when the caller does
/// not pick one explicitly: `off`, `error`, `warn`, `info`, `debug`, or
/// `trace`.
pub const LOG_ENV: &str = "CLIFFGUARD_LOG";

/// The installed subscriber's maximum level (0 = tracing disabled).
/// This is the entire cost of a disabled instrumentation site.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Whether a metrics registry is installed. Same idea as [`MAX_LEVEL`]:
/// one relaxed load answers "should I even time this?".
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// The installed subscriber and registry. A `Mutex<Option<Arc<..>>>`
/// rather than a lock-free slot: the lock is only touched on the
/// *enabled* path (and at install/uninstall), never on the fast path.
static SUBSCRIBER: Mutex<Option<Arc<subscriber::Shared>>> = Mutex::new(None);
static REGISTRY: Mutex<Option<Arc<MetricsRegistry>>> = Mutex::new(None);

/// Whether an event at `level` would currently be recorded.
///
/// This is the fast path every instrumentation site runs first: one
/// relaxed atomic load. With no subscriber installed it returns `false`
/// and the site does nothing else.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether a metrics registry is currently installed.
///
/// Sites that time work (e.g. a stopwatch around a cost-model call)
/// check this before touching the clock.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// The installed metrics registry, if any.
pub fn registry() -> Option<Arc<MetricsRegistry>> {
    if !metrics_enabled() {
        return None;
    }
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The counter `name` of the installed registry (`None` when metrics are
/// off). Handles are `Arc`s — resolve once, then update lock-free.
pub fn counter(name: &str) -> Option<Arc<Counter>> {
    registry().map(|r| r.counter(name))
}

/// The gauge `name` of the installed registry (`None` when metrics are
/// off).
pub fn gauge(name: &str) -> Option<Arc<Gauge>> {
    registry().map(|r| r.gauge(name))
}

/// The histogram `name` of the installed registry (`None` when metrics
/// are off).
pub fn histogram(name: &str) -> Option<Arc<Histogram>> {
    registry().map(|r| r.histogram(name))
}

/// Milliseconds elapsed since `start`, as the `f64` histograms record.
pub fn elapsed_ms(start: std::time::Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Renders a metric name with one label in Prometheus style, e.g.
/// `labeled("cliffguard.serve.sessions", "tenant", "acme")` →
/// `cliffguard.serve.sessions{tenant="acme"}`.
///
/// The registry keys metrics by flat name, so a labeled series is simply
/// a distinct name; snapshots and merges treat each label value as its
/// own counter/gauge/histogram. Characters that would corrupt the rendered
/// name (`{`, `}`, `"`, newlines) are replaced with `_` — callers pass
/// tenant ids and similar externally-supplied strings here.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    let clean: String = value
        .chars()
        .map(|c| match c {
            '{' | '}' | '"' | '\n' | '\r' => '_',
            c => c,
        })
        .collect();
    format!("{name}{{{key}=\"{clean}\"}}")
}

pub(crate) fn current_subscriber() -> Option<Arc<subscriber::Shared>> {
    SUBSCRIBER.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

pub(crate) fn set_globals(sub: Option<Arc<subscriber::Shared>>, reg: Option<Arc<MetricsRegistry>>) {
    // Order matters on install: publish the state before flipping the
    // fast-path flags, so a site that sees "enabled" finds a subscriber.
    let max = sub.as_ref().map_or(0, |s| s.level as u8);
    *SUBSCRIBER.lock().unwrap_or_else(|e| e.into_inner()) = sub;
    let on = reg.is_some();
    *REGISTRY.lock().unwrap_or_else(|e| e.into_inner()) = reg;
    MAX_LEVEL.store(max, Ordering::Relaxed);
    METRICS_ON.store(on, Ordering::Relaxed);
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::Mutex;

    /// The subscriber and registry are process globals; tests that
    /// install them serialize on this lock (same idiom as the
    /// thread-knob lock in `cliffguard-parallel`).
    pub static GLOBALS: Mutex<()> = Mutex::new(());
}

#[cfg(test)]
mod label_tests {
    use super::labeled;

    #[test]
    fn labeled_renders_and_sanitizes() {
        assert_eq!(
            labeled("cliffguard.serve.sessions", "tenant", "acme"),
            "cliffguard.serve.sessions{tenant=\"acme\"}"
        );
        // Hostile label values cannot corrupt the rendered name.
        assert_eq!(labeled("m", "tenant", "a\"}{b\n"), "m{tenant=\"a___b_\"}");
        // Distinct label values are distinct registry keys.
        assert_ne!(labeled("m", "t", "a"), labeled("m", "t", "b"));
    }
}
