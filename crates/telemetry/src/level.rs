//! Trace verbosity levels.

/// Severity/verbosity of an event or span, most to least severe.
///
/// The numeric representation is the filter: an event is recorded when
/// its level is `<=` the subscriber's level (so `Error` always passes a
/// live subscriber and `Trace` only passes the most verbose one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems (none today — sessions degrade instead).
    Error = 1,
    /// Faults, retries, degradations: things an operator should see.
    Warn = 2,
    /// The run's skeleton: session start/finish, per-iteration spans.
    Info = 3,
    /// Inner-loop detail: optimizer iterations, solver cycles.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// The wire name (`"info"` etc.) written into every trace line.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name; `Ok(None)` means `"off"`.
    ///
    /// Accepted (case-insensitive): `off`, `error`, `warn`, `info`,
    /// `debug`, `trace`.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            other => Err(format!(
                "unknown log level `{other}` (want off|error|warn|info|debug|trace)"
            )),
        }
    }

    /// The level named by the `CLIFFGUARD_LOG` environment variable, if
    /// set and valid. `CLIFFGUARD_LOG=off` yields `Some(None)`.
    pub fn from_env() -> Option<Option<Level>> {
        let raw = std::env::var(crate::LOG_ENV).ok()?;
        Level::parse(&raw).ok()
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_rejects() {
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()).unwrap(), Some(l));
        }
        assert_eq!(Level::parse("OFF").unwrap(), None);
        assert_eq!(Level::parse(" Warn ").unwrap(), Some(Level::Warn));
        assert!(Level::parse("loud").is_err());
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!((Level::Error as u8) < (Level::Trace as u8));
        assert!(Level::Warn < Level::Debug);
    }
}
