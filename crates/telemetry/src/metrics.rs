//! The metrics registry: counters, gauges, and log-linear histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed out
//! by name from a [`MetricsRegistry`]; updates are lock-free atomics, so
//! worker threads of the parallel layer can record freely. A
//! [`MetricsSnapshot`] is a point-in-time copy — deterministic JSON,
//! p50/p95/p99 quantiles per histogram, and **mergeable**: merging
//! snapshots from two registries gives exactly the bucket counts a
//! single shared registry would have had.
//!
//! # Histogram design
//!
//! Buckets are log-linear over the positive `f64` range: one bucket per
//! (binary exponent, top-4-mantissa-bits) pair, i.e. 16 sub-buckets per
//! power of two, giving a worst-case relative error of ~6% per recorded
//! value — plenty for latency quantiles. Exponents are clamped to
//! `[-32, 64)` (≈2.3e-10 .. 1.8e19), with everything below (and zero,
//! negatives, NaN) in an underflow bucket and everything at or above
//! 2^64 in an overflow bucket: 1538 buckets total, dense `AtomicU64`s
//! at record time, sparse `(index, count)` pairs in snapshots.

use crate::json::{push_f64, push_str_literal};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Smallest binary exponent with its own buckets.
const EXP_MIN: i64 = -32;
/// One past the largest binary exponent with its own buckets.
const EXP_MAX: i64 = 64;
/// Linear sub-buckets per power of two.
const SUBS: usize = 16;
/// Total bucket count: underflow + dense range + overflow.
const N_BUCKETS: usize = 2 + ((EXP_MAX - EXP_MIN) as usize) * SUBS;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn incr(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` value (stored as IEEE-754 bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log-linear-bucket distribution of `f64` observations.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum / min / max, each an `f64` kept as bits under CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The bucket index for observation `v`.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        // NaN, ±inf already excluded from recording; zero and negatives
        // land in the underflow bucket.
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if exp < EXP_MIN {
        return 0;
    }
    if exp >= EXP_MAX {
        return N_BUCKETS - 1;
    }
    let sub = ((bits >> 48) & 0xf) as usize;
    1 + ((exp - EXP_MIN) as usize) * SUBS + sub
}

/// The *upper* edge of bucket `idx` — the `le` bound Prometheus
/// exposition publishes for it. The underflow bucket's edge is the
/// bottom of the dense range; the overflow bucket's is `+inf`.
pub(crate) fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        return ((EXP_MIN) as f64).exp2();
    }
    if idx >= N_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let exp = EXP_MIN + ((idx - 1) / SUBS) as i64;
    let sub = (idx - 1) % SUBS;
    (1.0 + (sub as f64 + 1.0) / SUBS as f64) * (exp as f64).exp2()
}

/// The middle of bucket `idx` — the value a quantile reports for any
/// observation that landed there.
fn bucket_mid(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx >= N_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let exp = EXP_MIN + ((idx - 1) / SUBS) as i64;
    let sub = (idx - 1) % SUBS;
    (1.0 + (sub as f64 + 0.5) / SUBS as f64) * (exp as f64).exp2()
}

impl Histogram {
    /// Records one observation. Non-finite values are dropped (they
    /// would poison the running sum).
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |s| s + v);
        fetch_update_f64(&self.min_bits, |m| m.min(v));
        fetch_update_f64(&self.max_bits, |m| m.max(v));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A frozen histogram: sparse bucket counts plus count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (addition order is unspecified, so only
    /// compare sums with a tolerance).
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// `(bucket index, count)` pairs, ascending by index, zeros omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a bucket midpoint, clamped
    /// to the observed `[min, max]`. 0 when empty. Monotone in `q` by
    /// construction (a cumulative-rank walk over ordered buckets).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_mid(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self`. Bucket counts add exactly, so merging
    /// per-registry snapshots reproduces the single-registry histogram
    /// (up to float-addition order in `sum`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters and histogram buckets add;
    /// for a gauge present on both sides, `other`'s (later) value wins.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic JSON: names sorted, histograms exported with
    /// count/sum/min/max, p50/p95/p99, and sparse buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            out.push_str(if first { "\n    " } else { ",\n    " });
            first = false;
            push_str_literal(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            out.push_str(if first { "\n    " } else { ",\n    " });
            first = false;
            push_str_literal(&mut out, k);
            out.push_str(": ");
            push_f64(&mut out, *v);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            out.push_str(if first { "\n    " } else { ",\n    " });
            first = false;
            push_str_literal(&mut out, k);
            out.push_str(": {\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            push_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            push_f64(&mut out, if h.count == 0 { 0.0 } else { h.min });
            out.push_str(",\"max\":");
            push_f64(&mut out, if h.count == 0 { 0.0 } else { h.max });
            out.push_str(",\"p50\":");
            push_f64(&mut out, h.p50());
            out.push_str(",\"p95\":");
            push_f64(&mut out, h.p95());
            out.push_str(",\"p99\":");
            push_f64(&mut out, h.p99());
            out.push_str(",\"buckets\":[");
            for (i, (idx, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push('}');
        out
    }
}

#[derive(Default)]
struct Registered {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Hands out named metric handles and snapshots them.
///
/// Names follow `cliffguard.<crate>.<name>`. Lookup takes a registry
/// lock; updates through the returned `Arc` handles are lock-free, so
/// hot loops resolve their handles once up front.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registered>,
}

impl MetricsRegistry {
    /// The counter `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(reg.counters.entry(name.to_string()).or_default())
    }

    /// The gauge `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(reg.gauges.entry(name.to_string()).or_default())
    }

    /// The histogram `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(reg.histograms.entry(name.to_string()).or_default())
    }

    /// A point-in-time copy of everything registered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::default();
        reg.counter("cliffguard.test.c").incr(2);
        reg.counter("cliffguard.test.c").incr(3);
        reg.gauge("cliffguard.test.g").set(0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cliffguard.test.c"), Some(5));
        assert_eq!(snap.gauge("cliffguard.test.g"), Some(0.75));
        assert_eq!(snap.counter("cliffguard.test.missing"), None);
    }

    #[test]
    fn bucket_index_covers_the_line() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-30), 0); // below 2^-32
        assert_eq!(bucket_index(2e19), N_BUCKETS - 1); // above 2^64
        assert_eq!(bucket_index(1.0), 1 + ((-EXP_MIN) as usize) * SUBS);
        // Within a power of two, the 16 sub-buckets split linearly.
        assert_eq!(bucket_index(1.0), bucket_index(1.05));
        assert!(bucket_index(1.0) < bucket_index(1.5));
        assert!(bucket_index(1.5) < bucket_index(2.0));
        // Midpoints bracket their values to ~6% relative error.
        for v in [0.001, 0.37, 1.0, 8.25, 1234.5, 9.9e9] {
            let mid = bucket_mid(bucket_index(v));
            assert!((mid - v).abs() / v < 0.07, "v={v} mid={mid}");
        }
    }

    #[test]
    fn quantiles_hit_known_distribution() {
        let h = Histogram::default();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        // ~6% bucket error allowed.
        assert!((s.p50() - 50.0).abs() < 5.0, "p50={}", s.p50());
        assert!((s.p95() - 95.0).abs() < 7.0, "p95={}", s.p95());
        assert!((s.p99() - 99.0).abs() < 7.0, "p99={}", s.p99());
        assert!(s.quantile(0.0) >= s.min && s.quantile(1.0) <= s.max);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::default();
        reg.counter("cliffguard.test.b").incr(1);
        reg.counter("cliffguard.test.a").incr(2);
        reg.histogram("cliffguard.test.h").record(2.0);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        let ia = a.find("cliffguard.test.a").unwrap();
        let ib = a.find("cliffguard.test.b").unwrap();
        assert!(ia < ib, "keys must be sorted:\n{a}");
        assert!(a.contains("\"count\":1"));
    }

    #[test]
    fn empty_snapshot_json_is_valid_shape() {
        let snap = MetricsRegistry::default().snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let r1 = MetricsRegistry::default();
        let r2 = MetricsRegistry::default();
        r1.counter("c").incr(2);
        r2.counter("c").incr(5);
        r1.histogram("h").record(1.0);
        r2.histogram("h").record(1.0);
        r2.histogram("h").record(64.0);
        r2.gauge("g").set(3.5);
        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(m.counter("c"), Some(7));
        assert_eq!(m.gauge("g"), Some(3.5));
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 64.0);
        assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 3);
    }
}
