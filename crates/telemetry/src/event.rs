//! Events and spans: the structured-tracing half of the crate.
//!
//! A trace is a sequence of single-line JSON records with a fixed key
//! order:
//!
//! ```text
//! {"t":<ms>,"kind":"event","level":"info","name":"cliffguard.core.session.start","fields":{...}}
//! {"t":<ms>,"kind":"span","level":"info","name":"cliffguard.core.descent.iter","dur_ms":<ms>,"fields":{...}}
//! ```
//!
//! `t` is the record's timestamp on the subscriber clock (for a span:
//! when it was entered) and `dur_ms` is the span's clock time from
//! [`EventBuilder::entered`] to drop. Fields keep insertion order; field
//! values are `u64`/`i64`/`f64`/`bool`/string.

use crate::json::{push_f64, push_str_literal};
use crate::level::Level;
use crate::subscriber::Shared;
use std::sync::Arc;

/// Starts building an event named `name` at `level`.
///
/// When no subscriber is installed (or `level` is filtered out) this
/// returns an inert builder: every method is a no-op and nothing
/// allocates. The name should follow the workspace convention
/// `cliffguard.<crate>.<name>`.
///
/// A thread-installed [`FlightRecorder`](crate::FlightRecorder) widens
/// the gate: while one is active on the calling thread, the record is
/// built even when the subscriber would filter the level (or there is
/// no subscriber at all), and the rendered line is teed into the
/// recorder's ring. The subscriber's own output is unaffected either
/// way — the recorder adds no trace events.
pub fn event(level: Level, name: &'static str) -> EventBuilder {
    let recorder = if crate::flight::recorders_active() {
        crate::flight::current_recorder()
    } else {
        None
    };
    let shared = if crate::enabled(level) {
        crate::current_subscriber().filter(|s| (level as u8) <= (s.level as u8))
    } else {
        None
    };
    if shared.is_none() && recorder.is_none() {
        return EventBuilder { inner: None };
    }
    EventBuilder {
        inner: Some(Box::new(Record {
            shared,
            recorder,
            level,
            name,
            fields: String::new(),
        })),
    }
}

struct Record {
    shared: Option<Arc<Shared>>,
    recorder: Option<Arc<crate::flight::FlightRecorder>>,
    level: Level,
    name: &'static str,
    /// The body of the `fields` object, without braces: `"k":v,"k2":v2`.
    fields: String,
}

impl Record {
    fn push_key(&mut self, key: &str) {
        if !self.fields.is_empty() {
            self.fields.push(',');
        }
        push_str_literal(&mut self.fields, key);
        self.fields.push(':');
    }

    /// The record's timestamp source: the subscriber clock when one is
    /// attached, else the recorder's clock (the session's virtual clock
    /// in the serve daemon), else 0.
    fn now_ms(&self) -> u64 {
        match (&self.shared, &self.recorder) {
            (Some(s), _) => s.now_ms(),
            (None, Some(r)) => r.now_ms(),
            (None, None) => 0,
        }
    }

    fn emit(&self, t_ms: u64, dur_ms: Option<u64>) {
        let mut line = String::with_capacity(96 + self.fields.len());
        line.push_str("{\"t\":");
        line.push_str(&t_ms.to_string());
        line.push_str(",\"kind\":");
        line.push_str(if dur_ms.is_some() {
            "\"span\""
        } else {
            "\"event\""
        });
        line.push_str(",\"level\":\"");
        line.push_str(self.level.as_str());
        line.push_str("\",\"name\":");
        push_str_literal(&mut line, self.name);
        if let Some(d) = dur_ms {
            line.push_str(",\"dur_ms\":");
            line.push_str(&d.to_string());
        }
        line.push_str(",\"fields\":{");
        line.push_str(&self.fields);
        line.push_str("}}");
        if let Some(shared) = &self.shared {
            shared.write_line(&line);
        }
        if let Some(recorder) = &self.recorder {
            recorder.append(&line);
        }
    }
}

/// A pending event; add fields, then [`emit`](Self::emit) it or enter it
/// as a span.
#[must_use = "an EventBuilder does nothing until .emit() or .entered()"]
pub struct EventBuilder {
    inner: Option<Box<Record>>,
}

impl EventBuilder {
    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            r.fields.push_str(&v.to_string());
        }
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            r.fields.push_str(&v.to_string());
        }
        self
    }

    /// Adds a float field (non-finite values encode as `null`).
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            push_f64(&mut r.fields, v);
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            r.fields.push_str(if v { "true" } else { "false" });
        }
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            push_str_literal(&mut r.fields, v);
        }
        self
    }

    /// Writes the event now (`kind = "event"`).
    pub fn emit(self) {
        if let Some(r) = &self.inner {
            r.emit(r.now_ms(), None);
        }
    }

    /// Turns the pending event into a span: the record is written when
    /// the returned guard drops, with `dur_ms` measured on the
    /// subscriber clock and `t` set to the enter time.
    pub fn entered(self) -> SpanGuard {
        let start_ms = self.inner.as_ref().map(|r| r.now_ms());
        SpanGuard {
            inner: self.inner,
            start_ms: start_ms.unwrap_or(0),
        }
    }
}

/// A live span; dropped = closed and written. Late fields added through
/// the `record_*` methods appear after the fields set at build time.
pub struct SpanGuard {
    inner: Option<Box<Record>>,
    start_ms: u64,
}

impl SpanGuard {
    /// Adds an unsigned integer field to the span before it closes.
    pub fn record_u64(&mut self, key: &str, v: u64) {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            r.fields.push_str(&v.to_string());
        }
    }

    /// Adds a float field to the span before it closes.
    pub fn record_f64(&mut self, key: &str, v: f64) {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            push_f64(&mut r.fields, v);
        }
    }

    /// Adds a boolean field to the span before it closes.
    pub fn record_bool(&mut self, key: &str, v: bool) {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            r.fields.push_str(if v { "true" } else { "false" });
        }
    }

    /// Adds a string field to the span before it closes.
    pub fn record_str(&mut self, key: &str, v: &str) {
        if let Some(r) = &mut self.inner {
            r.push_key(key);
            push_str_literal(&mut r.fields, v);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(r) = &self.inner {
            let end = r.now_ms();
            r.emit(self.start_ms, Some(end.saturating_sub(self.start_ms)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscriber::{install, TelemetryConfig, TraceClock, TraceSink};
    use crate::test_lock::GLOBALS;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn disabled_builder_is_inert() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        // No subscriber installed: all of this must be a no-op.
        event(Level::Error, "cliffguard.test.noop")
            .u64("a", 1)
            .str("b", "x")
            .emit();
        let mut span = event(Level::Error, "cliffguard.test.noop").entered();
        span.record_f64("c", 1.5);
        drop(span);
    }

    #[test]
    fn span_records_duration_on_shared_clock() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let ticks = Arc::new(AtomicU64::new(100));
        let t2 = Arc::clone(&ticks);
        let guard = install(TelemetryConfig {
            trace: Some(TraceSink::Memory),
            level: Level::Info,
            clock: TraceClock::shared_ms(move || t2.load(Ordering::Relaxed)),
            metrics: false,
        })
        .unwrap();
        let mut span = event(Level::Info, "cliffguard.test.span")
            .u64("iter", 3)
            .entered();
        ticks.store(140, Ordering::Relaxed);
        span.record_f64("worst", 2.5);
        span.record_bool("accepted", true);
        drop(span);
        let lines = guard.memory().unwrap().lines();
        assert_eq!(
            lines,
            vec![
                r#"{"t":100,"kind":"span","level":"info","name":"cliffguard.test.span","dur_ms":40,"fields":{"iter":3,"worst":2.5,"accepted":true}}"#
            ]
        );
    }

    #[test]
    fn recorder_tees_without_touching_the_subscriber() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let guard = install(TelemetryConfig {
            trace: Some(TraceSink::Memory),
            level: Level::Info,
            clock: TraceClock::shared_ms(|| 7),
            metrics: false,
        })
        .unwrap();
        let rec = Arc::new(crate::flight::FlightRecorder::new(8));
        {
            let _g = crate::flight::record_on_thread(&rec);
            // Info passes the subscriber: both sinks see identical bytes.
            event(Level::Info, "cliffguard.test.both")
                .u64("a", 1)
                .emit();
            // Debug is filtered by the subscriber but retained by the
            // recorder — the black box keeps everything.
            event(Level::Debug, "cliffguard.test.only_recorder").emit();
        }
        // After the guard drops, nothing reaches the recorder.
        event(Level::Info, "cliffguard.test.after").emit();
        let trace = guard.memory().unwrap().lines();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].contains("cliffguard.test.both"));
        assert!(trace[1].contains("cliffguard.test.after"));
        let recorded = rec.lines();
        assert_eq!(recorded.len(), 2);
        assert_eq!(recorded[0], trace[0]);
        assert!(recorded[1].contains("\"name\":\"cliffguard.test.only_recorder\""));
    }

    #[test]
    fn recorder_works_with_no_subscriber_on_its_own_clock() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(crate::flight::FlightRecorder::new(8));
        let ticks = Arc::new(AtomicU64::new(30));
        let t2 = Arc::clone(&ticks);
        rec.set_clock(Arc::new(move || t2.load(Ordering::Relaxed)));
        let _g = crate::flight::record_on_thread(&rec);
        event(Level::Trace, "cliffguard.test.blackbox")
            .str("s", "x")
            .emit();
        let mut span = event(Level::Debug, "cliffguard.test.blackbox_span").entered();
        ticks.store(45, Ordering::Relaxed);
        span.record_bool("ok", true);
        drop(span);
        assert_eq!(
            rec.lines(),
            vec![
                r#"{"t":30,"kind":"event","level":"trace","name":"cliffguard.test.blackbox","fields":{"s":"x"}}"#,
                r#"{"t":30,"kind":"span","level":"debug","name":"cliffguard.test.blackbox_span","dur_ms":15,"fields":{"ok":true}}"#,
            ]
        );
    }

    #[test]
    fn field_types_encode_exactly() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let guard = install(TelemetryConfig {
            trace: Some(TraceSink::Memory),
            level: Level::Trace,
            clock: TraceClock::shared_ms(|| 5),
            metrics: false,
        })
        .unwrap();
        event(Level::Trace, "cliffguard.test.kinds")
            .u64("u", u64::MAX)
            .i64("i", -7)
            .f64("f", 0.5)
            .f64("nan", f64::NAN)
            .bool("yes", true)
            .str("s", "a\"b")
            .emit();
        let lines = guard.memory().unwrap().lines();
        assert_eq!(
            lines[0],
            format!(
                "{{\"t\":5,\"kind\":\"event\",\"level\":\"trace\",\"name\":\"cliffguard.test.kinds\",\"fields\":{{\"u\":{},\"i\":-7,\"f\":0.5,\"nan\":null,\"yes\":true,\"s\":\"a\\\"b\"}}}}",
                u64::MAX
            )
        );
    }
}
