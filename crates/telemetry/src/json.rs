//! Minimal deterministic JSON encoding for trace lines and metric
//! snapshots.
//!
//! The crate is dependency-free, so it carries its own encoder. Two
//! properties matter more than generality:
//!
//! * **Determinism** — a value always encodes to the same bytes, keys
//!   are written in the order the caller provides them, and floats use
//!   the same shortest-roundtrip form as the workspace `serde_json`
//!   shim (always with a decimal point or exponent, so a reader can
//!   tell `1.0` from `1`).
//! * **One line per record** — no pretty printing in traces; newlines
//!   inside strings are escaped.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in the workspace JSON dialect: shortest roundtrip
/// form, forced to contain `.` or an exponent; non-finite values become
/// `null` (JSON has no representation for them).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    fn f64_lit(v: f64) -> String {
        let mut out = String::new();
        push_f64(&mut out, v);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(str_lit("a\"b"), r#""a\"b""#);
        assert_eq!(str_lit("a\\b"), r#""a\\b""#);
        assert_eq!(str_lit("a\nb\tc"), r#""a\nb\tc""#);
        assert_eq!(str_lit("\u{1}"), "\"\\u0001\"");
        assert_eq!(str_lit("Γ-robust"), "\"Γ-robust\"");
    }

    #[test]
    fn floats_always_look_like_floats() {
        assert_eq!(f64_lit(1.0), "1.0");
        assert_eq!(f64_lit(0.25), "0.25");
        assert_eq!(f64_lit(-3.0), "-3.0");
        assert_eq!(f64_lit(1.5e3), "1500.0");
        assert_eq!(f64_lit(f64::NAN), "null");
        assert_eq!(f64_lit(f64::INFINITY), "null");
    }
}
