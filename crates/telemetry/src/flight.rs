//! Flight recorder: a bounded ring of the most recent trace lines.
//!
//! A [`FlightRecorder`] is the session's black box. It retains the last
//! N rendered trace lines — *regardless of the subscriber's level, and
//! even with no subscriber installed at all* — so that when a session
//! degrades or a serve worker panics, the moments leading up to the
//! failure can be dumped for post-mortem analysis.
//!
//! The recorder is a *tee*, never a source: it observes the same
//! rendered bytes the tracing layer produces and adds no events of its
//! own, so the byte-identity contract on traces is untouched. Lines are
//! timestamped on the recorder's own clock (normally the session's
//! virtual clock) when no subscriber supplies one, which keeps dump
//! content byte-identical across reruns and thread counts.
//!
//! Install is per-thread: [`record_on_thread`] returns a guard that
//! routes every event built on the calling thread into the recorder
//! until dropped. One recorder per session/tenant, installed on the
//! worker thread that runs the session, is the intended shape. The
//! disabled fast path stays cheap: when no recorder is active anywhere
//! in the process, instrumentation sites pay one extra relaxed atomic
//! load and never touch thread-local storage.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Ring capacity used by the serve daemon's per-session recorders.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// A frozen flight-recorder dump: the retained lines at freeze time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Why the dump was taken (degradation reason or panic message).
    pub reason: String,
    /// The retained trace lines as JSONL (newline-terminated).
    pub jsonl: String,
    /// Lines that had already fallen out of the ring when frozen.
    pub dropped: u64,
}

struct Inner {
    ring: VecDeque<String>,
    dropped: u64,
    clock: Option<ClockFn>,
    dump: Option<FlightDump>,
}

/// A bounded, lock-cheap ring buffer of the most recent trace lines.
///
/// See the [module docs](self) for the lifecycle. All methods take
/// `&self`; the ring is guarded by a mutex that is only contended if
/// two threads share one recorder, which the intended
/// one-recorder-per-worker shape never does.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &inner.ring.len())
            .field("dropped", &inner.dropped)
            .field("frozen", &inner.dump.is_some())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                dropped: 0,
                clock: None,
                dump: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets the clock used to timestamp lines recorded while no
    /// subscriber supplies a timestamp. The serve runner binds this to
    /// the session's own (virtual) clock before the session starts.
    pub fn set_clock(&self, clock: ClockFn) {
        self.lock().clock = Some(clock);
    }

    /// The recorder clock's current time (0 before [`set_clock`](Self::set_clock)).
    pub fn now_ms(&self) -> u64 {
        let f = self.lock().clock.clone();
        f.map_or(0, |f| f())
    }

    /// Appends one rendered trace line, evicting the oldest beyond
    /// capacity.
    pub fn append(&self, line: &str) {
        let mut inner = self.lock();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(line.to_string());
    }

    /// Lines currently retained, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Lines evicted so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Freezes the current ring into a pending dump, replacing any
    /// earlier dump. The ring itself keeps recording; the dump is the
    /// snapshot at the moment of failure.
    pub fn freeze(&self, reason: &str) {
        let mut inner = self.lock();
        let mut jsonl = String::new();
        for line in &inner.ring {
            jsonl.push_str(line);
            jsonl.push('\n');
        }
        inner.dump = Some(FlightDump {
            reason: reason.to_string(),
            jsonl,
            dropped: inner.dropped,
        });
    }

    /// Takes the pending dump, if a freeze has happened since the last
    /// take.
    pub fn take_dump(&self) -> Option<FlightDump> {
        self.lock().dump.take()
    }
}

/// Count of thread-installed recorders across the process; the fast
/// path checks this before touching thread-local storage.
static ACTIVE_RECORDERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The recorders installed on this thread, innermost last.
    static CURRENT: RefCell<Vec<Arc<FlightRecorder>>> = const { RefCell::new(Vec::new()) };
}

/// Routes every event built on the calling thread into `recorder` until
/// the returned guard drops. Nested installs shadow (innermost wins).
pub fn record_on_thread(recorder: &Arc<FlightRecorder>) -> RecorderGuard {
    CURRENT.with(|c| c.borrow_mut().push(Arc::clone(recorder)));
    ACTIVE_RECORDERS.fetch_add(1, Ordering::Relaxed);
    RecorderGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Uninstalls the thread's innermost recorder on drop.
pub struct RecorderGuard {
    // The guard pops this thread's stack; sending it elsewhere would
    // pop the wrong one.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
        ACTIVE_RECORDERS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Whether any thread currently has a recorder installed (one relaxed
/// load — the recorder's share of the disabled fast path).
#[inline]
pub(crate) fn recorders_active() -> bool {
    ACTIVE_RECORDERS.load(Ordering::Relaxed) != 0
}

/// The calling thread's innermost recorder, if one is installed.
pub(crate) fn current_recorder() -> Option<Arc<FlightRecorder>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Freezes the calling thread's recorder (if any) with `reason`.
/// Returns whether a recorder was present. `DesignSession` calls this
/// at its degradation sites; it is a no-op outside a recorded session.
pub fn freeze_current(reason: &str) -> bool {
    match current_recorder() {
        Some(r) => {
            r.freeze(reason);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.append(&format!("line {i}"));
        }
        assert_eq!(rec.lines(), vec!["line 2", "line 3", "line 4"]);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn freeze_snapshots_and_take_consumes() {
        let rec = FlightRecorder::new(8);
        rec.append("a");
        rec.append("b");
        rec.freeze("it broke");
        rec.append("c");
        let dump = rec.take_dump().expect("frozen dump");
        assert_eq!(dump.reason, "it broke");
        assert_eq!(dump.jsonl, "a\nb\n");
        assert_eq!(dump.dropped, 0);
        assert!(rec.take_dump().is_none());
        // A later freeze sees the post-freeze ring.
        rec.freeze("again");
        assert_eq!(rec.take_dump().unwrap().jsonl, "a\nb\nc\n");
    }

    #[test]
    fn thread_install_is_scoped_and_nested() {
        let outer = Arc::new(FlightRecorder::new(4));
        let inner = Arc::new(FlightRecorder::new(4));
        assert!(current_recorder().is_none());
        {
            let _g1 = record_on_thread(&outer);
            assert!(Arc::ptr_eq(&current_recorder().unwrap(), &outer));
            {
                let _g2 = record_on_thread(&inner);
                assert!(Arc::ptr_eq(&current_recorder().unwrap(), &inner));
                assert!(freeze_current("inner failure"));
            }
            assert!(Arc::ptr_eq(&current_recorder().unwrap(), &outer));
        }
        assert!(current_recorder().is_none());
        assert!(inner.take_dump().is_some());
        assert!(outer.take_dump().is_none());
        assert!(!freeze_current("nobody listening"));
    }

    #[test]
    fn recorder_clock_defaults_to_zero() {
        let rec = FlightRecorder::new(2);
        assert_eq!(rec.now_ms(), 0);
        rec.set_clock(Arc::new(|| 42));
        assert_eq!(rec.now_ms(), 42);
    }
}
