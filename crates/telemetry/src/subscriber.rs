//! The global trace subscriber: where emitted events go.

use crate::level::Level;
use crate::metrics::MetricsRegistry;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where trace timestamps come from.
///
/// Default is wall time anchored at install. A design session running on
/// the virtual `SessionClock` should instead share that clock
/// ([`TraceClock::shared_ms`]) so trace timestamps advance only with
/// declared stalls/backoffs and the whole trace is deterministic.
#[derive(Clone, Default)]
pub enum TraceClock {
    /// Milliseconds of wall time since the subscriber was installed.
    #[default]
    System,
    /// An external millisecond counter (e.g. `SessionClock::now_ms`).
    SharedMs(Arc<dyn Fn() -> u64 + Send + Sync>),
}

impl TraceClock {
    /// A clock driven by an external `Fn() -> u64` millisecond counter.
    pub fn shared_ms(f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        TraceClock::SharedMs(Arc::new(f))
    }
}

impl std::fmt::Debug for TraceClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceClock::System => f.write_str("TraceClock::System"),
            TraceClock::SharedMs(_) => f.write_str("TraceClock::SharedMs(..)"),
        }
    }
}

enum ResolvedClock {
    System(Instant),
    SharedMs(Arc<dyn Fn() -> u64 + Send + Sync>),
}

impl ResolvedClock {
    fn now_ms(&self) -> u64 {
        match self {
            ResolvedClock::System(t0) => t0.elapsed().as_millis() as u64,
            ResolvedClock::SharedMs(f) => f(),
        }
    }
}

/// Where trace lines are written.
pub enum TraceSink {
    /// Append-less truncating write to a file (created or overwritten).
    File(PathBuf),
    /// Any writer (a `Vec<u8>`, a socket, a test pipe).
    Writer(Box<dyn Write + Send>),
    /// An in-memory line buffer, readable through
    /// [`TelemetryGuard::memory`].
    Memory,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSink::File(p) => write!(f, "TraceSink::File({p:?})"),
            TraceSink::Writer(_) => f.write_str("TraceSink::Writer(..)"),
            TraceSink::Memory => f.write_str("TraceSink::Memory"),
        }
    }
}

enum Sink {
    Stream(Mutex<Box<dyn Write + Send>>),
    Memory(Mutex<Vec<String>>),
}

/// What to install. `Default` is everything off: no trace sink, no
/// metrics, level from `CLIFFGUARD_LOG` (else `Info`), wall clock.
#[derive(Debug)]
pub struct TelemetryConfig {
    /// Trace destination; `None` disables tracing entirely.
    pub trace: Option<TraceSink>,
    /// Maximum level recorded (events above it are dropped at the
    /// fast-path check).
    pub level: Level,
    /// Timestamp source for trace lines.
    pub clock: TraceClock,
    /// Whether to install a fresh [`MetricsRegistry`].
    pub metrics: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            trace: None,
            level: Level::from_env().flatten().unwrap_or(Level::Info),
            clock: TraceClock::default(),
            metrics: false,
        }
    }
}

/// The installed subscriber state (crate-internal).
pub(crate) struct Shared {
    pub(crate) level: Level,
    clock: ResolvedClock,
    sink: Sink,
}

impl Shared {
    pub(crate) fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Writes one finished trace line (no trailing newline expected).
    pub(crate) fn write_line(&self, line: &str) {
        match &self.sink {
            Sink::Stream(w) => {
                let mut w = w.lock().unwrap_or_else(|e| e.into_inner());
                // A failing trace sink must never take the session down;
                // drop the line instead.
                let _ = writeln!(w, "{line}");
            }
            Sink::Memory(buf) => {
                buf.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(line.to_string());
            }
        }
    }

    fn flush(&self) {
        if let Sink::Stream(w) = &self.sink {
            let _ = w.lock().unwrap_or_else(|e| e.into_inner()).flush();
        }
    }
}

/// Read handle over an in-memory trace ([`TraceSink::Memory`]).
pub struct MemoryTrace {
    shared: Arc<Shared>,
}

impl MemoryTrace {
    /// The trace lines recorded so far, in emission order.
    pub fn lines(&self) -> Vec<String> {
        match &self.shared.sink {
            Sink::Memory(buf) => buf.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            Sink::Stream(_) => Vec::new(),
        }
    }

    /// The whole trace as one newline-terminated string — the exact
    /// bytes a [`TraceSink::File`] run would have produced.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for l in self.lines() {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

/// Uninstalls the subscriber and registry when dropped, restoring the
/// disabled fast path.
pub struct TelemetryGuard {
    shared: Option<Arc<Shared>>,
    registry: Option<Arc<MetricsRegistry>>,
}

impl TelemetryGuard {
    /// The in-memory trace, when installed with [`TraceSink::Memory`].
    pub fn memory(&self) -> Option<MemoryTrace> {
        let shared = self.shared.as_ref()?;
        match shared.sink {
            Sink::Memory(_) => Some(MemoryTrace {
                shared: Arc::clone(shared),
            }),
            Sink::Stream(_) => None,
        }
    }

    /// The metrics registry this guard installed, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// Flushes a stream sink (files are also flushed on drop).
    pub fn flush(&self) {
        if let Some(s) = &self.shared {
            s.flush();
        }
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        crate::set_globals(None, None);
        if let Some(s) = &self.shared {
            s.flush();
        }
    }
}

/// Installs a trace subscriber and/or metrics registry process-wide.
///
/// The returned guard owns the installation: dropping it flushes the
/// sink and restores the disabled state. Installing over a live guard
/// replaces it (last install wins); the replaced guard's drop then
/// disables everything, so in practice hold exactly one guard at a time
/// — tests serialize on a lock.
pub fn install(config: TelemetryConfig) -> std::io::Result<TelemetryGuard> {
    let TelemetryConfig {
        trace,
        level,
        clock,
        metrics,
    } = config;
    let clock = match clock {
        TraceClock::System => ResolvedClock::System(Instant::now()),
        TraceClock::SharedMs(f) => ResolvedClock::SharedMs(f),
    };
    let shared = match trace {
        None => None,
        Some(sink) => {
            let sink = match sink {
                TraceSink::File(path) => {
                    let file = std::fs::File::create(&path)?;
                    Sink::Stream(Mutex::new(Box::new(std::io::BufWriter::new(file))))
                }
                TraceSink::Writer(w) => Sink::Stream(Mutex::new(w)),
                TraceSink::Memory => Sink::Memory(Mutex::new(Vec::new())),
            };
            Some(Arc::new(Shared { level, clock, sink }))
        }
    };
    let registry = metrics.then(|| Arc::new(MetricsRegistry::default()));
    crate::set_globals(shared.clone(), registry.clone());
    Ok(TelemetryGuard { shared, registry })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock::GLOBALS;
    use crate::{enabled, event, metrics_enabled};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn disabled_by_default_and_after_drop() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled(Level::Error));
        assert!(!metrics_enabled());
        let guard = install(TelemetryConfig {
            trace: Some(TraceSink::Memory),
            level: Level::Info,
            metrics: true,
            ..TelemetryConfig::default()
        })
        .unwrap();
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert!(metrics_enabled());
        drop(guard);
        assert!(!enabled(Level::Error));
        assert!(!metrics_enabled());
    }

    #[test]
    fn memory_sink_collects_lines_with_shared_clock() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let ticks = Arc::new(AtomicU64::new(7));
        let t2 = Arc::clone(&ticks);
        let guard = install(TelemetryConfig {
            trace: Some(TraceSink::Memory),
            level: Level::Debug,
            clock: TraceClock::shared_ms(move || t2.load(Ordering::Relaxed)),
            metrics: false,
        })
        .unwrap();
        event(Level::Info, "cliffguard.test.a").emit();
        ticks.store(19, Ordering::Relaxed);
        event(Level::Debug, "cliffguard.test.b").u64("k", 3).emit();
        event(Level::Trace, "cliffguard.test.filtered").emit();
        let lines = guard.memory().unwrap().lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"t":7,"kind":"event","level":"info","name":"cliffguard.test.a","fields":{}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"t":19,"kind":"event","level":"debug","name":"cliffguard.test.b","fields":{"k":3}}"#
        );
    }

    #[test]
    fn writer_sink_receives_jsonl() {
        let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        // A shared Vec<u8> writer we can read back after dropping.
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let guard = install(TelemetryConfig {
            trace: Some(TraceSink::Writer(Box::new(buf.clone()))),
            level: Level::Info,
            clock: TraceClock::shared_ms(|| 0),
            metrics: false,
        })
        .unwrap();
        event(Level::Warn, "cliffguard.test.w")
            .str("why", "x\ny")
            .emit();
        drop(guard);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"t\":0,\"kind\":\"event\",\"level\":\"warn\",\"name\":\"cliffguard.test.w\",\"fields\":{\"why\":\"x\\ny\"}}\n"
        );
    }
}
