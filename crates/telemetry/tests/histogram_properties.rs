//! Property tests for the metrics histograms.
//!
//! The three contracts the ISSUE pins down: bucket counts account for
//! every observation, quantiles are monotone in `q`, and merging
//! per-registry snapshots reproduces the single-registry histogram.

use cliffguard_telemetry::metrics::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Observations spanning the histogram's whole dynamic range, including
/// the underflow (zero/negative/tiny) and overflow (huge) buckets.
fn observations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e21f64..1.0e21, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_counts_sum_to_observation_count(values in observations()) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        let bucketed: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucketed, s.count);
        // Sparse form really is sparse and sorted.
        for w in s.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for &(_, n) in &s.buckets {
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in observations()) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let qs: Vec<f64> = (0..=20).map(|i| s.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        prop_assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
        prop_assert!(s.quantile(0.0) >= s.min);
        prop_assert!(s.quantile(1.0) <= s.max);
    }

    #[test]
    fn merged_snapshots_equal_single_registry(
        values in observations(),
        split_seed in 0u64..u64::MAX,
    ) {
        // Interleave arbitrarily between two registries; one registry
        // sees everything. The merged snapshot must agree exactly on
        // counts, buckets, min/max, and therefore on every quantile.
        let all = MetricsRegistry::default();
        let left = MetricsRegistry::default();
        let right = MetricsRegistry::default();
        let mut lcg = split_seed;
        for &v in &values {
            all.histogram("h").record(v);
            all.counter("n").incr(1);
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let side = if lcg >> 63 == 0 { &left } else { &right };
            side.histogram("h").record(v);
            side.counter("n").incr(1);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        let expect = all.snapshot();
        prop_assert_eq!(merged.counter("n"), expect.counter("n"));
        let (mh, eh) = (merged.histogram("h").unwrap(), expect.histogram("h").unwrap());
        prop_assert_eq!(mh.count, eh.count);
        prop_assert_eq!(&mh.buckets, &eh.buckets);
        prop_assert_eq!(mh.min, eh.min);
        prop_assert_eq!(mh.max, eh.max);
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(mh.quantile(q), eh.quantile(q), "q={}", q);
        }
        // Sums differ only by float-addition order.
        let scale = 1.0f64.max(eh.sum.abs());
        prop_assert!((mh.sum - eh.sum).abs() / scale < 1e-9);
    }
}
