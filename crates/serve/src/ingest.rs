//! Per-tenant streaming-ingest sessions behind the `ingest` verb.
//!
//! An [`IngestSession`] pairs a [`LogStream`] (chunked statement
//! splitting + parse cache) with an [`OnlineAdvisor`] (sliding windows,
//! incremental δ, Γ trigger) for one tenant. The daemon feeds it each
//! `ingest` frame synchronously — no worker pool, no drain barrier — and
//! persists [`to_json`](IngestSession::to_json) after every frame, so a
//! killed daemon restarted on the same state directory resumes the
//! session mid-stream and replays the remaining chunks to a
//! byte-identical window-audit and trigger history.
//!
//! The persistence surface is exact by construction: window workloads are
//! integer-weighted (raw counts survive JSON), δ history travels as
//! IEEE-754 bit patterns, and the stream carry is a byte array (a chunk
//! may end mid-UTF-8-sequence, so it is *not* a JSON string).

use crate::protocol::{GammaSpec, IngestRequest};
use cliffguard_core::gamma::GammaPolicy;
use cliffguard_core::{
    AdvisorSnapshot, OnlineAdvisor, OnlineAdvisorConfig, WindowAudit, WindowPolicy,
    DEFAULT_INTERN_CAPACITY,
};
use cliffguard_resilience::SessionClock;
use cliffguard_storage::Catalog;
use cliffguard_workload::{LogStream, Query, StreamStats, Workload};
use serde::{map_get, Deserialize, Serialize, Value};
use std::sync::Arc;

/// One tenant's live streaming-ingest state.
#[derive(Debug)]
pub struct IngestSession {
    tenant: String,
    /// The catalog as received on the wire, persisted verbatim so the
    /// snapshot re-parses with identical inputs.
    catalog_value: Value,
    catalog: Catalog,
    stream: LogStream,
    advisor: OnlineAdvisor,
    /// Interner-compaction threshold (distinct queries); once the
    /// stream's intern table exceeds it after a frame, the table is
    /// compacted down to the advisor's retained windows so an unbounded
    /// tape cannot grow memory without limit.
    intern_capacity: usize,
}

impl IngestSession {
    /// Opens a session from its first frame. Fails (with a wire-ready
    /// reason) when the frame carries no catalog, a bad catalog, or
    /// drift knobs the advisor rejects.
    pub fn create(req: &IngestRequest, clock: SessionClock) -> Result<Self, String> {
        let Some(catalog_value) = &req.catalog else {
            return Err(format!(
                "ingest: no session for tenant `{}` — the first frame must carry a catalog",
                req.tenant
            ));
        };
        let mut catalog =
            Catalog::from_value(catalog_value).map_err(|e| format!("ingest: bad catalog: {e}"))?;
        catalog.rebuild_index();
        let config = advisor_config(&catalog, req);
        Ok(Self {
            tenant: req.tenant.clone(),
            catalog_value: catalog_value.clone(),
            catalog,
            stream: LogStream::new(),
            advisor: OnlineAdvisor::new(config, clock),
            intern_capacity: DEFAULT_INTERN_CAPACITY,
        })
    }

    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Feeds one chunk (boundaries may fall anywhere); `eof` flushes the
    /// trailing partial line and closes the open window. Returns the
    /// audits of every window this frame closed, in close order.
    pub fn feed(&mut self, chunk: &str, eof: bool) -> Vec<WindowAudit> {
        let mut audits = Vec::new();
        let advisor = &mut self.advisor;
        {
            let mut sink = |ts: u64, _id, q: &Arc<Query>| audits.extend(advisor.observe(ts, q));
            self.stream.feed(chunk.as_bytes(), &self.catalog, &mut sink);
            if eof {
                self.stream.finish(&self.catalog, &mut sink);
            }
        }
        if eof {
            audits.extend(advisor.finish());
        }
        // Bound the intern table across an unbounded tape: compaction is
        // invisible to the audit stream (dropped statements re-parse and
        // re-intern on their next arrival), so running it per frame keeps
        // memory flat without perturbing determinism.
        self.advisor
            .compact_stream(&mut self.stream, self.intern_capacity);
        audits
    }

    /// Overrides the interner-compaction threshold (tests use a tiny
    /// bound to exercise compaction on small tapes).
    pub fn set_intern_capacity(&mut self, capacity: usize) {
        self.intern_capacity = capacity.max(1);
    }

    /// Distinct queries currently held by the stream's intern table.
    pub fn interned_queries(&self) -> usize {
        self.stream.interner().len()
    }

    /// The drift advisor (trigger history, armed state, window count).
    pub fn advisor(&self) -> &OnlineAdvisor {
        &self.advisor
    }

    /// The stream's parse counters.
    pub fn stats(&self) -> &StreamStats {
        self.stream.stats()
    }

    /// Serializes the session's restorable state as one JSON document.
    pub fn to_json(&self) -> String {
        let cfg = self.advisor.config();
        let mut m = vec![
            ("version".into(), Value::U64(1)),
            ("tenant".into(), Value::Str(self.tenant.clone())),
            ("catalog".into(), self.catalog_value.clone()),
        ];
        match cfg.window {
            WindowPolicy::Count(n) => m.push(("window_count".into(), Value::U64(n as u64))),
            WindowPolicy::LogTime(s) => m.push(("window_log_secs".into(), Value::U64(s))),
            WindowPolicy::ClockTime(s) => m.push(("window_clock_secs".into(), Value::U64(s))),
        }
        match cfg.gamma {
            GammaPolicy::Fixed(g) => m.push(("gamma_bits".into(), Value::U64(g.to_bits()))),
            // Every non-fixed policy the wire can produce is `auto`.
            _ => m.push(("gamma".into(), Value::Str("auto".into()))),
        }
        m.push(("warmup".into(), Value::U64(cfg.warmup as u64)));
        m.push(("cooldown".into(), Value::U64(cfg.cooldown as u64)));
        m.push((
            "carry".into(),
            Value::Seq(
                self.stream
                    .carry()
                    .iter()
                    .map(|&b| Value::U64(b as u64))
                    .collect(),
            ),
        ));
        let stats = self.stream.stats();
        m.push((
            "stats".into(),
            Value::Map(vec![
                ("parsed".into(), Value::U64(stats.parsed)),
                ("skipped_sql".into(), Value::U64(stats.skipped_sql)),
                (
                    "skipped_malformed".into(),
                    Value::U64(stats.skipped_malformed),
                ),
                ("lines".into(), Value::U64(stats.lines)),
                ("bytes".into(), Value::U64(stats.bytes)),
            ]),
        ));
        m.push((
            "cache_resets".into(),
            Value::U64(self.stream.cache_resets()),
        ));
        m.push((
            "advisor".into(),
            snapshot_to_value(&self.advisor.snapshot()),
        ));
        serde_json::to_string(&Value::Map(m)).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Rebuilds a session from [`to_json`](Self::to_json). The restored
    /// advisor state is bit-identical to the live one (integer window
    /// counts, bit-pattern δ history), so replaying the remaining chunks
    /// yields the same audits and triggers as an uninterrupted run.
    pub fn from_json(json: &str, clock: SessionClock) -> Result<Self, String> {
        let v: Value = serde_json::from_str(json).map_err(|e| format!("bad JSON: {e}"))?;
        let m = v.as_map().ok_or("snapshot must be a JSON object")?;
        let version = u64::from_value(map_get(m, "version")).map_err(|e| e.to_string())?;
        if version != 1 {
            return Err(format!("unsupported ingest snapshot version {version}"));
        }
        let tenant = String::from_value(map_get(m, "tenant")).map_err(|e| e.to_string())?;
        let catalog_value = map_get(m, "catalog").clone();
        let mut catalog =
            Catalog::from_value(&catalog_value).map_err(|e| format!("bad catalog: {e}"))?;
        catalog.rebuild_index();

        let mut config = OnlineAdvisorConfig::new(catalog.column_count());
        config.window = match (
            map_get(m, "window_count"),
            map_get(m, "window_log_secs"),
            map_get(m, "window_clock_secs"),
        ) {
            (Value::U64(n), ..) => WindowPolicy::Count(*n as usize),
            (_, Value::U64(s), _) => WindowPolicy::LogTime(*s),
            (_, _, Value::U64(s)) => WindowPolicy::ClockTime(*s),
            _ => return Err("snapshot carries no window policy".into()),
        };
        config.gamma = match map_get(m, "gamma_bits") {
            Value::U64(bits) => GammaPolicy::Fixed(f64::from_bits(*bits)),
            _ => GammaPolicy::KMaxPastDeltas(1.5),
        };
        config.warmup = u64::from_value(map_get(m, "warmup")).map_err(|e| e.to_string())? as usize;
        config.cooldown =
            u64::from_value(map_get(m, "cooldown")).map_err(|e| e.to_string())? as usize;

        let carry: Vec<u64> = Vec::from_value(map_get(m, "carry")).map_err(|e| e.to_string())?;
        let carry: Vec<u8> = carry.into_iter().map(|b| b as u8).collect();
        let sm = map_get(m, "stats")
            .as_map()
            .ok_or("snapshot stats must be an object")?;
        let stat = |key: &str| u64::from_value(map_get(sm, key)).map_err(|e| e.to_string());
        let stats = StreamStats {
            parsed: stat("parsed")?,
            skipped_sql: stat("skipped_sql")?,
            skipped_malformed: stat("skipped_malformed")?,
            lines: stat("lines")?,
            bytes: stat("bytes")?,
        };
        let cache_resets =
            u64::from_value(map_get(m, "cache_resets")).map_err(|e| e.to_string())?;
        let snapshot = snapshot_from_value(map_get(m, "advisor"))?;
        Ok(Self {
            tenant,
            catalog_value,
            catalog,
            stream: LogStream::restore(carry, stats, cache_resets),
            advisor: OnlineAdvisor::restore(config, clock, snapshot),
            intern_capacity: DEFAULT_INTERN_CAPACITY,
        })
    }
}

/// Maps the wire knobs onto an advisor config over `catalog`'s columns.
fn advisor_config(catalog: &Catalog, req: &IngestRequest) -> OnlineAdvisorConfig {
    let mut config = OnlineAdvisorConfig::new(catalog.column_count());
    config.window = match (req.window, req.window_secs) {
        (Some(n), _) => WindowPolicy::Count(n as usize),
        (None, Some(s)) => WindowPolicy::LogTime(s),
        (None, None) => WindowPolicy::Count(64),
    };
    config.gamma = match req.gamma {
        GammaSpec::Auto => GammaPolicy::KMaxPastDeltas(1.5),
        GammaSpec::Fixed(g) => GammaPolicy::Fixed(g),
    };
    config.warmup = req.warmup as usize;
    config.cooldown = req.cooldown as usize;
    config
}

fn workload_to_value(w: &Workload) -> Value {
    w.to_value()
}

fn workload_from_value(v: &Value) -> Result<Workload, String> {
    let mut w = Workload::from_value(v).map_err(|e| e.to_string())?;
    // The signature index is `#[serde(skip)]`; rebuild it so later
    // arrivals still accumulate instead of duplicating entries.
    w.rebuild_index();
    Ok(w)
}

fn snapshot_to_value(s: &AdvisorSnapshot) -> Value {
    Value::Map(vec![
        ("window_index".into(), Value::U64(s.window_index)),
        ("current".into(), workload_to_value(&s.current)),
        (
            "window_start_ts".into(),
            match s.window_start_ts {
                Some(ts) => Value::U64(ts),
                None => Value::Null,
            },
        ),
        (
            // ClockTime policy only: ms already consumed by the open
            // window, re-anchored against the restoring daemon's clock.
            "window_elapsed_clock_ms".into(),
            match s.window_elapsed_clock_ms {
                Some(ms) => Value::U64(ms),
                None => Value::Null,
            },
        ),
        ("last_ts".into(), Value::U64(s.last_ts)),
        (
            "prev".into(),
            match &s.prev {
                Some(w) => workload_to_value(w),
                None => Value::Null,
            },
        ),
        (
            "history".into(),
            Value::Seq(s.history.iter().map(workload_to_value).collect()),
        ),
        (
            // δ values as bit patterns: the Γ resolution a resumed run
            // performs must see the exact floats the live run retained.
            "past_delta_bits".into(),
            Value::Seq(
                s.past_deltas
                    .iter()
                    .map(|d| Value::U64(d.to_bits()))
                    .collect(),
            ),
        ),
        ("cooldown_left".into(), Value::U64(s.cooldown_left)),
        ("armed".into(), Value::Bool(s.armed)),
        (
            "triggers".into(),
            Value::Seq(s.triggers.iter().map(|&t| Value::U64(t)).collect()),
        ),
    ])
}

fn snapshot_from_value(v: &Value) -> Result<AdvisorSnapshot, String> {
    let m = v.as_map().ok_or("advisor snapshot must be an object")?;
    let u = |key: &str| u64::from_value(map_get(m, key)).map_err(|e| e.to_string());
    let prev = match map_get(m, "prev") {
        Value::Null => None,
        v => Some(workload_from_value(v)?),
    };
    let history = match map_get(m, "history") {
        Value::Seq(items) => items
            .iter()
            .map(workload_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("advisor history must be a sequence".into()),
    };
    let delta_bits: Vec<u64> =
        Vec::from_value(map_get(m, "past_delta_bits")).map_err(|e| e.to_string())?;
    Ok(AdvisorSnapshot {
        window_index: u("window_index")?,
        current: workload_from_value(map_get(m, "current"))?,
        window_start_ts: match map_get(m, "window_start_ts") {
            Value::Null => None,
            v => Some(u64::from_value(v).map_err(|e| e.to_string())?),
        },
        window_elapsed_clock_ms: match map_get(m, "window_elapsed_clock_ms") {
            Value::Null => None,
            v => Some(u64::from_value(v).map_err(|e| e.to_string())?),
        },
        last_ts: u("last_ts")?,
        prev,
        history,
        past_deltas: delta_bits.into_iter().map(f64::from_bits).collect(),
        cooldown_left: u("cooldown_left")?,
        armed: bool::from_value(map_get(m, "armed")).map_err(|e| e.to_string())?,
        triggers: Vec::from_value(map_get(m, "triggers")).map_err(|e| e.to_string())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;
    use cliffguard_workload::{LogTape, LogTapeConfig};

    fn small_fixture() -> (Value, LogTape) {
        testdata::ingest_fixture(LogTapeConfig {
            tables: 2,
            cols_per_table: 4,
            windows: 6,
            window_len: 8,
            window_secs: 60,
            episodes: vec![3],
            statements_per_regime: 3,
            header_noise: false,
            ..LogTapeConfig::default()
        })
    }

    fn first_frame(tenant: &str, catalog: Value, tape: &LogTape) -> IngestRequest {
        let mut req = IngestRequest::new(tenant, catalog, "");
        req.window = Some(tape.config().window_len as u64);
        req.gamma = GammaSpec::Fixed(tape.suggested_gamma());
        req
    }

    #[test]
    fn create_requires_a_catalog() {
        let req = IngestRequest::chunk_only("acme", "1\tSELECT c0 FROM t0\n");
        let err = IngestSession::create(&req, SessionClock::virtual_clock()).unwrap_err();
        assert!(err.contains("must carry a catalog"), "{err}");
    }

    #[test]
    fn feed_windows_and_triggers_on_the_scripted_episode() {
        let (catalog, tape) = small_fixture();
        let req = first_frame("acme", catalog, &tape);
        let mut sess = IngestSession::create(&req, SessionClock::virtual_clock()).unwrap();
        let audits = sess.feed(tape.text(), true);
        assert_eq!(audits.len(), tape.config().windows);
        let fired: Vec<u64> = audits
            .iter()
            .filter(|a| a.triggered)
            .map(|a| a.index)
            .collect();
        assert_eq!(fired, vec![3], "exactly the episode window fires");
        assert_eq!(sess.advisor().triggers(), &[3]);
        assert_eq!(
            sess.stats().parsed as usize,
            tape.config().windows * tape.config().window_len
        );
    }

    #[test]
    fn snapshot_round_trip_replays_byte_identically() {
        let (catalog, tape) = small_fixture();
        let text = tape.text();
        let req = first_frame("acme", catalog, &tape);

        let want: Vec<String> = {
            let mut s = IngestSession::create(&req, SessionClock::virtual_clock()).unwrap();
            s.feed(text, true).iter().map(|a| a.line()).collect()
        };

        // Kill after an awkward split (mid-line; the tape is ASCII, so any
        // byte offset is a char boundary), resume from JSON, finish.
        let cut = text.len() / 2 + 3;
        let mut first = IngestSession::create(&req, SessionClock::virtual_clock()).unwrap();
        let mut got: Vec<String> = first
            .feed(&text[..cut], false)
            .iter()
            .map(|a| a.line())
            .collect();
        let json = first.to_json();
        drop(first);
        let mut resumed = IngestSession::from_json(&json, SessionClock::virtual_clock()).unwrap();
        assert_eq!(resumed.tenant(), "acme");
        got.extend(resumed.feed(&text[cut..], true).iter().map(|a| a.line()));
        assert_eq!(got, want, "kill/resume must replay byte-identically");
        assert_eq!(resumed.advisor().triggers(), &[3]);
    }

    #[test]
    fn feed_compacts_the_interner_without_perturbing_audits() {
        // Four one-way regimes: statements of regimes the advisor's
        // window history has forgotten are *gone*, so a bounded interner
        // must end up strictly smaller than an unbounded one.
        let (catalog, tape) = testdata::ingest_fixture(LogTapeConfig {
            tables: 4,
            cols_per_table: 4,
            windows: 12,
            window_len: 8,
            window_secs: 60,
            episodes: vec![3, 6, 9],
            statements_per_regime: 3,
            header_noise: false,
            ..LogTapeConfig::default()
        });
        let text = tape.text();
        let req = first_frame("acme", catalog, &tape);

        let mut plain = IngestSession::create(&req, SessionClock::virtual_clock()).unwrap();
        let want: Vec<String> = plain.feed(text, true).iter().map(|a| a.line()).collect();

        // A tiny compaction bound, fed in small frames so the bound is
        // crossed mid-stream: the intern table stays below the plain
        // run's and the audit stream is byte-identical.
        let mut tight = IngestSession::create(&req, SessionClock::virtual_clock()).unwrap();
        tight.set_intern_capacity(2);
        let mut got: Vec<String> = Vec::new();
        for chunk in text.as_bytes().chunks(64) {
            let chunk = std::str::from_utf8(chunk).unwrap();
            got.extend(tight.feed(chunk, false).iter().map(|a| a.line()));
        }
        got.extend(tight.feed("", true).iter().map(|a| a.line()));
        assert_eq!(got, want, "compaction must be invisible to the audits");
        assert!(
            tight.interned_queries() < plain.interned_queries(),
            "tight={} plain={}",
            tight.interned_queries(),
            plain.interned_queries()
        );
        assert!(tight.interned_queries() <= tight.advisor().retained_signatures().len());
    }

    #[test]
    fn from_json_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "not json",
            "[]",
            r#"{"version":2}"#,
            r#"{"version":1,"tenant":"t"}"#,
        ] {
            assert!(
                IngestSession::from_json(bad, SessionClock::virtual_clock()).is_err(),
                "must reject: {bad}"
            );
        }
    }
}
