//! The `cliffguard serve` daemon: intake, admission, drain, recovery.
//!
//! One intake thread reads NDJSON frames and assigns each a sequence
//! number; design requests are admitted onto the shared worker pool, and
//! every other verb (`status`/`metrics`/`dump`/`drain`/`shutdown`) — plus
//! end of input — is a **drain barrier**: the daemon waits for all
//! admitted sessions in admission order, emits their responses, and only
//! then answers the verb.
//!
//! # Flight recorder
//!
//! Every admitted session carries its own bounded
//! [`FlightRecorder`](cliffguard_telemetry::FlightRecorder) retaining the
//! last trace events at **all** levels. When a session degrades (frozen
//! by the session core) or its worker panics (frozen by the submit
//! closure's catch), the drain barrier persists the dump as
//! `flight-<tenant>-<seq>.jsonl` in the state directory and the `dump`
//! verb serves the most recent one. In virtual-time mode the dump is
//! byte-identical across reruns and worker counts.
//!
//! # Determinism contract
//!
//! The output stream is a pure function of the input tape and the daemon
//! configuration (with `virtual_time`), independent of worker count and
//! completion order:
//!
//! * responses for design requests are emitted **only at barriers**, in
//!   admission (`seq`) order;
//! * queue occupancy changes only at admissions and barriers — both
//!   tape-driven — so a "queue full" rejection is deterministic;
//! * each session runs on its own fresh virtual clock and seeded sampler,
//!   so concurrent tenants cannot perturb each other's descents.
//!
//! # Recovery
//!
//! With a state directory, every admitted request is persisted before it
//! runs and its checkpoints are persisted as the descent progresses. A
//! daemon that dies mid-session leaves those sessions *pending*; the next
//! daemon started on the same directory re-admits them (in original
//! admission order, before reading any new input) and their responses are
//! emitted with `"resumed": true` — final design and audit trail
//! bit-identical to an uninterrupted run, per the session-layer resume
//! guarantee.

use crate::ingest::IngestSession;
use crate::protocol::{
    parse_request, DesignStatus, FlightInfo, IngestRequest, MetricsFormat, Request, Response,
    MAX_FRAME_BYTES,
};
use crate::runner::{run_design, RunOutcome, RunnerOptions};
use crate::scheduler::WorkerPool;
use crate::store::CheckpointStore;
use crate::tenant::TenantRegistry;
use cliffguard_resilience::SessionClock;
use cliffguard_telemetry::{
    self as telemetry, render_prometheus, FlightRecorder, Level, DEFAULT_FLIGHT_CAPACITY,
};
use serde::Value;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Daemon configuration (the `cliffguard serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to persist session state; `None` disables durability (a kill
    /// then loses in-flight sessions).
    pub state_dir: Option<PathBuf>,
    /// Worker threads running design sessions concurrently.
    pub max_concurrent: usize,
    /// Admission cap: in-flight (admitted, not yet drained) sessions
    /// beyond this are rejected with a reason.
    pub max_queue: usize,
    /// Default per-session deadline (ms) for requests that carry none.
    pub tenant_deadline_ms: Option<u64>,
    /// Persist every k-th checkpoint (1 = every iteration).
    pub checkpoint_every: usize,
    /// Run sessions on fresh virtual clocks (deterministic output).
    pub virtual_time: bool,
    /// Fault-plan spec applied to requests that carry none (the daemon's
    /// `CLIFFGUARD_FAULTS`, resolved once at startup).
    pub default_faults: Option<String>,
    /// Test hook: abort every session before this 0-based iteration, as
    /// if the daemon were killed there. Interrupted sessions persist
    /// their checkpoint and emit **no** response; a restart on the same
    /// state directory completes them.
    pub kill_after_iterations: Option<usize>,
    /// External kill switch shared with a signal handler: raised →
    /// sessions checkpoint and the daemon stops admitting.
    pub stop: Option<Arc<AtomicBool>>,
    /// Directory of the persistent epoch cache (`--epoch-cache`): design
    /// sessions warm-start their cost kernels from latency snapshots
    /// persisted by earlier runs. `None` disables warm starts.
    pub epoch_cache: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = cliffguard_parallel::current_threads();
        Self {
            state_dir: None,
            max_concurrent: threads,
            max_queue: threads * 4,
            tenant_deadline_ms: None,
            checkpoint_every: 1,
            virtual_time: false,
            default_faults: None,
            kill_after_iterations: None,
            stop: None,
            epoch_cache: None,
        }
    }
}

struct InFlight {
    seq: u64,
    tenant: String,
    resumed: bool,
    /// The session's flight recorder: frozen by the session on
    /// degradation (via `telemetry::freeze_current`) or by the worker's
    /// panic catch, then collected at the drain barrier.
    recorder: Arc<FlightRecorder>,
}

/// Best-effort panic-payload rendering, matching the worker pool's own
/// downcast so the frozen flight dump and the wire response carry the
/// same message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// One frame read from the wire by [`read_frame`].
enum Frame {
    /// A complete line (newline stripped) within the size limit.
    Line(String),
    /// A frame refused at the I/O layer (oversize or not UTF-8). It still
    /// consumes a sequence number and gets an `error` response.
    Refused(String),
    /// End of input.
    Eof,
}

/// Reads one newline-delimited frame without ever buffering more than
/// [`MAX_FRAME_BYTES`] (plus the reader's own block): once a frame
/// exceeds the limit, the rest of it is consumed and *discarded*, so a
/// client streaming gigabytes without a newline costs counting, not
/// memory. Invalid UTF-8 is likewise refused here instead of surfacing as
/// an I/O error that would end the stream.
fn read_frame<R: BufRead>(input: &mut R) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversize = 0usize; // total frame length, once past the limit
    let mut saw_any = false;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(Frame::Eof);
            }
            break;
        }
        saw_any = true;
        let (take, saw_newline) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (chunk.len(), false),
        };
        if oversize > 0 {
            oversize += take;
        } else if buf.len() + take > MAX_FRAME_BYTES {
            oversize = buf.len() + take;
            buf = Vec::new(); // drop what was buffered; the frame is refused
        } else {
            buf.extend_from_slice(&chunk[..take]);
        }
        input.consume(take + usize::from(saw_newline));
        if saw_newline {
            break;
        }
    }
    if oversize > 0 {
        return Ok(Frame::Refused(format!(
            "frame of {oversize} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Frame::Line(line)),
        Err(_) => Ok(Frame::Refused("frame is not valid UTF-8".into())),
    }
}

/// A running advisor-as-a-service instance. Feed it frames with
/// [`run`](Daemon::run) (stdin/stdout or any reader/writer pair) or
/// [`serve_tcp`](Daemon::serve_tcp).
pub struct Daemon {
    config: ServeConfig,
    store: Option<CheckpointStore>,
    pool: WorkerPool<RunOutcome>,
    tenants: TenantRegistry,
    in_flight: Vec<InFlight>,
    /// Per-tenant streaming ingest sessions, keyed by tenant. Handled
    /// synchronously (no pool, no barrier); with a state directory each
    /// session is persisted after every frame and lazily reloaded, so
    /// kill/resume replays the trigger history byte-identically.
    ingests: HashMap<String, IngestSession>,
    next_seq: u64,
    completed: u64,
    /// Most recent flight-recorder dump collected at a drain barrier,
    /// served by the `dump` verb.
    last_flight: Option<FlightInfo>,
}

impl Daemon {
    /// Builds the daemon and re-admits any pending sessions found in the
    /// state directory (their responses are emitted at the first
    /// barrier).
    pub fn new(config: ServeConfig) -> io::Result<Self> {
        let store = match &config.state_dir {
            Some(dir) => Some(CheckpointStore::open(dir.clone())?),
            None => None,
        };
        let next_seq = match &store {
            Some(s) => s.max_seq()? + 1,
            None => 1,
        };
        telemetry::event(Level::Info, "cliffguard.serve.start")
            .u64("max_concurrent", config.max_concurrent as u64)
            .u64("max_queue", config.max_queue as u64)
            .bool("durable", store.is_some())
            .emit();
        let mut daemon = Self {
            pool: WorkerPool::new(config.max_concurrent),
            store,
            config,
            tenants: TenantRegistry::new(),
            in_flight: Vec::new(),
            ingests: HashMap::new(),
            next_seq,
            completed: 0,
            last_flight: None,
        };
        daemon.recover()?;
        Ok(daemon)
    }

    fn runner_options(&self) -> RunnerOptions {
        RunnerOptions {
            virtual_time: self.config.virtual_time,
            tenant_deadline_ms: self.config.tenant_deadline_ms,
            checkpoint_every: self.config.checkpoint_every,
            stop: self.config.stop.clone(),
            abort_after_iterations: self.config.kill_after_iterations,
            // Envelopes persist their fault spec at admission, so the
            // runner never needs a daemon-level fallback.
            default_faults: None,
            // Set per submission: every session gets its own recorder.
            recorder: None,
            epoch_cache: self.config.epoch_cache.clone(),
        }
    }

    /// Prometheus text exposition of the live metrics registry (empty
    /// when telemetry metrics are not installed).
    fn prometheus_body() -> String {
        telemetry::registry()
            .map(|r| render_prometheus(&r.snapshot()))
            .unwrap_or_default()
    }

    /// Answers a raw `GET <path>` request line with a minimal HTTP/1.0
    /// response and closes. `/metrics` serves the Prometheus text
    /// format; everything else is a 404. Request headers (if the client
    /// sent any) are never read — the connection closes after the body,
    /// which HTTP/1.0 clients and Prometheus scrapers both accept.
    fn answer_http_scrape(line: &str, out: &mut dyn Write) -> io::Result<()> {
        let path = line.split_whitespace().nth(1).unwrap_or("");
        let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
            ("200 OK", Self::prometheus_body())
        } else {
            ("404 Not Found", String::new())
        };
        write!(
            out,
            "HTTP/1.0 {status}\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )?;
        out.flush()
    }

    /// Re-admits pending sessions from the store, original seq first.
    fn recover(&mut self) -> io::Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let pending = store.pending()?;
        if pending.is_empty() {
            return Ok(());
        }
        telemetry::event(Level::Info, "cliffguard.serve.recover")
            .u64("pending", pending.len() as u64)
            .emit();
        for p in pending {
            let Ok(Request::Design(req)) = parse_request(&p.request_line) else {
                // A corrupt envelope cannot be re-run; leave it on disk
                // for inspection rather than failing recovery.
                continue;
            };
            let row = self.tenants.stats_mut(&p.tenant);
            row.admitted += 1;
            row.resumed += 1;
            self.submit(p.seq, *req, p.checkpoint_json, true);
        }
        Ok(())
    }

    /// Queues one design session on the pool.
    fn submit(
        &mut self,
        seq: u64,
        req: crate::protocol::DesignRequest,
        checkpoint: Option<String>,
        resumed: bool,
    ) {
        let tenant = req.tenant.clone();
        let recorder = Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY));
        self.in_flight.push(InFlight {
            seq,
            tenant: tenant.clone(),
            resumed,
            recorder: recorder.clone(),
        });
        let mut opts = self.runner_options();
        opts.recorder = Some(recorder.clone());
        let store = self.store.clone();
        self.pool.submit(
            seq,
            Box::new(move || {
                // The inner catch exists only to freeze the session's
                // black box with the panic message; the payload is
                // re-raised so the pool still reports the panic as
                // `Err` and the drain barrier answers the tenant.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_design(&req, &opts, checkpoint.as_deref(), &mut |ckpt| {
                        if let Some(store) = &store {
                            let _ = store.save_checkpoint(&tenant, seq, ckpt);
                        }
                    })
                }));
                match result {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        recorder.freeze(&format!(
                            "worker panic: {}",
                            panic_message(payload.as_ref())
                        ));
                        std::panic::resume_unwind(payload);
                    }
                }
            }),
        );
    }

    /// Drain barrier: waits for every in-flight session in admission
    /// order, emits its response (interrupted sessions emit none), and
    /// frees all queue slots. Returns the number of design responses
    /// emitted.
    ///
    /// A broken writer (a TCP client that disconnected mid-drain) must
    /// not abort the barrier: every session still completes, persists its
    /// result, and updates tenant stats; the first write error is
    /// returned only after the queue is empty, so the daemon is left in a
    /// consistent state for the next connection.
    fn drain(&mut self, out: &mut dyn Write) -> io::Result<u64> {
        let mut emitted = 0u64;
        let mut write_err: Option<io::Error> = None;
        for flight in std::mem::take(&mut self.in_flight) {
            let InFlight {
                seq,
                tenant,
                resumed,
                recorder,
            } = flight;
            let (status, reason, report) = match self.pool.wait(seq) {
                Ok(RunOutcome::Done(report)) => match report.degraded.clone() {
                    Some(r) => (DesignStatus::Degraded, Some(r), Some(*report)),
                    None => (DesignStatus::Done, None, Some(*report)),
                },
                Ok(RunOutcome::Rejected(reason)) => (DesignStatus::Rejected, Some(reason), None),
                Ok(RunOutcome::Interrupted(ckpt)) => {
                    // The session checkpointed under a stop/kill: persist
                    // the final checkpoint and leave it pending — the
                    // restarted daemon owes the tenant this response.
                    if let Some(store) = &self.store {
                        let _ = store.save_checkpoint(&tenant, seq, &ckpt);
                    }
                    self.tenants.record_outcome(&tenant, "interrupted", None);
                    continue;
                }
                Err(panic_msg) => (
                    DesignStatus::Rejected,
                    Some(format!("internal error: {panic_msg}")),
                    None,
                ),
            };
            // A frozen recorder means the session hit its black-box
            // trigger — degradation (frozen by the session core) or a
            // worker panic (frozen by the submit closure). Persist the
            // dump and surface it through the `dump` verb. Clean and
            // rejected sessions never freeze, so `take_dump` is `None`.
            if let Some(dump) = recorder.take_dump() {
                if let Some(store) = &self.store {
                    let _ = store.save_flight(&tenant, seq, &dump.jsonl);
                }
                self.tenants.stats_mut(&tenant).flights += 1;
                if let Some(c) = telemetry::counter("cliffguard.serve.flight_dumps") {
                    c.incr(1);
                }
                self.last_flight = Some(FlightInfo {
                    tenant: tenant.clone(),
                    session_seq: seq,
                    reason: dump.reason,
                    flight: dump.jsonl,
                });
            }
            let outcome = status.name();
            let fingerprint = report.as_ref().map(|r| r.fingerprint);
            let response = Response::Design {
                seq,
                tenant: tenant.clone(),
                status,
                reason,
                report,
                resumed,
            };
            let line = response.to_line();
            if let Some(store) = &self.store {
                // Result first, then the wire: a crash between the two
                // re-emits nothing (the session is complete on disk) —
                // better than re-running a session the tenant saw finish.
                let _ = store.save_result(&tenant, seq, &line);
            }
            if write_err.is_none() {
                if let Err(e) = writeln!(out, "{line}") {
                    write_err = Some(e);
                }
            }
            self.tenants.record_outcome(&tenant, outcome, fingerprint);
            if status != DesignStatus::Rejected {
                self.completed += 1;
            }
            telemetry::event(Level::Info, "cliffguard.serve.session.end")
                .u64("seq", seq)
                .str("tenant", &tenant)
                .str("status", outcome)
                .emit();
            emitted += 1;
        }
        match write_err {
            Some(e) => Err(e),
            None => Ok(emitted),
        }
    }

    /// The clock handed to ingest sessions: virtual under
    /// `virtual_time` (deterministic `ClockTime` windows), system
    /// otherwise.
    fn ingest_clock(&self) -> SessionClock {
        if self.config.virtual_time {
            SessionClock::virtual_clock()
        } else {
            SessionClock::system()
        }
    }

    /// Handles one `ingest` frame synchronously: find (or lazily reload,
    /// or create) the tenant's streaming session, feed the chunk, persist
    /// the snapshot, answer. A catalog-bearing frame always starts a
    /// *fresh* session — any live session or persisted snapshot for the
    /// tenant (e.g. from a tape abandoned without `eof`) is discarded
    /// rather than silently continuing with the old window/Γ knobs. On
    /// `eof` the session is finalized and its snapshot removed.
    fn handle_ingest(&mut self, seq: u64, req: IngestRequest) -> Response {
        let tenant = req.tenant.clone();
        if req.catalog.is_some() {
            // Session reset: the frame's catalog and knobs win over any
            // stale state for this tenant.
            self.ingests.remove(&tenant);
            if let Some(store) = &self.store {
                let _ = store.remove_ingest(&tenant);
            }
            match IngestSession::create(&req, self.ingest_clock()) {
                Ok(session) => {
                    self.tenants.stats_mut(&tenant).admitted += 1;
                    self.ingests.insert(tenant.clone(), session);
                }
                Err(reason) => return Response::Error { seq, reason },
            }
        } else if !self.ingests.contains_key(&tenant) {
            // Lazily reload a snapshot a previous daemon persisted: the
            // resumed session replays the rest of the tape bit-identically
            // to an uninterrupted run.
            let loaded = self
                .store
                .as_ref()
                .and_then(|s| s.load_ingest(&tenant))
                .map(|json| IngestSession::from_json(&json, self.ingest_clock()));
            match loaded {
                Some(Ok(session)) => {
                    self.tenants.stats_mut(&tenant).resumed += 1;
                    self.ingests.insert(tenant.clone(), session);
                }
                Some(Err(e)) => {
                    return Response::Error {
                        seq,
                        reason: format!("ingest: corrupt snapshot for `{tenant}`: {e}"),
                    };
                }
                // `create` without a catalog yields the canonical
                // "first frame must carry a catalog" error.
                None => match IngestSession::create(&req, self.ingest_clock()) {
                    Ok(session) => {
                        self.tenants.stats_mut(&tenant).admitted += 1;
                        self.ingests.insert(tenant.clone(), session);
                    }
                    Err(reason) => return Response::Error { seq, reason },
                },
            }
        }
        let session = self.ingests.get_mut(&tenant).expect("just inserted");
        let audits = session.feed(&req.chunk, req.eof);
        for audit in &audits {
            telemetry::event(Level::Info, "cliffguard.serve.ingest.window")
                .u64("seq", seq)
                .str("tenant", &tenant)
                .u64("window", audit.index)
                .bool("triggered", audit.triggered)
                .emit();
        }
        let advisor = session.advisor();
        let stats = session.stats();
        let response = Response::Ingest {
            seq,
            tenant: tenant.clone(),
            windows: advisor.windows_closed(),
            audits: audits.iter().map(|a| a.line()).collect(),
            triggers: advisor.triggers().to_vec(),
            armed: advisor.armed(),
            cooldown: advisor.cooldown_left(),
            parsed: stats.parsed,
            skipped: stats.skipped_sql + stats.skipped_malformed,
            closed: req.eof,
        };
        if req.eof {
            self.ingests.remove(&tenant);
            if let Some(store) = &self.store {
                let _ = store.remove_ingest(&tenant);
            }
        } else if let Some(store) = &self.store {
            // Snapshot before the answer leaves: a crash after this point
            // resumes from a state the tenant's next frame expects.
            let json = self.ingests[&tenant].to_json();
            let _ = store.save_ingest(&tenant, &json);
        }
        response
    }

    fn status_snapshot(&self) -> Value {
        Value::Map(vec![
            (
                "max_concurrent".into(),
                Value::U64(self.config.max_concurrent as u64),
            ),
            ("max_queue".into(), Value::U64(self.config.max_queue as u64)),
            ("virtual_time".into(), Value::Bool(self.config.virtual_time)),
            (
                "durable".into(),
                Value::Bool(self.config.state_dir.is_some()),
            ),
            ("tenants".into(), Value::U64(self.tenants.len() as u64)),
            ("completed".into(), Value::U64(self.completed)),
            ("tenant_stats".into(), self.tenants.to_value()),
        ])
    }

    fn registry_snapshot() -> Option<Value> {
        let json = telemetry::registry()?.snapshot().to_json();
        serde_json::from_str(&json).ok()
    }

    /// Assigns the next sequence number, persisting the high-water mark
    /// so a restarted daemon never reuses a seq a client may have seen
    /// (error/verb frames leave no session directory to recover it from).
    fn take_seq(&mut self) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(store) = &self.store {
            store.record_seq(seq)?;
        }
        Ok(seq)
    }

    /// Processes one NDJSON stream to end of input (or `shutdown`).
    /// Returns `true` when a `shutdown` frame asked the whole daemon to
    /// stop — [`serve_tcp`](Self::serve_tcp) then stops accepting.
    pub fn run<R: BufRead, W: Write>(&mut self, input: R, out: &mut W) -> io::Result<bool> {
        self.run_stream(input, out, false)
    }

    /// [`run`](Self::run) with an optional scrape fast path: when
    /// `scrape` is set and the stream's **first** frame is a plain
    /// `status` or `metrics` — or a raw HTTP `GET /metrics` request
    /// line — the daemon answers from the current snapshot immediately —
    /// no drain barrier — and ends the stream so the connection closes
    /// cleanly. A monitoring client gets its answer without waiting on
    /// (or perturbing) in-flight sessions.
    /// Any other first frame, and every later frame, keeps the ordinary
    /// semantics: status/metrics mid-stream are still drain barriers, so
    /// their answers still reflect everything the same client submitted.
    fn run_stream<R: BufRead, W: Write>(
        &mut self,
        mut input: R,
        out: &mut W,
        scrape: bool,
    ) -> io::Result<bool> {
        let mut first = true;
        loop {
            let line = match read_frame(&mut input)? {
                Frame::Eof => break,
                Frame::Refused(reason) => {
                    // Oversize or non-UTF-8: refused at the I/O layer,
                    // answered like any other malformed frame.
                    first = false;
                    let seq = self.take_seq()?;
                    if let Some(c) = telemetry::counter("cliffguard.serve.frames") {
                        c.incr(1);
                    }
                    writeln!(out, "{}", Response::Error { seq, reason }.to_line())?;
                    out.flush()?;
                    continue;
                }
                Frame::Line(line) => line,
            };
            if line.trim().is_empty() {
                continue;
            }
            if scrape && first && line.starts_with("GET ") {
                // A raw HTTP scrape (`GET /metrics`) on a fresh
                // connection: answered from the live registry with
                // Prometheus text exposition — no drain barrier, no
                // sequence number consumed — then the connection
                // closes. Any other path gets a 404 and closes too.
                Self::answer_http_scrape(&line, out)?;
                return Ok(false);
            }
            let fresh = std::mem::take(&mut first);
            let seq = self.take_seq()?;
            if let Some(c) = telemetry::counter("cliffguard.serve.frames") {
                c.incr(1);
            }
            match parse_request(&line) {
                Err(e) => {
                    writeln!(
                        out,
                        "{}",
                        Response::Error {
                            seq,
                            reason: e.to_string()
                        }
                        .to_line()
                    )?;
                    out.flush()?;
                }
                Ok(Request::Design(mut req)) => {
                    telemetry::event(Level::Info, "cliffguard.serve.request")
                        .u64("seq", seq)
                        .str("tenant", &req.tenant)
                        .emit();
                    if self.in_flight.len() >= self.config.max_queue {
                        let reason = format!(
                            "queue full: {} sessions in flight, limit {} \
                             (send a drain/status/metrics frame to collect them)",
                            self.in_flight.len(),
                            self.config.max_queue
                        );
                        self.tenants.record_outcome(&req.tenant, "rejected", None);
                        writeln!(
                            out,
                            "{}",
                            Response::Design {
                                seq,
                                tenant: req.tenant.clone(),
                                status: DesignStatus::Rejected,
                                reason: Some(reason),
                                report: None,
                                resumed: false,
                            }
                            .to_line()
                        )?;
                        out.flush()?;
                        continue;
                    }
                    // Resolve the fault spec *into* the envelope, so the
                    // persisted request re-runs identically even if the
                    // restarted daemon has different defaults.
                    if req.faults.is_none() {
                        req.faults = self.config.default_faults.clone();
                    }
                    self.tenants.stats_mut(&req.tenant).admitted += 1;
                    if let Some(store) = &self.store {
                        store.save_request(
                            &req.tenant,
                            seq,
                            &Request::Design(req.clone()).to_line(),
                        )?;
                    }
                    self.submit(seq, *req, None, false);
                }
                Ok(Request::Ingest(req)) => {
                    // Streaming ingest is synchronous: no pool, no drain
                    // barrier — the frame is answered (and the session
                    // snapshot persisted) before the next frame is read.
                    let resp = self.handle_ingest(seq, *req);
                    writeln!(out, "{}", resp.to_line())?;
                    out.flush()?;
                }
                Ok(Request::Status) => {
                    let snap = scrape && fresh;
                    if !snap {
                        self.drain(out)?;
                    }
                    writeln!(
                        out,
                        "{}",
                        Response::Status {
                            seq,
                            snapshot: self.status_snapshot()
                        }
                        .to_line()
                    )?;
                    out.flush()?;
                    if snap {
                        // A scrape connection: answered, close cleanly.
                        return Ok(false);
                    }
                }
                Ok(Request::Metrics { format }) => {
                    let snap = scrape && fresh;
                    if !snap {
                        self.drain(out)?;
                    }
                    let line = match format {
                        MetricsFormat::Json => Response::Metrics {
                            seq,
                            tenants: self.tenants.to_value(),
                            registry: Self::registry_snapshot(),
                        }
                        .to_line(),
                        MetricsFormat::Prometheus => Response::MetricsText {
                            seq,
                            body: Self::prometheus_body(),
                        }
                        .to_line(),
                    };
                    writeln!(out, "{line}")?;
                    out.flush()?;
                    if snap {
                        return Ok(false);
                    }
                }
                Ok(Request::Dump) => {
                    // Like every other verb, `dump` is a drain barrier,
                    // so the answer reflects dumps from everything this
                    // client already submitted.
                    self.drain(out)?;
                    writeln!(
                        out,
                        "{}",
                        Response::Dump {
                            seq,
                            dump: self.last_flight.clone(),
                        }
                        .to_line()
                    )?;
                    out.flush()?;
                }
                Ok(Request::Drain) => {
                    let completed = self.drain(out)?;
                    writeln!(out, "{}", Response::Drained { seq, completed }.to_line())?;
                    out.flush()?;
                }
                Ok(Request::Shutdown) => {
                    self.drain(out)?;
                    writeln!(out, "{}", Response::Shutdown { seq }.to_line())?;
                    out.flush()?;
                    telemetry::event(Level::Info, "cliffguard.serve.shutdown")
                        .u64("seq", seq)
                        .emit();
                    return Ok(true);
                }
            }
        }
        // End of input is the final barrier: every admitted session still
        // terminates in a response (or a persisted pending checkpoint).
        self.drain(out)?;
        out.flush()?;
        Ok(false)
    }

    /// Serves connections from `listener`, one at a time, until a client
    /// sends `shutdown`. Sequence numbers and tenant state carry across
    /// connections. A connection-level failure — a client that
    /// disconnects before its drain barrier, a mid-stream socket error —
    /// ends that client only: its in-flight sessions still complete (and
    /// persist, with a state directory), and the daemon keeps accepting.
    /// Only listener/accept errors and `shutdown` stop the daemon.
    pub fn serve_tcp(&mut self, listener: TcpListener) -> io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into());
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            // Fresh TCP connections get the scrape fast path: a leading
            // status/metrics frame is answered from the live snapshot
            // without a drain barrier, and the connection closes.
            match self.run_stream(reader, &mut writer, true) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => {
                    // The responses are undeliverable (the client is
                    // gone), but the sessions are not lost: drain to a
                    // sink so each one completes, persists its result,
                    // and frees its queue slot before the next client.
                    let _ = self.drain(&mut io::sink());
                    telemetry::event(Level::Warn, "cliffguard.serve.conn.error")
                        .str("peer", &peer)
                        .str("error", &e.to_string())
                        .emit();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::{read_frame, Frame};
    use crate::harness::{design_line, ServeHarness};
    use crate::protocol::MAX_FRAME_BYTES;
    use std::io::{BufReader, Cursor};

    #[test]
    fn read_frame_splits_lines_and_reports_eof() {
        let mut input = BufReader::new(Cursor::new(b"one\n\ntwo".to_vec()));
        assert!(matches!(read_frame(&mut input).unwrap(), Frame::Line(l) if l == "one"));
        assert!(matches!(read_frame(&mut input).unwrap(), Frame::Line(l) if l.is_empty()));
        assert!(matches!(read_frame(&mut input).unwrap(), Frame::Line(l) if l == "two"));
        assert!(matches!(read_frame(&mut input).unwrap(), Frame::Eof));
    }

    #[test]
    fn read_frame_refuses_oversize_frames_without_buffering_them() {
        // One giant newline-less frame, then a normal one: the giant frame
        // is refused with its true length, and the stream keeps working.
        let huge_len = MAX_FRAME_BYTES + 3;
        let mut bytes = vec![b'x'; huge_len];
        bytes.extend_from_slice(b"\n{\"op\":\"drain\"}\n");
        // A tiny BufReader block proves the refusal can't come from one
        // fill_buf seeing the whole frame.
        let mut input = BufReader::with_capacity(4096, Cursor::new(bytes));
        match read_frame(&mut input).unwrap() {
            Frame::Refused(reason) => {
                assert!(reason.contains(&huge_len.to_string()), "{reason}");
                assert!(reason.contains("exceeds"), "{reason}");
            }
            _ => panic!("oversize frame must be refused"),
        }
        assert!(
            matches!(read_frame(&mut input).unwrap(), Frame::Line(l) if l == "{\"op\":\"drain\"}")
        );
    }

    #[test]
    fn non_utf8_frames_get_an_error_response_and_the_daemon_survives() {
        let mut bytes = vec![0xff, 0xfe, 0x80];
        bytes.extend_from_slice(b"\n{\"op\":\"drain\"}\n");
        let mut daemon = super::Daemon::new(super::ServeConfig {
            virtual_time: true,
            ..super::ServeConfig::default()
        })
        .expect("daemon builds");
        let mut out: Vec<u8> = Vec::new();
        daemon
            .run(BufReader::new(Cursor::new(bytes)), &mut out)
            .expect("a bad frame must not end the stream");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains(r#""op":"error""#), "{}", lines[0]);
        assert!(lines[0].contains("UTF-8"), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"drain""#), "{}", lines[1]);
    }

    struct FailingWriter;

    impl std::io::Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client gone",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_writer_completes_the_drain_before_surfacing_the_error() {
        let mut daemon = super::Daemon::new(super::ServeConfig {
            virtual_time: true,
            ..super::ServeConfig::default()
        })
        .expect("daemon builds");
        let mut tape = String::new();
        for (tenant, seed) in [("acme", 7u64), ("bravo", 8)] {
            tape.push_str(&design_line(&crate::testdata::design_request(tenant, seed)));
            tape.push('\n');
        }
        tape.push_str("{\"op\":\"drain\"}\n");
        let err = daemon
            .run(BufReader::new(Cursor::new(tape)), &mut FailingWriter)
            .expect_err("a dead client's drain must surface its write error");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // The barrier still ran to completion: both sessions finished,
        // the queue is empty, and the daemon serves the next stream.
        let mut out: Vec<u8> = Vec::new();
        let input = BufReader::new(Cursor::new("{\"op\":\"status\"}\n".to_string()));
        daemon.run(input, &mut out).expect("daemon still serves");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains(r#""completed":2"#), "{out}");
    }

    #[test]
    fn garbage_frames_get_error_responses_and_the_daemon_survives() {
        let harness = ServeHarness::new();
        let out = harness.run_tape(&[
            "this is not json".into(),
            r#"{"op":"teleport"}"#.into(),
            r#"{"op":"drain"}"#.into(),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].contains(r#""op":"error""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"error""#), "{}", lines[1]);
        assert!(lines[2].contains(r#""op":"drain""#), "{}", lines[2]);
    }

    #[test]
    fn a_leading_scrape_frame_answers_immediately_and_ends_the_stream() {
        let mut daemon = super::Daemon::new(super::ServeConfig {
            virtual_time: true,
            ..super::ServeConfig::default()
        })
        .expect("daemon builds");
        // Scrape stream: a leading status is answered from the snapshot
        // and the stream ends — the frames behind it are never read.
        let tape = format!(
            "{{\"op\":\"status\"}}\n{}\n{{\"op\":\"drain\"}}\n",
            design_line(&crate::testdata::design_request("acme", 7))
        );
        let mut out: Vec<u8> = Vec::new();
        let shutdown = daemon
            .run_stream(BufReader::new(Cursor::new(tape.clone())), &mut out, true)
            .expect("scrape stream runs");
        assert!(!shutdown);
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "scrape must answer exactly once: {out}");
        assert!(lines[0].contains(r#""op":"status""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""completed":0"#), "{}", lines[0]);
        // The same tape without the scrape flag keeps the barrier
        // semantics: every frame is read and answered.
        let mut out: Vec<u8> = Vec::new();
        daemon
            .run_stream(BufReader::new(Cursor::new(tape)), &mut out, false)
            .expect("plain stream runs");
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 3, "{out}");
    }

    #[test]
    fn a_mid_stream_scrape_frame_is_still_a_drain_barrier() {
        let mut daemon = super::Daemon::new(super::ServeConfig {
            virtual_time: true,
            ..super::ServeConfig::default()
        })
        .expect("daemon builds");
        // Even on a scrape-capable stream, a status behind a design frame
        // drains first, so the answer reflects the submitted session.
        let tape = format!(
            "{}\n{{\"op\":\"metrics\"}}\n",
            design_line(&crate::testdata::design_request("acme", 7))
        );
        let mut out: Vec<u8> = Vec::new();
        daemon
            .run_stream(BufReader::new(Cursor::new(tape)), &mut out, true)
            .expect("stream runs");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains(r#""status":"done""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"metrics""#), "{}", lines[1]);
    }

    #[test]
    fn queue_full_rejections_are_deterministic() {
        let mut harness = ServeHarness::new();
        harness.config.max_queue = 2;
        let mut tape: Vec<String> = (0..4)
            .map(|i| design_line(&crate::testdata::design_request(&format!("t{i}"), 7)))
            .collect();
        tape.push(r#"{"op":"drain"}"#.into());
        let out1 = harness.run_tape(&tape);
        let out2 = harness.run_tape(&tape);
        assert_eq!(out1, out2, "same tape must produce identical bytes");
        // Frames 3 and 4 overflow the 2-slot queue and are rejected
        // immediately; 1 and 2 complete at the drain barrier.
        let lines: Vec<&str> = out1.lines().collect();
        assert_eq!(lines.len(), 5, "{out1}");
        assert!(lines[0].contains(r#""status":"rejected""#), "{}", lines[0]);
        assert!(lines[0].contains("queue full"), "{}", lines[0]);
        assert!(lines[1].contains(r#""status":"rejected""#), "{}", lines[1]);
        assert!(lines[2].contains(r#""seq":1"#), "{}", lines[2]);
        assert!(lines[3].contains(r#""seq":2"#), "{}", lines[3]);
        assert!(lines[4].contains(r#""op":"drain""#), "{}", lines[4]);
    }

    /// A unique temp dir for one test (removed by the test itself).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cliffguard-daemon-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_leading_http_get_scrapes_prometheus_text_and_closes() {
        let mut daemon = super::Daemon::new(super::ServeConfig {
            virtual_time: true,
            ..super::ServeConfig::default()
        })
        .expect("daemon builds");
        // A raw HTTP request line, then frames that must never be read:
        // the scrape answers from the live registry and ends the stream.
        let tape = format!(
            "GET /metrics HTTP/1.0\n{}\n{{\"op\":\"drain\"}}\n",
            design_line(&crate::testdata::design_request("acme", 7))
        );
        let mut out: Vec<u8> = Vec::new();
        let shutdown = daemon
            .run_stream(BufReader::new(Cursor::new(tape)), &mut out, true)
            .expect("scrape stream runs");
        assert!(!shutdown);
        let out = String::from_utf8(out).unwrap();
        assert!(out.starts_with("HTTP/1.0 200 OK\r\n"), "{out}");
        assert!(
            out.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
            "{out}"
        );
        assert!(out.contains("Connection: close\r\n"), "{out}");
        let body = out.split("\r\n\r\n").nth(1).expect("header/body split");
        let len: usize = out
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .trim()
            .parse()
            .expect("numeric length");
        assert_eq!(len, body.len(), "Content-Length must match the body");
        assert!(
            !out.contains(r#""op":"#),
            "no NDJSON frame may leak into an HTTP scrape: {out}"
        );
        // The scrape consumed no sequence number: the next stream's
        // first frame is still seq 1.
        let mut out: Vec<u8> = Vec::new();
        let input = BufReader::new(Cursor::new("{\"op\":\"status\"}\n".to_string()));
        daemon.run(input, &mut out).expect("daemon still serves");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains(r#""seq":1"#), "{out}");
        // Unknown paths get a 404, still closing cleanly.
        let mut out: Vec<u8> = Vec::new();
        let input = BufReader::new(Cursor::new("GET /other HTTP/1.0\n".to_string()));
        daemon
            .run_stream(input, &mut out, true)
            .expect("404 path runs");
        let out = String::from_utf8(out).unwrap();
        assert!(out.starts_with("HTTP/1.0 404 Not Found\r\n"), "{out}");
    }

    #[test]
    fn a_mid_stream_prometheus_metrics_frame_is_still_a_drain_barrier() {
        let mut daemon = super::Daemon::new(super::ServeConfig {
            virtual_time: true,
            ..super::ServeConfig::default()
        })
        .expect("daemon builds");
        let tape = format!(
            "{}\n{{\"op\":\"metrics\",\"format\":\"prometheus\"}}\n",
            design_line(&crate::testdata::design_request("acme", 7))
        );
        let mut out: Vec<u8> = Vec::new();
        daemon
            .run_stream(BufReader::new(Cursor::new(tape)), &mut out, true)
            .expect("stream runs");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains(r#""status":"done""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"metrics""#), "{}", lines[1]);
        assert!(
            lines[1].contains(r#""format":"prometheus""#),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains(r#""body":""#), "{}", lines[1]);
    }

    #[test]
    fn a_malformed_metrics_format_gets_an_error_frame() {
        let harness = ServeHarness::new();
        let out = harness.run_tape(&[
            r#"{"op":"metrics","format":"xml"}"#.into(),
            r#"{"op":"metrics","format":7}"#.into(),
            r#"{"op":"drain"}"#.into(),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].contains(r#""op":"error""#), "{}", lines[0]);
        assert!(lines[0].contains("format"), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"error""#), "{}", lines[1]);
        assert!(lines[2].contains(r#""op":"drain""#), "{}", lines[2]);
    }

    #[test]
    fn dump_reports_unavailable_when_no_session_froze_a_recorder() {
        let harness = ServeHarness::new();
        let out = harness.run_tape(&[
            design_line(&crate::testdata::design_request("acme", 7)),
            r#"{"op":"dump"}"#.into(),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains(r#""status":"done""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"dump""#), "{}", lines[1]);
        assert!(lines[1].contains(r#""available":false"#), "{}", lines[1]);
    }

    #[test]
    fn a_panicking_worker_answers_the_tenant_and_leaves_a_flight_dump() {
        let dir = scratch_dir("panic-dump");
        let mut req = crate::testdata::design_request("acme", 7);
        req.faults = Some("panic@1".into());
        let tape = vec![design_line(&req), r#"{"op":"dump"}"#.into()];
        let run = |workers: usize| {
            ServeHarness::new()
                .with_max_concurrent(workers)
                .with_state_dir(dir.join(format!("w{workers}")))
                .run_tape(&tape)
        };
        let out = run(1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains(r#""status":"rejected""#), "{}", lines[0]);
        assert!(
            lines[0].contains("internal error: injected panic (call 1)"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains(r#""available":true"#), "{}", lines[1]);
        assert!(lines[1].contains(r#""tenant":"acme""#), "{}", lines[1]);
        assert!(
            lines[1].contains("worker panic: injected panic (call 1)"),
            "{}",
            lines[1]
        );
        // The black box is persisted next to the session state.
        let on_disk = std::fs::read_to_string(dir.join("w1").join("flight-acme-1.jsonl"))
            .expect("flight dump persists");
        assert!(!on_disk.is_empty());
        assert!(on_disk.ends_with('\n'), "dump is newline-terminated");
        for line in on_disk.lines() {
            assert!(
                line.starts_with("{\"t\":"),
                "flight lines are trace JSONL: {line}"
            );
        }
        // Byte-identical across reruns and worker counts: the recorder
        // rides the session's own virtual clock and thread.
        assert_eq!(out, run(8), "dump must not depend on worker count");
        let on_disk_8 = std::fs::read_to_string(dir.join("w8").join("flight-acme-1.jsonl"))
            .expect("flight dump persists at 8 workers");
        assert_eq!(on_disk, on_disk_8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_degraded_session_leaves_a_flight_dump_ending_in_the_degradation() {
        let dir = scratch_dir("degraded-dump");
        let mut req = crate::testdata::design_request("acme", 7);
        // Call 1 (the nominal design) and call 2 (iteration 0) succeed;
        // the next call fails with no retry budget, degrading the
        // session mid-descent — so the black box shows completed
        // iterations before the failure.
        req.faults = Some("fail@3,fail@4,fail@5,fail@6".into());
        req.max_retries = Some(0);
        let tape = vec![design_line(&req), r#"{"op":"dump"}"#.into()];
        // Reruns use fresh state dirs: a reused dir would advance the
        // persisted seq high-water mark and legitimately change `seq`.
        let run = |tag: &str| {
            ServeHarness::new()
                .with_state_dir(dir.join(tag))
                .run_tape(&tape)
        };
        let out = run("a");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains(r#""status":"degraded""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"dump""#), "{}", lines[1]);
        assert!(lines[1].contains(r#""available":true"#), "{}", lines[1]);
        let on_disk = std::fs::read_to_string(dir.join("a").join("flight-acme-1.jsonl"))
            .expect("flight dump persists");
        let last = on_disk.lines().last().expect("dump has lines");
        assert!(
            last.contains("cliffguard.core.session.degraded"),
            "the degradation event must be the last line of the black box: {last}"
        );
        // No subscriber is installed in this test, yet the black box
        // still holds the descent history leading up to the failure.
        assert!(
            on_disk.contains("cliffguard.core.descent.iter"),
            "flight dumps hold the descent history:\n{on_disk}"
        );
        assert!(
            on_disk.contains(r#""kind":"span""#),
            "iteration spans are retained:\n{on_disk}"
        );
        assert!(
            on_disk.contains("cliffguard.core.session.fault"),
            "the injected fault is on record:\n{on_disk}"
        );
        assert_eq!(out, run("b"), "byte-identical reruns");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_and_metrics_report_tenant_stats() {
        let harness = ServeHarness::new();
        let out = harness.run_tape(&[
            design_line(&crate::testdata::design_request("acme", 7)),
            r#"{"op":"status"}"#.into(),
            r#"{"op":"metrics"}"#.into(),
            r#"{"op":"shutdown"}"#.into(),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains(r#""tenant":"acme""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"status""#), "{}", lines[1]);
        assert!(lines[1].contains(r#""completed":1"#), "{}", lines[1]);
        assert!(lines[1].contains(r#""acme""#), "{}", lines[1]);
        assert!(lines[2].contains(r#""op":"metrics""#), "{}", lines[2]);
        assert!(lines[3].contains(r#""op":"shutdown""#), "{}", lines[3]);
    }
}
