//! Per-tenant session accounting.
//!
//! The daemon keeps one [`TenantStats`] row per tenant id it has ever
//! admitted, surfaced through the `status` and `metrics` protocol verbs
//! and mirrored into the telemetry registry as labeled series
//! (`cliffguard.serve.sessions{tenant="…"}`). The registry is a
//! `BTreeMap`, so snapshots render in a stable tenant order.

use cliffguard_telemetry as telemetry;
use serde::Value;
use std::collections::BTreeMap;

/// Lifetime counters for one tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Design requests admitted (including ones still in flight).
    pub admitted: u64,
    /// Sessions that terminated `done` without degradation.
    pub done: u64,
    /// Sessions that terminated `done` but degraded.
    pub degraded: u64,
    /// Requests refused (admission or input validation).
    pub rejected: u64,
    /// Sessions recovered from the state directory after a restart.
    pub resumed: u64,
    /// Sessions interrupted by a daemon stop (checkpointed, not yet
    /// completed).
    pub interrupted: u64,
    /// Flight-recorder dumps captured for this tenant (one per degraded
    /// or panicked session).
    pub flights: u64,
    /// Fingerprint of the tenant's most recent completed design.
    pub last_fingerprint: Option<u64>,
}

/// The daemon's tenant table.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: BTreeMap<String, TenantStats>,
}

impl TenantRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mutable stats row for `tenant`, created on first touch.
    pub fn stats_mut(&mut self, tenant: &str) -> &mut TenantStats {
        self.tenants.entry(tenant.to_string()).or_default()
    }

    /// Number of tenants ever admitted.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Records a terminal session outcome for `tenant`, updating both the
    /// local row and (when telemetry metrics are installed) the
    /// per-tenant labeled series.
    pub fn record_outcome(&mut self, tenant: &str, outcome: &str, fingerprint: Option<u64>) {
        let row = self.stats_mut(tenant);
        match outcome {
            "done" => row.done += 1,
            "degraded" => row.degraded += 1,
            "rejected" => row.rejected += 1,
            "interrupted" => row.interrupted += 1,
            _ => {}
        }
        if let Some(fp) = fingerprint {
            row.last_fingerprint = Some(fp);
        }
        if let Some(c) = telemetry::counter(&telemetry::labeled(
            "cliffguard.serve.sessions",
            "tenant",
            tenant,
        )) {
            c.incr(1);
        }
        if let Some(c) = telemetry::counter(&telemetry::labeled(
            &format!("cliffguard.serve.{outcome}"),
            "tenant",
            tenant,
        )) {
            c.incr(1);
        }
    }

    /// Renders the table as a JSON value, one entry per tenant in sorted
    /// order.
    pub fn to_value(&self) -> Value {
        Value::Map(
            self.tenants
                .iter()
                .map(|(tenant, s)| {
                    (
                        tenant.clone(),
                        Value::Map(vec![
                            ("admitted".into(), Value::U64(s.admitted)),
                            ("done".into(), Value::U64(s.done)),
                            ("degraded".into(), Value::U64(s.degraded)),
                            ("rejected".into(), Value::U64(s.rejected)),
                            ("resumed".into(), Value::U64(s.resumed)),
                            ("interrupted".into(), Value::U64(s.interrupted)),
                            ("flights".into(), Value::U64(s.flights)),
                            (
                                "last_fingerprint".into(),
                                match s.last_fingerprint {
                                    Some(fp) => Value::U64(fp),
                                    None => Value::Null,
                                },
                            ),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_accumulate_per_tenant_in_sorted_order() {
        let mut reg = TenantRegistry::new();
        reg.stats_mut("zeta").admitted += 1;
        reg.stats_mut("acme").admitted += 2;
        reg.record_outcome("acme", "done", Some(0xfeed));
        reg.record_outcome("acme", "degraded", None);
        reg.record_outcome("zeta", "rejected", None);

        let v = reg.to_value();
        let m = v.as_map().unwrap();
        assert_eq!(
            m.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["acme", "zeta"],
            "snapshot order must be stable (sorted)"
        );
        let acme = m[0].1.as_map().unwrap();
        assert_eq!(serde::map_get(acme, "done"), &Value::U64(1));
        assert_eq!(serde::map_get(acme, "degraded"), &Value::U64(1));
        assert_eq!(
            serde::map_get(acme, "last_fingerprint"),
            &Value::U64(0xfeed)
        );
        let zeta = m[1].1.as_map().unwrap();
        assert_eq!(serde::map_get(zeta, "rejected"), &Value::U64(1));
        assert_eq!(serde::map_get(zeta, "last_fingerprint"), &Value::Null);
    }
}
