//! Executes one [`DesignRequest`] as a resilient
//! [`DesignSession`](cliffguard_core::DesignSession).
//!
//! This is the daemon's unit of work, factored out so the end-to-end
//! tests can run the *same* pipeline one-shot (no daemon, no scheduler)
//! and compare designs bit-for-bit against what the daemon serves. The
//! pipeline mirrors `cliffguard design`: parse catalog → import log →
//! window → resolve Γ and budget → build the historical pool → run (or
//! resume) the session.
//!
//! Determinism: in virtual-time mode every run builds a **fresh** virtual
//! clock. Sessions never share a clock — a shared clock would let one
//! tenant's backoff stalls advance another tenant's deadlines, making
//! output depend on scheduling order.

use crate::protocol::{BudgetSpec, DesignReport, DesignRequest, GammaSpec};
use cliffguard_core::gamma::{consecutive_deltas, GammaPolicy};
use cliffguard_core::replica::MAX_REPLICAS;
use cliffguard_core::{
    design_replicated, CliffGuardConfig, DescentCheckpoint, DesignSession, ReplicaOptions,
    SessionEnd, SessionOptions,
};
use cliffguard_designer::{ColumnarCandidates, GreedyDesigner, Reliable};
use cliffguard_distance::DeltaEuclidean;
use cliffguard_resilience::{FaultPlan, FaultyDesigner, RetryPolicy, SessionClock};
use cliffguard_sim::{ddl, ColumnarDesign, ColumnarEngine, Engine, PhysicalDesign};
use cliffguard_storage::Catalog;
use cliffguard_workload::{logio::import_log, Query};
use serde::Deserialize;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Daemon-level knobs applied to every session it runs.
#[derive(Debug, Clone, Default)]
pub struct RunnerOptions {
    /// Run each session on a fresh virtual clock (deterministic) instead
    /// of the system clock.
    pub virtual_time: bool,
    /// Default per-session deadline (ms), when the request carries none.
    pub tenant_deadline_ms: Option<u64>,
    /// Checkpoint-observer cadence (0/1 = every iteration).
    pub checkpoint_every: usize,
    /// Daemon-wide kill switch: raised → sessions checkpoint and stop.
    pub stop: Option<Arc<AtomicBool>>,
    /// Abort each session before this 0-based iteration (the harness's
    /// kill simulation; `None` in production).
    pub abort_after_iterations: Option<usize>,
    /// Fault-plan spec applied when the request carries none (the
    /// daemon's `CLIFFGUARD_FAULTS`, resolved once at startup).
    pub default_faults: Option<String>,
    /// The session's flight recorder: installed on the running thread
    /// for the duration of the session and bound to the session's clock,
    /// so its retained lines are byte-identical across reruns and worker
    /// counts in virtual-time mode. `None` skips recording entirely.
    pub recorder: Option<Arc<cliffguard_telemetry::FlightRecorder>>,
    /// Directory of the persistent epoch cache: sessions warm-start their
    /// cost kernels from latency vectors persisted by earlier runs.
    /// Cached bits equal rebuilt bits, so serving output is unchanged.
    pub epoch_cache: Option<std::path::PathBuf>,
}

/// How one request's session ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The session finished (possibly degraded — see the report).
    Done(Box<DesignReport>),
    /// The session was interrupted (daemon stopping); the checkpoint JSON
    /// resumes it bit-identically.
    Interrupted(String),
    /// The request's inputs were unusable; nothing ran.
    Rejected(String),
}

/// Runs (or, given `checkpoint_json`, resumes) the design session for one
/// request. `observer` receives each per-iteration checkpoint rendered as
/// JSON, at the configured cadence — the daemon persists these.
///
/// A checkpoint that does not match the request's inputs (fingerprint or
/// sampler drift) is discarded and the session runs fresh: the fresh run
/// produces the same final design, just without the saved progress.
pub fn run_design(
    req: &DesignRequest,
    opts: &RunnerOptions,
    checkpoint_json: Option<&str>,
    observer: &mut dyn FnMut(&str),
) -> RunOutcome {
    let mut catalog = match Catalog::from_value(&req.catalog) {
        Ok(c) => c,
        Err(e) => return RunOutcome::Rejected(format!("bad catalog: {e}")),
    };
    catalog.rebuild_index();
    let (log, report) = import_log(&req.log, &catalog);
    if log.is_empty() {
        return RunOutcome::Rejected(format!(
            "no parseable queries in the log ({} unparseable, {} malformed)",
            report.skipped_sql, report.skipped_malformed
        ));
    }
    if !(1..=MAX_REPLICAS as u64).contains(&req.replicas) {
        return RunOutcome::Rejected(format!(
            "replicas must be in 1..={MAX_REPLICAS}, got {}",
            req.replicas
        ));
    }
    let windows = log.windows_days(req.window_days);
    let Some((w0, history)) = windows.split_last() else {
        return RunOutcome::Rejected("log has no windows".into());
    };
    if w0.is_empty() {
        return RunOutcome::Rejected("the last window is empty".into());
    }
    let engine = ColumnarEngine::new(catalog);
    let budget_bytes = match req.budget {
        BudgetSpec::Bytes(b) => b,
        BudgetSpec::Auto => {
            let data: u64 = engine
                .catalog()
                .tables()
                .map(|t| engine.catalog().table(t).rows * engine.catalog().table(t).row_width())
                .sum();
            (data as f64 * 0.3) as u64
        }
    };
    let metric = DeltaEuclidean::new(engine.catalog().column_count());
    let gamma = match req.gamma {
        GammaSpec::Fixed(g) => g,
        GammaSpec::Auto => {
            GammaPolicy::KMaxPastDeltas(1.5).resolve(&consecutive_deltas(&metric, &windows))
        }
    };
    // Same pool policy as the CLI: the last four history windows, deduped
    // by structural signature.
    let mut pool: Vec<Arc<Query>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for w in history.iter().rev().take(4) {
        for q in w.queries() {
            if seen.insert(q.signature()) {
                pool.push(Arc::clone(q));
            }
        }
    }

    let mut retry = RetryPolicy::default();
    if let Some(n) = req.max_retries {
        retry.max_retries = n;
    }
    if let Some(ms) = req.designer_deadline_ms {
        retry = retry.with_designer_deadline_ms(ms);
    }
    if let Some(ms) = req.deadline_ms.or(opts.tenant_deadline_ms) {
        retry = retry.with_session_deadline_ms(ms);
    }
    let clock = if opts.virtual_time {
        SessionClock::virtual_clock()
    } else {
        SessionClock::system()
    };
    // The recorder rides the session's own clock (virtual in the daemon's
    // deterministic mode) and captures every event this thread emits from
    // here to the end of the run — the session's black box.
    let _flight_guard = opts.recorder.as_ref().map(|rec| {
        let c = clock.clone();
        rec.set_clock(Arc::new(move || c.now_ms()));
        cliffguard_telemetry::record_on_thread(rec)
    });
    // Warm-start store: an unopenable directory degrades to cold starts
    // rather than rejecting the request (the cache is purely a speedup).
    let epoch_cache = opts
        .epoch_cache
        .as_ref()
        .and_then(|dir| cliffguard_sim::EpochCacheStore::open(dir).ok());
    let options = SessionOptions {
        retry,
        clock: clock.clone(),
        stop: opts.stop.clone(),
        checkpoint_every: opts.checkpoint_every.max(1),
        abort_after_iterations: opts.abort_after_iterations,
        epoch_cache: epoch_cache.clone(),
        ..SessionOptions::default()
    };
    let config = CliffGuardConfig::new(gamma).with_seed(req.seed);
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");

    let fault_spec = req.faults.as_deref().or(opts.default_faults.as_deref());
    let plan = match fault_spec {
        Some(spec) => match FaultPlan::from_spec(spec) {
            Ok(p) => Some(p),
            Err(e) => return RunOutcome::Rejected(format!("bad fault spec `{spec}`: {e}")),
        },
        None => None,
    };
    // The replica layer reads the same plan (its replica-crash /
    // replica-slow entries fire by round index there).
    let replica_plan = plan.clone();

    // The two designer arms differ only in the wrapper type, so the whole
    // run/resume/report tail is shared via this closure-shaped helper.
    macro_rules! run_with {
        ($designer:expr) => {{
            let session = match DesignSession::new(&engine, $designer, metric, config, options) {
                Ok(s) => s,
                Err(e) => return RunOutcome::Rejected(format!("bad configuration: {e}")),
            };
            let mut obs = |c: &DescentCheckpoint<ColumnarDesign>| observer(&c.to_json());
            let end = match checkpoint_json
                .and_then(|j| DescentCheckpoint::<ColumnarDesign>::from_json(j).ok())
            {
                Some(ckpt) => {
                    match session.resume_with_observer(w0, budget_bytes, &pool, &ckpt, &mut obs) {
                        Ok(end) => end,
                        // Stale/mismatched checkpoint: a fresh run is
                        // bit-identical to the uninterrupted one anyway.
                        Err(_) => session.run_with_observer(w0, budget_bytes, &pool, &mut obs),
                    }
                }
                None => session.run_with_observer(w0, budget_bytes, &pool, &mut obs),
            };
            match end {
                SessionEnd::Interrupted(ckpt) => RunOutcome::Interrupted(ckpt.to_json()),
                SessionEnd::Finished { design, trace } => {
                    // The failure-aware replica layer runs after the
                    // session: the session's robust design seeds a fleet
                    // of R divergent replicas, scored over drift windows ×
                    // crash masks. Replica faults in the same plan fire by
                    // round index; a crash mid-run fails over to the best
                    // surviving routing instead of erroring out.
                    let (replica_set_fingerprint, replica_audit) = if req.replicas > 1 {
                        let ropts = ReplicaOptions {
                            replicas: req.replicas as usize,
                            max_failures: req.max_failures as usize,
                            faults: replica_plan.clone(),
                            epoch_cache: epoch_cache.clone(),
                            ..ReplicaOptions::default()
                        };
                        match design_replicated(
                            &engine,
                            &nominal,
                            &design,
                            &windows,
                            budget_bytes,
                            &ropts,
                        ) {
                            Ok(out) => (out.design.set_fingerprint(), Some(out.audit.to_json())),
                            Err(e) => {
                                return RunOutcome::Rejected(format!("bad replica setup: {e}"))
                            }
                        }
                    } else {
                        (0, None)
                    };
                    RunOutcome::Done(Box::new(DesignReport {
                        fingerprint: design.fingerprint(),
                        structures: design.len(),
                        price_bytes: design.price_bytes(engine.catalog()),
                        gamma,
                        budget_bytes,
                        designer_calls: trace.designer_calls,
                        retries: trace.retries,
                        faults: trace.faults,
                        degraded: trace.degraded.clone(),
                        worst_case_bits: trace
                            .worst_case_per_iter
                            .iter()
                            .map(|x| x.to_bits())
                            .collect(),
                        ddl: ddl::columnar_script(&design, engine.catalog()),
                        replicas: req.replicas,
                        replica_set_fingerprint,
                        replica_audit,
                    }))
                }
            }
        }};
    }

    match plan {
        Some(plan) if !plan.is_none() => {
            let injector: FaultyDesigner<ColumnarEngine, _> =
                FaultyDesigner::new(&nominal, plan, clock.clone());
            run_with!(injector)
        }
        _ => run_with!(Reliable(&nominal)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;

    #[test]
    fn one_shot_run_produces_a_design() {
        let req = testdata::design_request("t0", 7);
        let mut n_ckpts = 0usize;
        let out = run_design(
            &req,
            &RunnerOptions {
                virtual_time: true,
                ..RunnerOptions::default()
            },
            None,
            &mut |_| n_ckpts += 1,
        );
        let RunOutcome::Done(report) = out else {
            panic!("expected Done, got {out:?}");
        };
        assert!(report.structures > 0, "tiny workload must yield structures");
        assert!(report.price_bytes <= report.budget_bytes);
        assert!(!report.worst_case_bits.is_empty());
        assert!(!report.ddl.is_empty());
        assert!(n_ckpts > 0, "observer must see per-iteration checkpoints");
    }

    #[test]
    fn reruns_are_bit_identical() {
        let req = testdata::design_request("t0", 7);
        let opts = RunnerOptions {
            virtual_time: true,
            ..RunnerOptions::default()
        };
        let a = run_design(&req, &opts, None, &mut |_| {});
        let b = run_design(&req, &opts, None, &mut |_| {});
        match (a, b) {
            (RunOutcome::Done(a), RunOutcome::Done(b)) => assert_eq!(a, b),
            other => panic!("expected two Done outcomes, got {other:?}"),
        }
    }

    #[test]
    fn replicated_requests_carry_an_audit_and_survive_a_crash_fault() {
        let mut req = testdata::design_request("t0", 7);
        req.replicas = 3;
        req.max_failures = 1;
        req.faults = Some("replica-crash@1:1".into());
        let opts = RunnerOptions {
            virtual_time: true,
            ..RunnerOptions::default()
        };
        let RunOutcome::Done(report) = run_design(&req, &opts, None, &mut |_| {}) else {
            panic!("replicated run must finish");
        };
        assert_eq!(report.replicas, 3);
        assert_ne!(report.replica_set_fingerprint, 0);
        let audit = report.replica_audit.as_deref().expect("audit present");
        assert!(audit.contains("\"crashed_mask\":2"), "{audit}");
        assert!(audit.contains("\"kind\":\"replica-crash\""), "{audit}");
        // Byte-identical rerun (the acceptance criterion's audit check).
        let RunOutcome::Done(again) = run_design(&req, &opts, None, &mut |_| {}) else {
            panic!("rerun must finish");
        };
        assert_eq!(again, report);
    }

    #[test]
    fn oversized_fleets_are_rejected_up_front() {
        let mut req = testdata::design_request("t0", 7);
        req.replicas = 64;
        let out = run_design(&req, &RunnerOptions::default(), None, &mut |_| {});
        assert!(matches!(out, RunOutcome::Rejected(_)), "{out:?}");
    }

    #[test]
    fn bad_inputs_are_rejected_not_paniced() {
        let mut req = testdata::design_request("t0", 7);
        req.log = "garbage that is not TSV".into();
        let out = run_design(&req, &RunnerOptions::default(), None, &mut |_| {});
        assert!(matches!(out, RunOutcome::Rejected(_)), "{out:?}");
    }

    #[test]
    fn interrupt_then_resume_matches_uninterrupted() {
        let req = testdata::design_request("t0", 7);
        let base = RunnerOptions {
            virtual_time: true,
            ..RunnerOptions::default()
        };
        let RunOutcome::Done(full) = run_design(&req, &base, None, &mut |_| {}) else {
            panic!("uninterrupted run must finish");
        };
        let killed = RunnerOptions {
            abort_after_iterations: Some(1),
            ..base.clone()
        };
        let RunOutcome::Interrupted(ckpt) = run_design(&req, &killed, None, &mut |_| {}) else {
            panic!("abort_after_iterations(1) must interrupt");
        };
        let RunOutcome::Done(resumed) = run_design(&req, &base, Some(&ckpt), &mut |_| {}) else {
            panic!("resume must finish");
        };
        assert_eq!(resumed, full, "resumed session must be bit-identical");
    }
}
