//! The deterministic in-process serve harness.
//!
//! End-to-end daemon tests need three things real deployments make hard:
//! a **virtual clock** (so backoffs and deadlines cost no wall time and
//! perturb nothing), a **scripted request tape** (the daemon's whole
//! input decided up front), and **reproducible scheduling** (output
//! independent of worker interleaving). [`ServeHarness`] packages all
//! three: it builds a fresh [`Daemon`] per run over an in-memory
//! reader/writer pair and returns the complete output stream as a
//! string, which tests compare byte-for-byte across reruns, thread
//! counts, and kill/restart boundaries.
//!
//! ```
//! use cliffguard_serve::harness::{design_line, ServeHarness};
//! use cliffguard_serve::testdata;
//!
//! let harness = ServeHarness::new();
//! let tape = vec![
//!     design_line(&testdata::design_request("acme", 7)),
//!     r#"{"op":"drain"}"#.to_string(),
//! ];
//! let out = harness.run_tape(&tape);
//! assert_eq!(out, harness.run_tape(&tape), "byte-identical reruns");
//! assert!(out.lines().next().unwrap().contains("\"status\":\"done\""));
//! ```

use crate::daemon::{Daemon, ServeConfig};
use crate::protocol::{DesignRequest, IngestRequest, Request};
use std::fmt;
use std::io::{self, BufReader, Cursor};
use std::path::PathBuf;

/// Why a harness run could not produce an output stream.
///
/// Both variants carry the underlying I/O error: the harness itself is
/// in-memory, so a failure always comes from the scripted configuration
/// (an unusable state directory, a corrupt persisted envelope) — exactly
/// the cases a test wants to assert on rather than die in.
#[derive(Debug)]
pub enum HarnessError {
    /// [`Daemon::new`] rejected the scripted [`ServeConfig`].
    Build(io::Error),
    /// The daemon failed mid-stream (e.g. a poisoned state directory).
    Run(io::Error),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Build(e) => write!(f, "daemon failed to build from the harness config: {e}"),
            Self::Run(e) => write!(f, "in-memory serve run failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) | Self::Run(e) => Some(e),
        }
    }
}

/// Renders a design request as the protocol line a client would send.
pub fn design_line(req: &DesignRequest) -> String {
    Request::Design(Box::new(req.clone())).to_line()
}

/// Renders an ingest frame as the protocol line a client would send.
pub fn ingest_line(req: &IngestRequest) -> String {
    Request::Ingest(Box::new(req.clone())).to_line()
}

/// A deterministic, in-process driver for [`Daemon`].
#[derive(Debug, Clone)]
pub struct ServeHarness {
    /// The daemon configuration each [`run_tape`](Self::run_tape) starts
    /// from. Always `virtual_time: true` — the harness exists to make
    /// runs reproducible.
    pub config: ServeConfig,
}

impl Default for ServeHarness {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeHarness {
    /// A harness with virtual time, one worker slot per core, and no
    /// state directory.
    pub fn new() -> Self {
        Self {
            config: ServeConfig {
                virtual_time: true,
                ..ServeConfig::default()
            },
        }
    }

    /// Caps concurrent sessions at `n` (the queue scales with it).
    pub fn with_max_concurrent(mut self, n: usize) -> Self {
        self.config.max_concurrent = n.max(1);
        self.config.max_queue = self.config.max_queue.max(n * 4);
        self
    }

    /// Persists session state under `dir` (enables kill/resume runs).
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.state_dir = Some(dir.into());
        self
    }

    /// Simulates a daemon killed before iteration `k` of every session:
    /// checkpoints persist, no responses are emitted for them.
    pub fn with_kill_after(mut self, k: usize) -> Self {
        self.config.kill_after_iterations = Some(k);
        self
    }

    /// Applies a default fault-plan spec to every request on this tape.
    pub fn with_faults(mut self, spec: impl Into<String>) -> Self {
        self.config.default_faults = Some(spec.into());
        self
    }

    /// Runs a fresh daemon over the tape (one frame per element) through
    /// end-of-input, returning everything it wrote. Panics with the
    /// [`HarnessError`] message on failure — a test harness should be
    /// loud; use [`try_run_tape`](Self::try_run_tape) to assert on the
    /// failure instead.
    pub fn run_tape(&self, tape: &[String]) -> String {
        self.try_run_tape(tape).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_tape`](Self::run_tape), but surfacing build/run failures as
    /// a structured [`HarnessError`] instead of panicking.
    pub fn try_run_tape(&self, tape: &[String]) -> Result<String, HarnessError> {
        let mut input = tape.join("\n");
        input.push('\n');
        let mut out: Vec<u8> = Vec::new();
        let mut daemon = Daemon::new(self.config.clone()).map_err(HarnessError::Build)?;
        daemon
            .run(BufReader::new(Cursor::new(input)), &mut out)
            .map_err(HarnessError::Run)?;
        Ok(String::from_utf8(out).expect("protocol output is UTF-8"))
    }
}

/// Parses every line of a harness output stream into JSON values,
/// asserting each is one well-formed object (helper for tests).
pub fn parse_output(out: &str) -> Vec<serde::Value> {
    out.lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad response line `{l}`: {e}")))
        .collect()
}

/// Extracts the `report` objects of `design` responses, in order,
/// re-serialized as canonical JSON strings (the per-tenant audit trail
/// tests compare byte-for-byte).
pub fn design_reports(out: &str) -> Vec<String> {
    parse_output(out)
        .iter()
        .filter_map(|v| {
            let m = v.as_map()?;
            match serde::map_get(m, "report") {
                serde::Value::Null => None,
                report => Some(serde_json::to_string(report).expect("report renders")),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_unusable_state_dir_is_a_structured_build_error() {
        // A state directory that is actually a regular file cannot be
        // opened as a checkpoint store: the harness must surface that as
        // a Build error a test can assert on, not a bare panic.
        let dir = std::env::temp_dir().join(format!(
            "cliffguard-harness-err-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&dir, b"not a directory").expect("write blocker file");
        let harness = ServeHarness::new().with_state_dir(&dir);
        let err = harness
            .try_run_tape(&[r#"{"op":"status"}"#.into()])
            .expect_err("a file for a state dir must fail the build");
        assert!(matches!(err, HarnessError::Build(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("failed to build"), "{msg}");
        assert!(
            std::error::Error::source(&err).is_some(),
            "the underlying I/O error must be preserved"
        );
        let _ = std::fs::remove_file(&dir);
    }
}
