//! The deterministic in-process serve harness.
//!
//! End-to-end daemon tests need three things real deployments make hard:
//! a **virtual clock** (so backoffs and deadlines cost no wall time and
//! perturb nothing), a **scripted request tape** (the daemon's whole
//! input decided up front), and **reproducible scheduling** (output
//! independent of worker interleaving). [`ServeHarness`] packages all
//! three: it builds a fresh [`Daemon`] per run over an in-memory
//! reader/writer pair and returns the complete output stream as a
//! string, which tests compare byte-for-byte across reruns, thread
//! counts, and kill/restart boundaries.
//!
//! ```
//! use cliffguard_serve::harness::{design_line, ServeHarness};
//! use cliffguard_serve::testdata;
//!
//! let harness = ServeHarness::new();
//! let tape = vec![
//!     design_line(&testdata::design_request("acme", 7)),
//!     r#"{"op":"drain"}"#.to_string(),
//! ];
//! let out = harness.run_tape(&tape);
//! assert_eq!(out, harness.run_tape(&tape), "byte-identical reruns");
//! assert!(out.lines().next().unwrap().contains("\"status\":\"done\""));
//! ```

use crate::daemon::{Daemon, ServeConfig};
use crate::protocol::{DesignRequest, Request};
use std::io::{BufReader, Cursor};
use std::path::PathBuf;

/// Renders a design request as the protocol line a client would send.
pub fn design_line(req: &DesignRequest) -> String {
    Request::Design(Box::new(req.clone())).to_line()
}

/// A deterministic, in-process driver for [`Daemon`].
#[derive(Debug, Clone)]
pub struct ServeHarness {
    /// The daemon configuration each [`run_tape`](Self::run_tape) starts
    /// from. Always `virtual_time: true` — the harness exists to make
    /// runs reproducible.
    pub config: ServeConfig,
}

impl Default for ServeHarness {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeHarness {
    /// A harness with virtual time, one worker slot per core, and no
    /// state directory.
    pub fn new() -> Self {
        Self {
            config: ServeConfig {
                virtual_time: true,
                ..ServeConfig::default()
            },
        }
    }

    /// Caps concurrent sessions at `n` (the queue scales with it).
    pub fn with_max_concurrent(mut self, n: usize) -> Self {
        self.config.max_concurrent = n.max(1);
        self.config.max_queue = self.config.max_queue.max(n * 4);
        self
    }

    /// Persists session state under `dir` (enables kill/resume runs).
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.state_dir = Some(dir.into());
        self
    }

    /// Simulates a daemon killed before iteration `k` of every session:
    /// checkpoints persist, no responses are emitted for them.
    pub fn with_kill_after(mut self, k: usize) -> Self {
        self.config.kill_after_iterations = Some(k);
        self
    }

    /// Applies a default fault-plan spec to every request on this tape.
    pub fn with_faults(mut self, spec: impl Into<String>) -> Self {
        self.config.default_faults = Some(spec.into());
        self
    }

    /// Runs a fresh daemon over the tape (one frame per element) through
    /// end-of-input, returning everything it wrote. Panics on I/O errors
    /// — in-memory I/O cannot fail, and a test harness should be loud.
    pub fn run_tape(&self, tape: &[String]) -> String {
        let mut input = tape.join("\n");
        input.push('\n');
        let mut out: Vec<u8> = Vec::new();
        let mut daemon = Daemon::new(self.config.clone()).expect("daemon builds");
        daemon
            .run(BufReader::new(Cursor::new(input)), &mut out)
            .expect("in-memory serve run");
        String::from_utf8(out).expect("protocol output is UTF-8")
    }
}

/// Parses every line of a harness output stream into JSON values,
/// asserting each is one well-formed object (helper for tests).
pub fn parse_output(out: &str) -> Vec<serde::Value> {
    out.lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad response line `{l}`: {e}")))
        .collect()
}

/// Extracts the `report` objects of `design` responses, in order,
/// re-serialized as canonical JSON strings (the per-tenant audit trail
/// tests compare byte-for-byte).
pub fn design_reports(out: &str) -> Vec<String> {
    parse_output(out)
        .iter()
        .filter_map(|v| {
            let m = v.as_map()?;
            match serde::map_get(m, "report") {
                serde::Value::Null => None,
                report => Some(serde_json::to_string(report).expect("report renders")),
            }
        })
        .collect()
}
