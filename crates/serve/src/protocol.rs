//! The newline-delimited JSON protocol of `cliffguard serve`.
//!
//! One request per line in, one response per line out. The grammar is
//! deliberately tiny — a handful of verbs — and every frame is a single
//! JSON object, so any language with a JSON library is a client:
//!
//! ```text
//! {"op":"design","tenant":"acme","catalog":{...},"log":"<tsv>","gamma":"auto"}
//! {"op":"ingest","tenant":"acme","catalog":{...},"chunk":"<tsv bytes>","gamma":0.001}
//! {"op":"ingest","tenant":"acme","chunk":"<more bytes>"}
//! {"op":"ingest","tenant":"acme","chunk":"","eof":true}
//! {"op":"status"}
//! {"op":"metrics"}
//! {"op":"metrics","format":"prometheus"}
//! {"op":"dump"}
//! {"op":"drain"}
//! {"op":"shutdown"}
//! ```
//!
//! `ingest` streams a query log chunk-at-a-time through a per-tenant
//! [`OnlineAdvisor`](cliffguard_core::OnlineAdvisor): the first frame
//! carries the catalog and the advisor knobs; later frames carry only
//! bytes (split anywhere, even mid-UTF-8); `"eof":true` flushes the
//! trailing partial line and closes the open window. Each frame is
//! answered immediately (no drain barrier) with the window audits it
//! closed and the session's trigger history.
//!
//! Parsing is total: a malformed frame yields a [`ProtocolError`], never a
//! panic, and the daemon answers it with an `error` response instead of
//! dying. Requests round-trip through [`Request::to_line`] /
//! [`parse_request`] bit-exactly, which is what lets the daemon persist a
//! request envelope and re-run it after a crash with identical inputs. A
//! fixed Γ travels under its own key, `gamma_bits`, as an IEEE-754 bit
//! pattern (like the checkpoint format); the human-facing `gamma` key
//! accepts `"auto"` or a plain non-negative number, so `{"gamma":2}` and
//! `{"gamma":2.0}` both mean Γ = 2 — the two keys are mutually exclusive.

use serde::{map_get, Deserialize, Error as SerdeError, Serialize, Value};

/// Maximum accepted frame length (bytes). A daemon reading a socket must
/// bound memory per frame; 64 MiB comfortably fits a multi-month query
/// log embedded in a request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Maximum tenant-id length.
pub const MAX_TENANT_LEN: usize = 64;

/// Why a frame was not accepted as a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// Γ for a design request: resolved from drift history or pinned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaSpec {
    /// `"auto"`: 1.5 × the maximum past inter-window δ.
    Auto,
    /// A fixed Γ ≥ 0.
    Fixed(f64),
}

/// Storage budget for a design request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSpec {
    /// `"auto"`: 30% of the raw data size.
    Auto,
    /// A fixed byte budget.
    Bytes(u64),
}

/// A `design` request: everything one tenant's design session needs,
/// self-contained (the daemon persists this envelope verbatim so a killed
/// session restarts from identical inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignRequest {
    /// Tenant id: `[A-Za-z0-9_.-]{1,64}` (it names a state directory).
    pub tenant: String,
    /// The catalog, as the same JSON object `cliffguard generate` writes.
    pub catalog: Value,
    /// The query log, as TSV text (`timestamp\tSQL` per line).
    pub log: String,
    /// Robustness knob.
    pub gamma: GammaSpec,
    /// Storage budget.
    pub budget: BudgetSpec,
    /// Window length for splitting the log (days).
    pub window_days: u64,
    /// Seed for the Γ-neighborhood sampler.
    pub seed: u64,
    /// Designer retry budget override (else the daemon default).
    pub max_retries: Option<u32>,
    /// Per-designer-call deadline override (ms).
    pub designer_deadline_ms: Option<u64>,
    /// Per-session deadline override (ms, else the daemon's
    /// `--tenant-deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Fault-plan spec for drills (else the daemon's `CLIFFGUARD_FAULTS`).
    pub faults: Option<String>,
    /// Replica fleet size R (1 = unreplicated; >1 runs the failure-aware
    /// divergent replica design after the session).
    pub replicas: u64,
    /// Crash budget k of the failure adversary (clamped to R−1).
    pub max_failures: u64,
}

impl DesignRequest {
    /// A request with the protocol defaults for `tenant` over
    /// `catalog`/`log`.
    pub fn new(tenant: impl Into<String>, catalog: Value, log: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            catalog,
            log: log.into(),
            gamma: GammaSpec::Auto,
            budget: BudgetSpec::Auto,
            window_days: 28,
            seed: 42,
            max_retries: None,
            designer_deadline_ms: None,
            deadline_ms: None,
            faults: None,
            replicas: 1,
            max_failures: 0,
        }
    }
}

/// An `ingest` frame: one chunk of a tenant's streaming query log.
///
/// The advisor knobs (`window`/`window_secs`, `gamma`, `warmup`,
/// `cooldown`) and the catalog are read when the tenant's ingest session
/// is created (its first frame, or never for a session recovered from the
/// state directory); later frames carry only bytes. A catalog-bearing
/// frame always starts a *fresh* session, discarding any live session or
/// stale persisted snapshot for the tenant — so a client starting over
/// never silently continues an abandoned tape.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRequest {
    /// Tenant id: `[A-Za-z0-9_.-]{1,64}` (it names a state directory).
    pub tenant: String,
    /// The catalog (required on the session's first frame).
    pub catalog: Option<Value>,
    /// Log bytes. Chunk boundaries may fall anywhere — mid-line and even
    /// mid-UTF-8-sequence (JSON strings are UTF-8, but the *carry* across
    /// frames still re-splits at byte granularity downstream).
    pub chunk: String,
    /// Flush the trailing partial line and close the open window.
    pub eof: bool,
    /// Count-based window length (arrivals per window).
    pub window: Option<u64>,
    /// Log-time window length (seconds); exclusive with `window`.
    pub window_secs: Option<u64>,
    /// Trigger threshold Γ (`auto` = 1.5 × max past inter-window δ).
    pub gamma: GammaSpec,
    /// Windows that must close before the first trigger may fire.
    pub warmup: u64,
    /// Window closes suppressed after each trigger.
    pub cooldown: u64,
}

impl IngestRequest {
    /// A first-frame request with the protocol defaults.
    pub fn new(tenant: impl Into<String>, catalog: Value, chunk: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            catalog: Some(catalog),
            chunk: chunk.into(),
            eof: false,
            window: None,
            window_secs: None,
            gamma: GammaSpec::Auto,
            warmup: 1,
            cooldown: 1,
        }
    }

    /// A follow-up frame carrying only bytes.
    pub fn chunk_only(tenant: impl Into<String>, chunk: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            catalog: None,
            chunk: chunk.into(),
            eof: false,
            window: None,
            window_secs: None,
            gamma: GammaSpec::Auto,
            warmup: 1,
            cooldown: 1,
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a design session for one tenant.
    Design(Box<DesignRequest>),
    /// Feed one chunk of a tenant's streaming query log.
    Ingest(Box<IngestRequest>),
    /// Drain in-flight work, then report daemon + per-tenant state.
    Status,
    /// Drain in-flight work, then report the metrics registry snapshot.
    Metrics {
        /// Wire format of the answer (JSON snapshot or Prometheus text).
        format: MetricsFormat,
    },
    /// Drain in-flight work, then report the most recent flight-recorder
    /// dump (a worker panic or session degradation black box).
    Dump,
    /// Drain in-flight work (an explicit flow-control sync point).
    Drain,
    /// Drain, respond, and stop the daemon.
    Shutdown,
}

/// Output format of the `metrics` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The structured registry snapshot inside a JSON frame (default).
    #[default]
    Json,
    /// Prometheus text exposition (v0.0.4), carried as a string field of
    /// a JSON frame mid-stream or as raw text on the scrape fast path.
    Prometheus,
}

/// Is `t` a valid tenant id (non-empty, bounded, path- and label-safe)?
pub fn valid_tenant(t: &str) -> bool {
    !t.is_empty()
        && t.len() <= MAX_TENANT_LEN
        && t.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
        && !t.starts_with('.')
}

/// Parses one NDJSON frame into a [`Request`]. Total: every failure mode
/// is an `Err`, never a panic.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            line.len()
        )));
    }
    let v: Value = serde_json::from_str(line).map_err(|e| err(format!("bad JSON: {e}")))?;
    let m = v
        .as_map()
        .ok_or_else(|| err("frame must be a JSON object"))?;
    let op = match map_get(m, "op") {
        Value::Str(s) => s.as_str(),
        Value::Null => return Err(err("missing \"op\"")),
        _ => return Err(err("\"op\" must be a string")),
    };
    match op {
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics {
            format: parse_metrics_format(m)?,
        }),
        "dump" => Ok(Request::Dump),
        "drain" => Ok(Request::Drain),
        "shutdown" => Ok(Request::Shutdown),
        "design" => Ok(Request::Design(Box::new(parse_design(m)?))),
        "ingest" => Ok(Request::Ingest(Box::new(parse_ingest(m)?))),
        other => Err(err(format!(
            "unknown op `{other}` (want design|ingest|status|metrics|dump|drain|shutdown)"
        ))),
    }
}

/// Parses the optional `"format"` key of a `metrics` frame. Total like
/// everything else here: an unknown or non-string format is an `Err`
/// (wired back as an `error` frame), never a panic.
fn parse_metrics_format(m: &[(String, Value)]) -> Result<MetricsFormat, ProtocolError> {
    match map_get(m, "format") {
        Value::Null => Ok(MetricsFormat::Json),
        Value::Str(s) => match s.as_str() {
            "json" => Ok(MetricsFormat::Json),
            "prometheus" => Ok(MetricsFormat::Prometheus),
            other => Err(err(format!(
                "metrics: unknown format `{other}` (want json|prometheus)"
            ))),
        },
        _ => Err(err("metrics: \"format\" must be a string")),
    }
}

fn parse_design(m: &[(String, Value)]) -> Result<DesignRequest, ProtocolError> {
    let tenant = match map_get(m, "tenant") {
        Value::Str(s) => s.clone(),
        _ => return Err(err("design: missing string \"tenant\"")),
    };
    if !valid_tenant(&tenant) {
        return Err(err(format!(
            "design: tenant `{tenant}` is not [A-Za-z0-9_.-]{{1,{MAX_TENANT_LEN}}} \
             (and must not start with '.')"
        )));
    }
    let catalog = match map_get(m, "catalog") {
        Value::Map(_) => map_get(m, "catalog").clone(),
        _ => return Err(err("design: missing object \"catalog\"")),
    };
    let log = match map_get(m, "log") {
        Value::Str(s) => s.clone(),
        _ => return Err(err("design: missing string \"log\"")),
    };
    let gamma = parse_gamma(m, "design")?;
    let budget = match map_get(m, "budget") {
        Value::Null => BudgetSpec::Auto,
        Value::Str(s) if s == "auto" => BudgetSpec::Auto,
        Value::U64(b) if *b > 0 => BudgetSpec::Bytes(*b),
        _ => return Err(err("design: budget must be \"auto\" or a positive integer")),
    };
    let u64_field = |key: &str, default: u64| -> Result<u64, ProtocolError> {
        match map_get(m, key) {
            Value::Null => Ok(default),
            Value::U64(n) => Ok(*n),
            _ => Err(err(format!("design: {key} must be a non-negative integer"))),
        }
    };
    let opt_u64 = |key: &str| -> Result<Option<u64>, ProtocolError> {
        match map_get(m, key) {
            Value::Null => Ok(None),
            Value::U64(n) => Ok(Some(*n)),
            _ => Err(err(format!("design: {key} must be a non-negative integer"))),
        }
    };
    let window_days = u64_field("window_days", 28)?;
    if window_days == 0 {
        return Err(err("design: window_days must be >= 1"));
    }
    let faults = match map_get(m, "faults") {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return Err(err("design: faults must be a fault-spec string")),
    };
    let replicas = u64_field("replicas", 1)?;
    if replicas == 0 {
        return Err(err("design: replicas must be >= 1"));
    }
    Ok(DesignRequest {
        tenant,
        catalog,
        log,
        gamma,
        budget,
        window_days,
        seed: u64_field("seed", 42)?,
        max_retries: opt_u64("max_retries")?.map(|n| n.min(u32::MAX as u64) as u32),
        designer_deadline_ms: opt_u64("designer_deadline_ms")?,
        deadline_ms: opt_u64("deadline_ms")?,
        faults,
        replicas,
        max_failures: u64_field("max_failures", 0)?,
    })
}

/// Parses the shared `gamma`/`gamma_bits` pair (`verb` prefixes errors).
fn parse_gamma(m: &[(String, Value)], verb: &str) -> Result<GammaSpec, ProtocolError> {
    let gamma = match (map_get(m, "gamma_bits"), map_get(m, "gamma")) {
        // Bit-exact transport: a persisted envelope must re-run with the
        // exact Γ the original request carried.
        (Value::U64(bits), Value::Null) => GammaSpec::Fixed(f64::from_bits(*bits)),
        (Value::U64(_), _) => {
            return Err(err(format!(
                "{verb}: give gamma or gamma_bits, not both (they could disagree)"
            )))
        }
        (Value::Null, Value::Null) => GammaSpec::Auto,
        (Value::Null, Value::Str(s)) if s == "auto" => GammaSpec::Auto,
        // A plain number is the numeric Γ, whether the client spelled it
        // as an integer or a float: {"gamma":2} == {"gamma":2.0} == 2.0.
        (Value::Null, Value::U64(g)) => GammaSpec::Fixed(*g as f64),
        (Value::Null, Value::F64(g)) if *g >= 0.0 => GammaSpec::Fixed(*g),
        (Value::Null, Value::I64(_) | Value::F64(_)) => {
            return Err(err(format!("{verb}: gamma must be >= 0")))
        }
        (Value::Null, _) => return Err(err(format!("{verb}: gamma must be \"auto\" or a number"))),
        (_, _) => {
            return Err(err(format!(
                "{verb}: gamma_bits must be a non-negative integer (an f64 bit pattern)"
            )))
        }
    };
    if let GammaSpec::Fixed(g) = gamma {
        if !g.is_finite() || g < 0.0 {
            return Err(err(format!("{verb}: gamma must be a finite number >= 0")));
        }
    }
    Ok(gamma)
}

fn parse_ingest(m: &[(String, Value)]) -> Result<IngestRequest, ProtocolError> {
    let tenant = match map_get(m, "tenant") {
        Value::Str(s) => s.clone(),
        _ => return Err(err("ingest: missing string \"tenant\"")),
    };
    if !valid_tenant(&tenant) {
        return Err(err(format!(
            "ingest: tenant `{tenant}` is not [A-Za-z0-9_.-]{{1,{MAX_TENANT_LEN}}} \
             (and must not start with '.')"
        )));
    }
    let catalog = match map_get(m, "catalog") {
        Value::Null => None,
        Value::Map(_) => Some(map_get(m, "catalog").clone()),
        _ => return Err(err("ingest: \"catalog\" must be an object")),
    };
    let chunk = match map_get(m, "chunk") {
        Value::Str(s) => s.clone(),
        Value::Null => return Err(err("ingest: missing string \"chunk\"")),
        _ => return Err(err("ingest: \"chunk\" must be a string")),
    };
    let eof = match map_get(m, "eof") {
        Value::Null => false,
        Value::Bool(b) => *b,
        _ => return Err(err("ingest: \"eof\" must be a boolean")),
    };
    let opt_u64 = |key: &str| -> Result<Option<u64>, ProtocolError> {
        match map_get(m, key) {
            Value::Null => Ok(None),
            Value::U64(n) => Ok(Some(*n)),
            _ => Err(err(format!("ingest: {key} must be a non-negative integer"))),
        }
    };
    let window = opt_u64("window")?;
    let window_secs = opt_u64("window_secs")?;
    if window.is_some() && window_secs.is_some() {
        return Err(err("ingest: give window or window_secs, not both"));
    }
    if window == Some(0) || window_secs == Some(0) {
        return Err(err("ingest: window lengths must be >= 1"));
    }
    Ok(IngestRequest {
        tenant,
        catalog,
        chunk,
        eof,
        window,
        window_secs,
        gamma: parse_gamma(m, "ingest")?,
        warmup: opt_u64("warmup")?.unwrap_or(1),
        cooldown: opt_u64("cooldown")?.unwrap_or(1),
    })
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Status => Value::Map(vec![("op".into(), Value::Str("status".into()))]),
            Request::Metrics { format } => {
                let mut m = vec![("op".into(), Value::Str("metrics".into()))];
                // The format key travels only when non-default, keeping
                // persisted PR-5-era envelopes and this serializer aligned.
                if *format == MetricsFormat::Prometheus {
                    m.push(("format".into(), Value::Str("prometheus".into())));
                }
                Value::Map(m)
            }
            Request::Dump => Value::Map(vec![("op".into(), Value::Str("dump".into()))]),
            Request::Drain => Value::Map(vec![("op".into(), Value::Str("drain".into()))]),
            Request::Shutdown => Value::Map(vec![("op".into(), Value::Str("shutdown".into()))]),
            Request::Design(d) => {
                let mut m = vec![
                    ("op".into(), Value::Str("design".into())),
                    ("tenant".into(), Value::Str(d.tenant.clone())),
                    ("catalog".into(), d.catalog.clone()),
                    ("log".into(), Value::Str(d.log.clone())),
                    match d.gamma {
                        GammaSpec::Auto => ("gamma".into(), Value::Str("auto".into())),
                        // U64 bit pattern under its own key: survives JSON
                        // exactly, and cannot be mistaken for a numeric Γ.
                        GammaSpec::Fixed(g) => ("gamma_bits".into(), Value::U64(g.to_bits())),
                    },
                    (
                        "budget".into(),
                        match d.budget {
                            BudgetSpec::Auto => Value::Str("auto".into()),
                            BudgetSpec::Bytes(b) => Value::U64(b),
                        },
                    ),
                    ("window_days".into(), Value::U64(d.window_days)),
                    ("seed".into(), Value::U64(d.seed)),
                ];
                if let Some(n) = d.max_retries {
                    m.push(("max_retries".into(), Value::U64(n as u64)));
                }
                if let Some(n) = d.designer_deadline_ms {
                    m.push(("designer_deadline_ms".into(), Value::U64(n)));
                }
                if let Some(n) = d.deadline_ms {
                    m.push(("deadline_ms".into(), Value::U64(n)));
                }
                if let Some(s) = &d.faults {
                    m.push(("faults".into(), Value::Str(s.clone())));
                }
                // Replica fields travel only when non-default, so PR-5-era
                // persisted envelopes and this serializer stay aligned.
                if d.replicas != 1 {
                    m.push(("replicas".into(), Value::U64(d.replicas)));
                }
                if d.max_failures != 0 {
                    m.push(("max_failures".into(), Value::U64(d.max_failures)));
                }
                Value::Map(m)
            }
            Request::Ingest(i) => {
                let mut m = vec![
                    ("op".into(), Value::Str("ingest".into())),
                    ("tenant".into(), Value::Str(i.tenant.clone())),
                ];
                if let Some(c) = &i.catalog {
                    m.push(("catalog".into(), c.clone()));
                }
                m.push(("chunk".into(), Value::Str(i.chunk.clone())));
                if i.eof {
                    m.push(("eof".into(), Value::Bool(true)));
                }
                if let Some(n) = i.window {
                    m.push(("window".into(), Value::U64(n)));
                }
                if let Some(n) = i.window_secs {
                    m.push(("window_secs".into(), Value::U64(n)));
                }
                match i.gamma {
                    GammaSpec::Auto => {}
                    GammaSpec::Fixed(g) => m.push(("gamma_bits".into(), Value::U64(g.to_bits()))),
                }
                if i.warmup != 1 {
                    m.push(("warmup".into(), Value::U64(i.warmup)));
                }
                if i.cooldown != 1 {
                    m.push(("cooldown".into(), Value::U64(i.cooldown)));
                }
                Value::Map(m)
            }
        }
    }
}

impl Request {
    /// Renders the request as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

// ------------------------------------------------------------ responses --

/// Terminal status of a design request. Every admitted or refused request
/// ends in exactly one of these — the protocol has no silent drops (the
/// one exception is a daemon killed mid-session, whose restart emits the
/// response with `resumed: true`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignStatus {
    /// The session finished cleanly.
    Done,
    /// The session finished by graceful degradation (see `reason`).
    Degraded,
    /// The request was refused (queue full, bad inputs) — see `reason`.
    Rejected,
}

impl DesignStatus {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            DesignStatus::Done => "done",
            DesignStatus::Degraded => "degraded",
            DesignStatus::Rejected => "rejected",
        }
    }
}

/// The audited outcome of one completed design session.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Order-insensitive structure hash of the final design.
    pub fingerprint: u64,
    /// Number of structures (projections) in the design.
    pub structures: usize,
    /// Storage price of the design (bytes).
    pub price_bytes: u64,
    /// The Γ the session ran with (resolved if the request said `auto`).
    pub gamma: f64,
    /// The budget the session ran with (resolved if `auto`).
    pub budget_bytes: u64,
    /// Designer calls made (logical, not counting retries).
    pub designer_calls: usize,
    /// Retries absorbed.
    pub retries: usize,
    /// Faults observed.
    pub faults: usize,
    /// Degradation reason, when the session degraded.
    pub degraded: Option<String>,
    /// Worst-case objective per iteration, as IEEE-754 bit patterns (the
    /// audit trail a kill/resume test compares byte-for-byte).
    pub worst_case_bits: Vec<u64>,
    /// The design, rendered as DDL.
    pub ddl: String,
    /// Replica fleet size the request asked for (1 = unreplicated; the
    /// three replica fields below are absent on the wire when 1, so
    /// PR-5-era persisted results still parse).
    pub replicas: u64,
    /// Order-insensitive fingerprint of the replicated design *set*
    /// (0 when unreplicated).
    pub replica_set_fingerprint: u64,
    /// The deterministic replica audit (JSON, see
    /// `cliffguard_core::ReplicaAudit::to_json`), when `replicas > 1`.
    pub replica_audit: Option<String>,
}

impl Serialize for DesignReport {
    fn to_value(&self) -> Value {
        let mut v = Value::Map(vec![
            ("fingerprint".into(), Value::U64(self.fingerprint)),
            ("structures".into(), Value::U64(self.structures as u64)),
            ("price_bytes".into(), Value::U64(self.price_bytes)),
            ("gamma_bits".into(), Value::U64(self.gamma.to_bits())),
            ("budget_bytes".into(), Value::U64(self.budget_bytes)),
            (
                "designer_calls".into(),
                Value::U64(self.designer_calls as u64),
            ),
            ("retries".into(), Value::U64(self.retries as u64)),
            ("faults".into(), Value::U64(self.faults as u64)),
            (
                "degraded".into(),
                match &self.degraded {
                    Some(r) => Value::Str(r.clone()),
                    None => Value::Null,
                },
            ),
            (
                "worst_case_bits".into(),
                Value::Seq(
                    self.worst_case_bits
                        .iter()
                        .map(|&b| Value::U64(b))
                        .collect(),
                ),
            ),
            ("ddl".into(), Value::Str(self.ddl.clone())),
        ]);
        if self.replicas > 1 {
            let Value::Map(m) = &mut v else {
                unreachable!()
            };
            m.push(("replicas".into(), Value::U64(self.replicas)));
            m.push((
                "replica_set_fingerprint".into(),
                Value::U64(self.replica_set_fingerprint),
            ));
            m.push((
                "replica_audit".into(),
                match &self.replica_audit {
                    Some(a) => Value::Str(a.clone()),
                    None => Value::Null,
                },
            ));
        }
        v
    }
}

impl Deserialize for DesignReport {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let m = v
            .as_map()
            .ok_or_else(|| SerdeError::msg("report: expected map"))?;
        let bits: Vec<u64> = Vec::from_value(map_get(m, "worst_case_bits"))?;
        Ok(Self {
            fingerprint: u64::from_value(map_get(m, "fingerprint"))?,
            structures: u64::from_value(map_get(m, "structures"))? as usize,
            price_bytes: u64::from_value(map_get(m, "price_bytes"))?,
            gamma: f64::from_bits(u64::from_value(map_get(m, "gamma_bits"))?),
            budget_bytes: u64::from_value(map_get(m, "budget_bytes"))?,
            designer_calls: u64::from_value(map_get(m, "designer_calls"))? as usize,
            retries: u64::from_value(map_get(m, "retries"))? as usize,
            faults: u64::from_value(map_get(m, "faults"))? as usize,
            degraded: Option::<String>::from_value(map_get(m, "degraded"))?,
            worst_case_bits: bits,
            ddl: String::from_value(map_get(m, "ddl"))?,
            // Replica fields default when absent: result.json files
            // persisted before replication existed must still parse.
            replicas: match map_get(m, "replicas") {
                Value::Null => 1,
                v => u64::from_value(v)?,
            },
            replica_set_fingerprint: match map_get(m, "replica_set_fingerprint") {
                Value::Null => 0,
                v => u64::from_value(v)?,
            },
            replica_audit: Option::<String>::from_value(map_get(m, "replica_audit"))?,
        })
    }
}

/// One flight-recorder dump as the `dump` verb reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightInfo {
    /// Tenant whose session produced the dump.
    pub tenant: String,
    /// The session's daemon sequence number (matches the `seq` of its
    /// `design` response).
    pub session_seq: u64,
    /// Why the dump was taken: the degradation reason or panic message.
    pub reason: String,
    /// The retained trace lines as JSONL (newline-terminated).
    pub flight: String,
}

/// A protocol response, rendered as one NDJSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Terminal answer to a design request.
    Design {
        /// Sequence number of the request this answers.
        seq: u64,
        /// The tenant.
        tenant: String,
        /// Terminal status.
        status: DesignStatus,
        /// Reason, for `rejected` (and `degraded` carries it in the
        /// report too).
        reason: Option<String>,
        /// The audited outcome (absent on rejection).
        report: Option<DesignReport>,
        /// Whether this session was recovered from the state directory
        /// after a daemon restart.
        resumed: bool,
    },
    /// Answer to one `ingest` frame (emitted immediately, no barrier).
    Ingest {
        /// Sequence number of the frame this answers.
        seq: u64,
        /// The tenant.
        tenant: String,
        /// Windows closed over the whole session so far.
        windows: u64,
        /// Audit lines ([`WindowAudit::line`](cliffguard_core::WindowAudit::line))
        /// of the windows closed by *this* frame, in close order.
        audits: Vec<String>,
        /// Full trigger history: indices of every window that fired.
        triggers: Vec<u64>,
        /// Whether the trigger is armed after this frame.
        armed: bool,
        /// Cooldown windows remaining after this frame.
        cooldown: u64,
        /// Records parsed over the whole session so far.
        parsed: u64,
        /// Records skipped (bad SQL + malformed lines) so far.
        skipped: u64,
        /// Whether this frame closed the session (`"eof":true`).
        closed: bool,
    },
    /// Answer to `status`.
    Status {
        /// Sequence number of the request this answers.
        seq: u64,
        /// The daemon + per-tenant state, pre-rendered as a JSON value.
        snapshot: Value,
    },
    /// Answer to `metrics`.
    Metrics {
        /// Sequence number of the request this answers.
        seq: u64,
        /// Per-tenant session stats.
        tenants: Value,
        /// The metrics-registry snapshot, when telemetry metrics are
        /// installed (`null` otherwise).
        registry: Option<Value>,
    },
    /// Answer to `metrics` with `"format":"prometheus"`: the exposition
    /// text carried inside an NDJSON frame.
    MetricsText {
        /// Sequence number of the request this answers.
        seq: u64,
        /// Prometheus text exposition (v0.0.4) of the registry snapshot
        /// (empty when no metrics registry is installed).
        body: String,
    },
    /// Answer to `dump`: the most recent flight-recorder dump, if any
    /// session has degraded or panicked since the daemon started.
    Dump {
        /// Sequence number of the request this answers.
        seq: u64,
        /// The dump, absent while no failure has been recorded.
        dump: Option<FlightInfo>,
    },
    /// Answer to `drain`: all previously admitted sessions have completed
    /// and their responses were emitted before this line.
    Drained {
        /// Sequence number of the request this answers.
        seq: u64,
        /// Design sessions completed by this drain.
        completed: u64,
    },
    /// Answer to an unparseable frame.
    Error {
        /// Sequence number assigned to the bad frame.
        seq: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// Final line before the daemon exits on `shutdown`.
    Shutdown {
        /// Sequence number of the request this answers.
        seq: u64,
    },
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Design {
                seq,
                tenant,
                status,
                reason,
                report,
                resumed,
            } => {
                let mut m = vec![
                    ("seq".into(), Value::U64(*seq)),
                    ("op".into(), Value::Str("design".into())),
                    ("tenant".into(), Value::Str(tenant.clone())),
                    ("status".into(), Value::Str(status.name().into())),
                ];
                if let Some(r) = reason {
                    m.push(("reason".into(), Value::Str(r.clone())));
                }
                if let Some(rep) = report {
                    m.push(("report".into(), rep.to_value()));
                }
                m.push(("resumed".into(), Value::Bool(*resumed)));
                Value::Map(m)
            }
            Response::Ingest {
                seq,
                tenant,
                windows,
                audits,
                triggers,
                armed,
                cooldown,
                parsed,
                skipped,
                closed,
            } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("ingest".into())),
                ("tenant".into(), Value::Str(tenant.clone())),
                ("windows".into(), Value::U64(*windows)),
                (
                    "audits".into(),
                    Value::Seq(audits.iter().map(|a| Value::Str(a.clone())).collect()),
                ),
                (
                    "triggers".into(),
                    Value::Seq(triggers.iter().map(|&t| Value::U64(t)).collect()),
                ),
                ("armed".into(), Value::Bool(*armed)),
                ("cooldown".into(), Value::U64(*cooldown)),
                ("parsed".into(), Value::U64(*parsed)),
                ("skipped".into(), Value::U64(*skipped)),
                ("closed".into(), Value::Bool(*closed)),
            ]),
            Response::Status { seq, snapshot } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("status".into())),
                ("daemon".into(), snapshot.clone()),
            ]),
            Response::Metrics {
                seq,
                tenants,
                registry,
            } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("metrics".into())),
                ("tenants".into(), tenants.clone()),
                ("registry".into(), registry.clone().unwrap_or(Value::Null)),
            ]),
            Response::MetricsText { seq, body } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("metrics".into())),
                ("format".into(), Value::Str("prometheus".into())),
                ("body".into(), Value::Str(body.clone())),
            ]),
            Response::Dump { seq, dump } => {
                let mut m = vec![
                    ("seq".into(), Value::U64(*seq)),
                    ("op".into(), Value::Str("dump".into())),
                    ("available".into(), Value::Bool(dump.is_some())),
                ];
                if let Some(d) = dump {
                    m.push(("tenant".into(), Value::Str(d.tenant.clone())));
                    m.push(("session".into(), Value::U64(d.session_seq)));
                    m.push(("reason".into(), Value::Str(d.reason.clone())));
                    m.push(("flight".into(), Value::Str(d.flight.clone())));
                }
                Value::Map(m)
            }
            Response::Drained { seq, completed } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("drain".into())),
                ("completed".into(), Value::U64(*completed)),
            ]),
            Response::Error { seq, reason } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("error".into())),
                ("reason".into(), Value::Str(reason.clone())),
            ]),
            Response::Shutdown { seq } => Value::Map(vec![
                ("seq".into(), Value::U64(*seq)),
                ("op".into(), Value::Str("shutdown".into())),
            ]),
        }
    }
}

impl Response {
    /// Renders the response as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_catalog_value() -> Value {
        Value::Map(vec![("tables".into(), Value::Seq(vec![]))])
    }

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request(r#"{"op":"status"}"#), Ok(Request::Status));
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#),
            Ok(Request::Metrics {
                format: MetricsFormat::Json
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"prometheus"}"#),
            Ok(Request::Metrics {
                format: MetricsFormat::Prometheus
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"json"}"#),
            Ok(Request::Metrics {
                format: MetricsFormat::Json
            })
        );
        assert_eq!(parse_request(r#"{"op":"dump"}"#), Ok(Request::Dump));
        assert_eq!(parse_request(r#"{"op":"drain"}"#), Ok(Request::Drain));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
        // Malformed formats are protocol errors, never panics.
        assert!(parse_request(r#"{"op":"metrics","format":"xml"}"#).is_err());
        assert!(parse_request(r#"{"op":"metrics","format":7}"#).is_err());
    }

    #[test]
    fn malformed_frames_error_without_panicking() {
        for bad in [
            "",
            "not json",
            "[]",
            "42",
            r#"{"op":7}"#,
            r#"{"op":"teleport"}"#,
            r#"{"op":"design"}"#,
            r#"{"op":"design","tenant":""}"#,
            r#"{"op":"design","tenant":"../etc","catalog":{},"log":"x"}"#,
            r#"{"op":"design","tenant":".hidden","catalog":{},"log":"x"}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","gamma":-0.5}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","gamma":-2}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","gamma_bits":1.5}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","gamma":1.0,"gamma_bits":7}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","budget":0}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","window_days":0}"#,
            r#"{"op":"design","tenant":"t","catalog":[],"log":"x"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn integer_and_float_gamma_mean_the_same_number() {
        // {"gamma":2} must be Γ = 2.0, not f64::from_bits(2) ≈ 1e-323 —
        // the bit-exact transport lives under gamma_bits, never gamma.
        let int = r#"{"op":"design","tenant":"t","catalog":{},"log":"x","gamma":2}"#;
        let float = r#"{"op":"design","tenant":"t","catalog":{},"log":"x","gamma":2.0}"#;
        for frame in [int, float] {
            let Ok(Request::Design(req)) = parse_request(frame) else {
                panic!("must parse: {frame}");
            };
            assert_eq!(req.gamma, GammaSpec::Fixed(2.0), "{frame}");
        }
        let bits = format!(
            r#"{{"op":"design","tenant":"t","catalog":{{}},"log":"x","gamma_bits":{}}}"#,
            2.0f64.to_bits()
        );
        let Ok(Request::Design(req)) = parse_request(&bits) else {
            panic!("must parse: {bits}");
        };
        assert_eq!(req.gamma, GammaSpec::Fixed(2.0));
    }

    #[test]
    fn replica_fields_round_trip_and_default_when_absent() {
        let mut req = DesignRequest::new("acme", tiny_catalog_value(), "1\tSELECT a FROM t;\n");
        req.replicas = 3;
        req.max_failures = 1;
        let line = Request::Design(Box::new(req.clone())).to_line();
        assert_eq!(parse_request(&line), Ok(Request::Design(Box::new(req))));
        // A PR-5-era frame with no replica keys parses with R=1, k=0, and
        // serializes without them.
        let old = r#"{"op":"design","tenant":"t","catalog":{},"log":"x"}"#;
        let Ok(Request::Design(req)) = parse_request(old) else {
            panic!("must parse: {old}");
        };
        assert_eq!((req.replicas, req.max_failures), (1, 0));
        let line = Request::Design(req).to_line();
        assert!(!line.contains("replicas"), "{line}");
        // Bad values are refused.
        for bad in [
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","replicas":0}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","replicas":"two"}"#,
            r#"{"op":"design","tenant":"t","catalog":{},"log":"x","max_failures":-1}"#,
        ] {
            assert!(parse_request(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn replica_report_fields_survive_the_wire_and_default_when_absent() {
        let rep = DesignReport {
            fingerprint: 1,
            structures: 2,
            price_bytes: 3,
            gamma: 0.5,
            budget_bytes: 4,
            designer_calls: 5,
            retries: 0,
            faults: 0,
            degraded: None,
            worst_case_bits: vec![],
            ddl: "x".into(),
            replicas: 3,
            replica_set_fingerprint: 0xfeed,
            replica_audit: Some("{\"replicas\":3}".into()),
        };
        let back = DesignReport::from_value(&rep.to_value()).unwrap();
        assert_eq!(back, rep);
        // An unreplicated report carries no replica keys...
        let uni = DesignReport {
            replicas: 1,
            replica_set_fingerprint: 0,
            replica_audit: None,
            ..rep
        };
        let v = uni.to_value();
        assert_eq!(map_get(v.as_map().unwrap(), "replicas"), &Value::Null);
        // ...and still round-trips via the absence defaults.
        assert_eq!(DesignReport::from_value(&v).unwrap(), uni);
    }

    #[test]
    fn ingest_frames_parse_round_trip_and_reject_bad_shapes() {
        // First frame: catalog + knobs.
        let mut req = IngestRequest::new("acme", tiny_catalog_value(), "1\tSELECT a FROM t\n");
        req.window = Some(8);
        req.gamma = GammaSpec::Fixed(0.1 + 0.2);
        req.warmup = 2;
        let line = Request::Ingest(Box::new(req.clone())).to_line();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(parse_request(&line), Ok(Request::Ingest(Box::new(req))));
        // Follow-up frame: bytes only; defaults fill in.
        let follow = r#"{"op":"ingest","tenant":"acme","chunk":"2\tSELECT b FROM t\n"}"#;
        let Ok(Request::Ingest(req)) = parse_request(follow) else {
            panic!("must parse: {follow}");
        };
        assert_eq!(req.catalog, None);
        assert_eq!((req.window, req.window_secs), (None, None));
        assert_eq!(req.gamma, GammaSpec::Auto);
        assert_eq!((req.warmup, req.cooldown), (1, 1));
        assert!(!req.eof);
        let back = Request::Ingest(req.clone()).to_line();
        assert_eq!(parse_request(&back), Ok(Request::Ingest(req)));
        // eof frames round-trip.
        let eof = r#"{"op":"ingest","tenant":"acme","chunk":"","eof":true}"#;
        let Ok(Request::Ingest(req)) = parse_request(eof) else {
            panic!("must parse: {eof}");
        };
        assert!(req.eof);
        // Malformed frames are protocol errors, never panics.
        for bad in [
            r#"{"op":"ingest"}"#,
            r#"{"op":"ingest","tenant":""}"#,
            r#"{"op":"ingest","tenant":"../x","chunk":""}"#,
            r#"{"op":"ingest","tenant":"t"}"#,
            r#"{"op":"ingest","tenant":"t","chunk":7}"#,
            r#"{"op":"ingest","tenant":"t","chunk":"","eof":"yes"}"#,
            r#"{"op":"ingest","tenant":"t","chunk":"","catalog":[]}"#,
            r#"{"op":"ingest","tenant":"t","chunk":"","window":0}"#,
            r#"{"op":"ingest","tenant":"t","chunk":"","window":4,"window_secs":60}"#,
            r#"{"op":"ingest","tenant":"t","chunk":"","gamma":-0.5}"#,
            r#"{"op":"ingest","tenant":"t","chunk":"","gamma":1.0,"gamma_bits":7}"#,
        ] {
            assert!(parse_request(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn ingest_responses_are_single_lines_with_bit_pattern_audits() {
        let r = Response::Ingest {
            seq: 4,
            tenant: "acme".into(),
            windows: 3,
            audits: vec!["W2 arrivals=4 distinct=2 delta_bits=0000000000000000 \
                 gamma_bits=3f50624dd2f1a9fc trigger=0 armed=1 cooldown=0 span=200..230"
                .into()],
            triggers: vec![1],
            armed: true,
            cooldown: 0,
            parsed: 12,
            skipped: 1,
            closed: false,
        };
        let line = r.to_line();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with(r#"{"seq":4,"op":"ingest""#), "{line}");
        assert!(line.contains(r#""triggers":[1]"#), "{line}");
        assert!(line.contains("delta_bits=0000000000000000"), "{line}");
    }

    #[test]
    fn design_round_trips_with_newlines_and_gamma_bits() {
        let mut req = DesignRequest::new("acme-1", tiny_catalog_value(), "1\tSELECT a FROM t;\n");
        req.gamma = GammaSpec::Fixed(0.1 + 0.2); // not decimal-clean
        req.budget = BudgetSpec::Bytes(1 << 30);
        req.seed = 7;
        req.faults = Some("seed=1,rate=0.3".into());
        req.deadline_ms = Some(5_000);
        let line = Request::Design(Box::new(req.clone())).to_line();
        assert!(!line.contains('\n'), "NDJSON frames are one line: {line}");
        let back = parse_request(&line).expect("round trip");
        assert_eq!(back, Request::Design(Box::new(req)));
    }

    #[test]
    fn responses_are_single_lines() {
        let r = Response::Design {
            seq: 3,
            tenant: "t".into(),
            status: DesignStatus::Done,
            reason: None,
            report: Some(DesignReport {
                fingerprint: 0xabc,
                structures: 2,
                price_bytes: 10,
                gamma: 0.1 + 0.2,
                budget_bytes: 100,
                designer_calls: 4,
                retries: 1,
                faults: 1,
                degraded: None,
                worst_case_bits: vec![1.5f64.to_bits()],
                ddl: "CREATE PROJECTION p (\n  a\n);\n".into(),
                replicas: 1,
                replica_set_fingerprint: 0,
                replica_audit: None,
            }),
            resumed: false,
        };
        let line = r.to_line();
        assert!(!line.contains('\n'), "{line}");
        // The report round-trips through the wire value bit-exactly.
        let v: Value = serde_json::from_str(&line).unwrap();
        let rep = DesignReport::from_value(map_get(v.as_map().unwrap(), "report")).unwrap();
        assert_eq!(rep.gamma.to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(rep.ddl.contains('\n'));
    }
}
