//! The daemon's shared worker pool.
//!
//! A fixed set of workers drains a FIFO job queue; the intake thread
//! [`submit`](WorkerPool::submit)s one job per admitted design request and
//! later [`wait`](WorkerPool::wait)s on its id at a drain barrier. Job
//! panics are caught and surfaced as `Err` from `wait` — a wedged request
//! must terminate in a response, never take the daemon down or vanish.
//!
//! Determinism: the pool intentionally has **no** influence on the
//! protocol output. Jobs are independent (each owns its session, clock,
//! and RNG), results are keyed by id, and the daemon collects them in
//! admission order at barriers — so worker count and completion order are
//! unobservable in the output stream.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job<T> = Box<dyn FnOnce() -> T + Send>;

struct Shared<T> {
    queue: Mutex<Queue<T>>,
    /// Signals workers: a job was queued, or shutdown began.
    work: Condvar,
    /// Signals waiters: a result landed.
    done: Condvar,
}

struct Queue<T> {
    jobs: VecDeque<(u64, Job<T>)>,
    results: HashMap<u64, Result<T, String>>,
    shutdown: bool,
}

/// A fixed-size worker pool with id-addressed results.
pub struct WorkerPool<T> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `n` workers (at least one).
    pub fn new(n: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                results: HashMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..n.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Queues a job under `id`. Ids must be unique across the pool's
    /// lifetime (the daemon uses the request sequence number).
    pub fn submit(&self, id: u64, job: Job<T>) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.jobs.push_back((id, job));
        drop(q);
        self.shared.work.notify_one();
    }

    /// Blocks until job `id` finishes; `Err` carries a panic message.
    pub fn wait(&self, id: u64) -> Result<T, String> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = q.results.remove(&id) {
                return r;
            }
            q = self.shared.done.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn worker_loop<T: Send>(shared: &Shared<T>) {
    loop {
        let (id, job) = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into())
        });
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.results.insert(id, result);
        drop(q);
        shared.done.notify_all();
    }
}

impl<T> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_keyed_by_id_not_completion_order() {
        let pool: WorkerPool<u64> = WorkerPool::new(4);
        for id in 0..32u64 {
            pool.submit(
                id,
                Box::new(move || {
                    // Stagger finish order.
                    std::thread::sleep(std::time::Duration::from_millis((32 - id) % 5));
                    id * 10
                }),
            );
        }
        for id in 0..32u64 {
            assert_eq!(pool.wait(id), Ok(id * 10));
        }
    }

    #[test]
    fn panics_become_errors_and_workers_survive() {
        let pool: WorkerPool<u64> = WorkerPool::new(1);
        pool.submit(1, Box::new(|| panic!("session exploded")));
        pool.submit(2, Box::new(|| 7));
        let err = pool.wait(1).expect_err("panic must surface");
        assert!(err.contains("session exploded"), "{err}");
        // The single worker absorbed the panic and keeps serving.
        assert_eq!(pool.wait(2), Ok(7));
    }
}
