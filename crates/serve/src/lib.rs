//! Advisor-as-a-service: the multi-tenant `cliffguard serve` daemon.
//!
//! The paper frames CliffGuard as a tool a DBA runs by hand; this crate
//! turns it into a long-running service a fleet of tenants can share.
//! Requests arrive as newline-delimited JSON — over stdin/stdout or a
//! TCP socket, all first-party code — and each `design` request runs a
//! full resilient [`DesignSession`](cliffguard_core::DesignSession) on a
//! shared worker pool:
//!
//! * **Protocol** ([`protocol`]): seven verbs (`design`, `ingest`,
//!   `status`, `metrics`, `dump`, `drain`, `shutdown`), total parsing
//!   (malformed frames get `error` responses, never a panic), bit-exact
//!   float transport. `metrics` takes `"format":"prometheus"` for text
//!   exposition, and a fresh TCP connection may scrape with a raw
//!   `GET /metrics` request line.
//! * **Streaming ingest** ([`ingest`]): per-tenant `ingest` frames feed
//!   raw query-log bytes through a chunk-boundary-oblivious
//!   [`LogStream`](cliffguard_workload::LogStream) into an online
//!   drift-triggered advisor; each frame is answered synchronously with
//!   the windows it closed, and with a state directory the session
//!   snapshot persists after every frame, so a killed daemon resumes the
//!   stream with a **byte-identical** trigger history.
//! * **Flight recorder**: each session tees its trace events into a
//!   bounded ring; degraded and panicked sessions leave a
//!   `flight-<tenant>-<seq>.jsonl` black box in the state directory,
//!   served by the `dump` verb.
//! * **Admission control** ([`daemon`]): a bounded in-flight queue;
//!   overflow is rejected with a reason, deterministically — queue slots
//!   change only at admissions and drain barriers, both tape-driven.
//! * **Durability** ([`store`]): every admitted request and its descent
//!   checkpoints persist under `--state-dir`; a killed daemon restarted
//!   on the same directory finishes each pending session with a final
//!   design and audit trail **bit-identical** to an uninterrupted run.
//! * **Scheduling** ([`scheduler`]): a panic-isolating worker pool whose
//!   interleaving is unobservable in the output stream.
//! * **Accounting** ([`tenant`]): per-tenant session stats, surfaced via
//!   `status`/`metrics` and as labeled telemetry series.
//! * **Testing** ([`harness`]): a first-class deterministic harness —
//!   virtual clock, scripted request tape, byte-comparable output.
//!
//! See DESIGN.md §12 for the protocol grammar and determinism contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod harness;
pub mod ingest;
pub mod protocol;
pub mod runner;
pub mod scheduler;
pub mod store;
pub mod tenant;
pub mod testdata;

pub use daemon::{Daemon, ServeConfig};
pub use harness::{design_line, HarnessError, ServeHarness};
pub use ingest::IngestSession;
pub use protocol::{
    parse_request, BudgetSpec, DesignReport, DesignRequest, DesignStatus, FlightInfo, GammaSpec,
    IngestRequest, MetricsFormat, ProtocolError, Request, Response,
};
pub use runner::{run_design, RunOutcome, RunnerOptions};
pub use scheduler::WorkerPool;
pub use store::{CheckpointStore, PendingSession};
pub use tenant::{TenantRegistry, TenantStats};
