//! Canned tenant inputs for the serve tests and benchmarks.
//!
//! The daemon's end-to-end suites all need the same thing: a small,
//! seeded (catalog, log) pair that drifts enough for the robust descent
//! to do real work. This module generates one with the workspace's own
//! R1 drifting generator — the same data `cliffguard generate` writes to
//! disk, kept in memory as the protocol carries it (catalog as a JSON
//! value, log as TSV text).

use crate::protocol::DesignRequest;
use cliffguard_storage::CatalogGenerator;
use cliffguard_workload::generator::{DriftingGenerator, SchemaShape, WorkloadProfile};
use cliffguard_workload::{LogTape, LogTapeConfig};
use serde::{Serialize, Value};

/// A seeded small catalog (as the JSON value the protocol carries) and
/// its drifting R1 query log (as TSV text).
pub fn catalog_and_log(seed: u64) -> (Value, String) {
    let mut config = WorkloadProfile::R1.config(seed).scaled(0.2);
    config.n_windows = 4;
    let mut generator = DriftingGenerator::new(config);
    let shape = generator.shape().clone();
    let log = generator.generate();
    let catalog = CatalogGenerator {
        seed,
        ..CatalogGenerator::default()
    }
    .generate(&shape);
    (catalog.to_value(), catalog.export_log(&log))
}

/// A complete `design` request for `tenant`, seeded with `seed` (which
/// drives both the generated inputs and the session's sampler).
pub fn design_request(tenant: &str, seed: u64) -> DesignRequest {
    let (catalog, log) = catalog_and_log(seed);
    let mut req = DesignRequest::new(tenant, catalog, log);
    req.seed = seed;
    req
}

/// A drift-scripted [`LogTape`] plus a catalog (as the protocol's JSON
/// value) whose `t{i}`/`c{j}` names match the tape's schema — the canned
/// input of the ingest tests and benches.
pub fn ingest_fixture(config: LogTapeConfig) -> (Value, LogTape) {
    let tape = LogTape::generate(config);
    let cfg = tape.config();
    let shape = SchemaShape::new(vec![cfg.cols_per_table as u32; cfg.tables]);
    let catalog = CatalogGenerator {
        seed: cfg.seed,
        ..CatalogGenerator::default()
    }
    .generate(&shape);
    (catalog.to_value(), tape)
}
