//! The daemon's durable session state.
//!
//! Layout under `--state-dir`:
//!
//! ```text
//! <state-dir>/seq                                     highest seq ever assigned
//! <state-dir>/flight-<tenant>-<seq>.jsonl             flight-recorder dump (panic/degradation)
//! <state-dir>/tenants/<tenant>/<seq>/request.json     the admitted request
//! <state-dir>/tenants/<tenant>/<seq>/checkpoint.json  latest descent checkpoint
//! <state-dir>/tenants/<tenant>/<seq>/result.json      the emitted response
//! ```
//!
//! A session is **pending** iff its `request.json` exists and its
//! `result.json` does not parse as JSON; a restarted daemon replays
//! exactly those, in admission (`seq`) order, resuming from
//! `checkpoint.json` when present. Every write goes through write +
//! fsync + same-directory `.tmp` + rename, so a kill — or a power loss —
//! mid-write leaves either the old file or the new one, never a torn
//! one; validating `result.json` in [`CheckpointStore::pending`] backs
//! that up on filesystems where the rename itself can still be lost.
//! (Tenant ids are validated by the protocol layer — `[A-Za-z0-9_.-]`,
//! no leading dot — so a tenant name can never escape `tenants/`.)

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One not-yet-completed session found in the state directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSession {
    /// Admission sequence number (directory name).
    pub seq: u64,
    /// The tenant that owns the session.
    pub tenant: String,
    /// The persisted request envelope (one protocol line).
    pub request_line: String,
    /// The latest persisted checkpoint, when one was written.
    pub checkpoint_json: Option<String>,
}

/// Filesystem store for per-session request/checkpoint/result triples.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("tenants"))?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn session_dir(&self, tenant: &str, seq: u64) -> PathBuf {
        self.root.join("tenants").join(tenant).join(seq.to_string())
    }

    fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, contents.as_bytes())?;
        // fsync before the rename: a power loss must never leave the
        // final name pointing at an empty or torn file (a torn
        // result.json would mark a session complete and drop its
        // response).
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Persists the admitted request envelope for (`tenant`, `seq`).
    pub fn save_request(&self, tenant: &str, seq: u64, line: &str) -> io::Result<()> {
        let dir = self.session_dir(tenant, seq);
        fs::create_dir_all(&dir)?;
        Self::write_atomic(&dir.join("request.json"), line)
    }

    /// Persists the latest checkpoint for (`tenant`, `seq`), replacing any
    /// previous one.
    pub fn save_checkpoint(&self, tenant: &str, seq: u64, json: &str) -> io::Result<()> {
        Self::write_atomic(&self.session_dir(tenant, seq).join("checkpoint.json"), json)
    }

    /// Persists the emitted response for (`tenant`, `seq`), marking the
    /// session complete.
    pub fn save_result(&self, tenant: &str, seq: u64, line: &str) -> io::Result<()> {
        Self::write_atomic(&self.session_dir(tenant, seq).join("result.json"), line)
    }

    /// The persisted checkpoint of (`tenant`, `seq`), if any.
    pub fn load_checkpoint(&self, tenant: &str, seq: u64) -> Option<String> {
        fs::read_to_string(self.session_dir(tenant, seq).join("checkpoint.json")).ok()
    }

    /// Persists a tenant's ingest-session snapshot as
    /// `tenants/<tenant>/ingest.json`. The file name is non-numeric, so
    /// [`pending`](Self::pending) and [`max_seq`](Self::max_seq) never
    /// mistake it for a design-session directory.
    pub fn save_ingest(&self, tenant: &str, json: &str) -> io::Result<()> {
        let dir = self.root.join("tenants").join(tenant);
        fs::create_dir_all(&dir)?;
        Self::write_atomic(&dir.join("ingest.json"), json)
    }

    /// The persisted ingest snapshot of `tenant`, if any.
    pub fn load_ingest(&self, tenant: &str) -> Option<String> {
        fs::read_to_string(self.root.join("tenants").join(tenant).join("ingest.json")).ok()
    }

    /// Removes a tenant's ingest snapshot (the session closed cleanly).
    pub fn remove_ingest(&self, tenant: &str) -> io::Result<()> {
        match fs::remove_file(self.root.join("tenants").join(tenant).join("ingest.json")) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// The flight-dump file name for (`tenant`, `seq`). Dumps live at
    /// the state-dir root — they are operator-facing post-mortems, not
    /// session state, so `pending()` never confuses one for a session.
    fn flight_path(&self, tenant: &str, seq: u64) -> PathBuf {
        self.root.join(format!("flight-{tenant}-{seq}.jsonl"))
    }

    /// Persists a flight-recorder dump for (`tenant`, `seq`) as
    /// `flight-<tenant>-<seq>.jsonl` in the state-dir root.
    pub fn save_flight(&self, tenant: &str, seq: u64, jsonl: &str) -> io::Result<()> {
        Self::write_atomic(&self.flight_path(tenant, seq), jsonl)
    }

    /// The persisted flight dump of (`tenant`, `seq`), if any.
    pub fn load_flight(&self, tenant: &str, seq: u64) -> Option<String> {
        fs::read_to_string(self.flight_path(tenant, seq)).ok()
    }

    /// All pending sessions (request persisted, no result), in admission
    /// order. Unreadable entries (e.g. a directory that is not a number)
    /// are skipped rather than failing the whole recovery.
    pub fn pending(&self) -> io::Result<Vec<PendingSession>> {
        let mut out = Vec::new();
        let tenants = self.root.join("tenants");
        for tenant_entry in fs::read_dir(&tenants)? {
            let tenant_entry = tenant_entry?;
            let Ok(tenant) = tenant_entry.file_name().into_string() else {
                continue;
            };
            if !tenant_entry.file_type()?.is_dir() {
                continue;
            }
            for sess_entry in fs::read_dir(tenant_entry.path())? {
                let sess_entry = sess_entry?;
                let Some(seq) = sess_entry
                    .file_name()
                    .to_str()
                    .and_then(|s| s.parse::<u64>().ok())
                else {
                    continue;
                };
                let dir = sess_entry.path();
                // Complete only if the result actually parses: an empty
                // or torn result.json (crash during an un-fsynced write)
                // must re-run the session, not silently drop its
                // response.
                if let Ok(result) = fs::read_to_string(dir.join("result.json")) {
                    if serde_json::from_str::<serde::Value>(&result).is_ok() {
                        continue;
                    }
                }
                let Ok(request_line) = fs::read_to_string(dir.join("request.json")) else {
                    continue;
                };
                out.push(PendingSession {
                    seq,
                    tenant: tenant.clone(),
                    request_line,
                    checkpoint_json: fs::read_to_string(dir.join("checkpoint.json")).ok(),
                });
            }
        }
        out.sort_by_key(|p| p.seq);
        Ok(out)
    }

    /// Records `seq` as assigned. Frames that leave no session directory
    /// behind (errors, rejections, status/metrics/drain/shutdown) still
    /// consume sequence numbers; without this high-water mark a restarted
    /// daemon would reuse them, and clients correlating on `seq` would
    /// see duplicates across restarts.
    pub fn record_seq(&self, seq: u64) -> io::Result<()> {
        Self::write_atomic(&self.root.join("seq"), &seq.to_string())
    }

    /// The persisted high-water mark from [`record_seq`](Self::record_seq)
    /// (0 when absent or unreadable).
    fn recorded_seq(&self) -> u64 {
        fs::read_to_string(self.root.join("seq"))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// The highest sequence number ever assigned — the max over persisted
    /// sessions (pending or complete) and the recorded high-water mark —
    /// so a restarted daemon numbers new frames above it.
    pub fn max_seq(&self) -> io::Result<u64> {
        let mut max = self.recorded_seq();
        for tenant_entry in fs::read_dir(self.root.join("tenants"))? {
            let tenant_entry = tenant_entry?;
            if !tenant_entry.file_type()?.is_dir() {
                continue;
            }
            for sess_entry in fs::read_dir(tenant_entry.path())? {
                if let Some(seq) = sess_entry?
                    .file_name()
                    .to_str()
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    max = max.max(seq);
                }
            }
        }
        Ok(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "cliffguard-serve-store-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("store opens")
    }

    #[test]
    fn pending_tracks_result_files_in_seq_order() {
        let store = tmp_store("pending");
        store.save_request("b", 2, "req-2").unwrap();
        store.save_request("a", 1, "req-1").unwrap();
        store.save_request("a", 3, "req-3").unwrap();
        store.save_checkpoint("a", 3, "ckpt-3").unwrap();
        store
            .save_result("b", 2, r#"{"seq":2,"op":"design"}"#)
            .unwrap();

        let pending = store.pending().unwrap();
        assert_eq!(
            pending
                .iter()
                .map(|p| (p.seq, p.tenant.as_str()))
                .collect::<Vec<_>>(),
            vec![(1, "a"), (3, "a")],
            "completed seq 2 must not be pending; order is by seq"
        );
        assert_eq!(pending[0].checkpoint_json, None);
        assert_eq!(pending[1].checkpoint_json.as_deref(), Some("ckpt-3"));
        assert_eq!(store.max_seq().unwrap(), 3);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn torn_result_leaves_the_session_pending() {
        let store = tmp_store("torn");
        store.save_request("t", 1, "req-1").unwrap();
        store.save_result("t", 1, r#"{"seq":1}"#).unwrap();
        assert!(
            store.pending().unwrap().is_empty(),
            "valid result completes"
        );
        // Simulate a power-loss-torn result: exists but is not JSON.
        fs::write(store.session_dir("t", 1).join("result.json"), "{\"se").unwrap();
        let pending = store.pending().unwrap();
        assert_eq!(
            pending.len(),
            1,
            "torn result must not complete the session"
        );
        assert_eq!(pending[0].request_line, "req-1");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn recorded_seq_raises_max_seq_without_session_dirs() {
        let store = tmp_store("seq");
        assert_eq!(store.max_seq().unwrap(), 0);
        store.save_request("t", 2, "req-2").unwrap();
        // Frames 3..=5 were errors/verbs: no session dirs, only the mark.
        store.record_seq(5).unwrap();
        assert_eq!(store.max_seq().unwrap(), 5, "high-water mark counts");
        store.save_request("t", 7, "req-7").unwrap();
        assert_eq!(store.max_seq().unwrap(), 7, "session dirs still count");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn flight_dumps_round_trip_outside_the_session_tree() {
        let store = tmp_store("flight");
        assert_eq!(store.load_flight("t", 3), None);
        store.save_flight("t", 3, "{\"t\":1}\n{\"t\":2}\n").unwrap();
        assert_eq!(
            store.load_flight("t", 3).as_deref(),
            Some("{\"t\":1}\n{\"t\":2}\n")
        );
        assert!(store.root().join("flight-t-3.jsonl").is_file());
        // A dump never makes a session look pending.
        assert!(store.pending().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn ingest_snapshots_round_trip_and_never_look_pending() {
        let store = tmp_store("ingest");
        assert_eq!(store.load_ingest("t"), None);
        store.save_ingest("t", r#"{"windows":3}"#).unwrap();
        assert_eq!(store.load_ingest("t").as_deref(), Some(r#"{"windows":3}"#));
        // The snapshot must not register as a pending design session, nor
        // perturb the seq high-water mark.
        assert!(store.pending().unwrap().is_empty());
        assert_eq!(store.max_seq().unwrap(), 0);
        store.remove_ingest("t").unwrap();
        assert_eq!(store.load_ingest("t"), None);
        store.remove_ingest("t").unwrap(); // idempotent
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn checkpoints_overwrite_atomically() {
        let store = tmp_store("atomic");
        store.save_request("t", 1, "req").unwrap();
        store.save_checkpoint("t", 1, "v1").unwrap();
        store.save_checkpoint("t", 1, "v2").unwrap();
        assert_eq!(store.load_checkpoint("t", 1).as_deref(), Some("v2"));
        // No stray .tmp files survive a completed write.
        let dir = store.session_dir("t", 1);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(store.root());
    }
}
