//! Property tests over the serve protocol layer.
//!
//! Three guarantees, each exercised with generated inputs:
//!
//! 1. every well-formed request round-trips through its wire line
//!    bit-exactly (floats travel as IEEE-754 bit patterns);
//! 2. the parser is total — arbitrary garbage (and near-miss JSON) is
//!    rejected with an error, never a panic;
//! 3. the daemon's admission control is deterministic: the same tape
//!    yields byte-identical output regardless of worker count.

use cliffguard_serve::harness::{design_line, ServeHarness};
use cliffguard_serve::protocol::{
    parse_request, valid_tenant, BudgetSpec, DesignRequest, GammaSpec, Request,
};
use cliffguard_serve::testdata;
use proptest::prelude::*;
use serde::Value;
use std::sync::OnceLock;

/// One generated (catalog, log) pair shared across cases — generating it
/// per case would dominate the test's runtime.
fn shared_inputs() -> &'static (Value, String) {
    static INPUTS: OnceLock<(Value, String)> = OnceLock::new();
    INPUTS.get_or_init(|| testdata::catalog_and_log(5))
}

fn arb_request() -> impl Strategy<Value = DesignRequest> {
    (
        "[a-zA-Z0-9_][a-zA-Z0-9_.-]{0,20}",
        "([0-9]{1,6}\tSELECT a FROM t;\n){0,4}",
        (0.0..2.0f64, 0u64..3),
        (1u64..1_000_000_000_000, 0u64..3),
        (1u64..400, 0u64..u64::MAX),
    )
        .prop_map(
            |(tenant, log, (gamma, gamma_mode), (budget, budget_mode), (window_days, seed))| {
                let mut req = DesignRequest::new(
                    tenant,
                    Value::Map(vec![("tables".into(), Value::Seq(vec![]))]),
                    log,
                );
                req.gamma = match gamma_mode {
                    0 => GammaSpec::Auto,
                    // Exercise awkward bit patterns, not just round floats.
                    1 => GammaSpec::Fixed(gamma / 3.0),
                    _ => GammaSpec::Fixed(gamma),
                };
                req.budget = match budget_mode {
                    0 => BudgetSpec::Auto,
                    _ => BudgetSpec::Bytes(budget),
                };
                req.window_days = window_days;
                req.seed = seed;
                req.max_retries = (seed % 3 == 0).then_some((seed % 7) as u32);
                req.designer_deadline_ms = (seed % 5 == 0).then_some(seed % 10_000);
                req.deadline_ms = (seed % 4 == 0).then_some(seed % 100_000);
                req.faults = (seed % 6 == 0).then(|| format!("seed={seed},rate=0.2"));
                req
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip_bit_exactly(req in arb_request()) {
        let line = design_line(&req);
        prop_assert!(!line.contains('\n'), "one frame per line: {}", line);
        let back = parse_request(&line);
        prop_assert_eq!(back, Ok(Request::Design(Box::new(req))));
    }

    #[test]
    fn parser_never_panics_on_garbage(frame in "[ -~\t]{0,120}") {
        // Any outcome is fine; panicking or hanging is not.
        let _ = parse_request(&frame);
    }

    #[test]
    fn parser_never_panics_on_near_miss_json(
        op in "[a-z]{0,10}",
        tenant in "[ -~]{0,24}",
        extra in "[a-z_]{1,8}",
        n in 0u64..1_000_000,
    ) {
        let frame = format!(
            r#"{{"op":"{op}","tenant":{tenant:?},"{extra}":{n},"catalog":{{}},"log":7}}"#
        );
        let _ = parse_request(&frame);
        // Tenant validation agrees with the parser: a design frame with a
        // valid shape is accepted iff the tenant id is valid.
        let shaped = format!(
            r#"{{"op":"design","tenant":{tenant:?},"catalog":{{}},"log":"x"}}"#
        );
        prop_assert_eq!(parse_request(&shaped).is_ok(), valid_tenant(&tenant));
    }

    #[test]
    fn verb_frames_with_noise_fields_still_parse(
        verb in 0usize..4,
        key in "[a-z]{1,8}",
        val in 0u64..100,
    ) {
        let op = ["status", "metrics", "drain", "shutdown"][verb];
        let frame = format!(r#"{{"op":"{op}","{key}":{val}}}"#);
        // Unknown fields are ignored, as protocol evolution requires.
        prop_assert!(parse_request(&frame).is_ok(), "{}", frame);
    }
}

proptest! {
    // Each case runs real daemon sessions; keep the count small. Γ = 0
    // degenerates to one nominal designer call per request, so a case is
    // milliseconds, not seconds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn admission_is_deterministic_across_worker_counts(
        n_requests in 1usize..6,
        max_queue in 1usize..4,
        barrier_at in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let (catalog, log) = shared_inputs().clone();
        let mut tape: Vec<String> = Vec::new();
        for i in 0..n_requests {
            let mut req = DesignRequest::new(
                format!("tenant-{}", (seed + i as u64) % 3),
                catalog.clone(),
                log.clone(),
            );
            req.gamma = GammaSpec::Fixed(0.0);
            req.seed = seed + i as u64;
            tape.push(design_line(&req));
            if i == barrier_at {
                tape.push(r#"{"op":"drain"}"#.into());
            }
        }
        tape.push(r#"{"op":"status"}"#.into());

        let mut one = ServeHarness::new().with_max_concurrent(1);
        one.config.max_queue = max_queue;
        let mut eight = ServeHarness::new().with_max_concurrent(8);
        eight.config.max_queue = max_queue;
        let out1 = one.run_tape(&tape);
        let out8 = eight.run_tape(&tape);
        // The status response legitimately echoes the daemon's
        // configuration (worker count included); everything else must be
        // independent of it.
        let sans_status = |out: &str| -> Vec<String> {
            out.lines()
                .filter(|l| !l.contains(r#""op":"status""#))
                .map(str::to_string)
                .collect()
        };
        prop_assert_eq!(
            sans_status(&out1),
            sans_status(&out8),
            "worker count changed the output"
        );
        prop_assert_eq!(&out1, &one.run_tape(&tape), "rerun changed the output");
        // Every design frame terminated in exactly one response.
        let responses = out1.lines().filter(|l| l.contains(r#""op":"design""#)).count();
        prop_assert_eq!(responses, n_requests);
    }
}
