#[test]
#[ignore = "diagnostic"]
fn probe5() {
    use cliffguard_core::gamma::*;
    use cliffguard_core::*;
    use cliffguard_designer::*;
    use cliffguard_distance::*;
    use cliffguard_sim::*;
    use cliffguard_storage::*;
    use cliffguard_workload::generator::*;
    use std::sync::Arc;

    let mut config = WorkloadProfile::R1.config(42).scaled(1.0);
    config.n_windows = 8;
    let mut generator = DriftingGenerator::new(config.clone());
    let shape = generator.shape().clone();
    let windows = generator.generate().windows_days(config.window_days);
    let catalog = CatalogGenerator { fact_rows: 40_000_000, ..CatalogGenerator::default() }.generate(&shape);
    let engine = ColumnarEngine::new(catalog);
    let data: u64 = engine.catalog().tables().map(|t| engine.catalog().table(t).rows * engine.catalog().table(t).row_width()).sum();
    let budget = (data as f64 * 0.3) as u64;
    println!("data {} MB budget {} MB", data >> 20, budget >> 20);
    let metric = DeltaEuclidean::new(shape.column_count());
    let nominal = GreedyDesigner::new(&engine, ColumnarCandidates, "DBD");
    let deltas = consecutive_deltas(&metric, &windows);

    let mut pool: Vec<Arc<cliffguard_workload::Query>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for i in 0..windows.len() - 1 {
        for q in windows[i].queries() {
            if seen.insert(q.signature()) { pool.push(Arc::clone(q)); }
        }
        if i < 2 { continue; }
        if i > 4 { break; }
        let gamma = 1.5 * deltas[..i].iter().cloned().fold(0.0, f64::max);
        let mut cfg = CliffGuardConfig::new(gamma);
        cfg.seed = 42 ^ i as u64;
        let cg = CliffGuard::new(&engine, &nominal, metric, cfg);
        let (d, trace) = cg.design(&windows[i], budget, &pool);
        let dn = nominal.design(&windows[i], budget);
        let test = &windows[i + 1];
        println!("win {i}: distinct={} pool={} gamma={gamma:.3} samples={} calls={} worst={:?}",
            windows[i].len(), pool.len(), trace.samples, trace.designer_calls,
            trace.worst_case_per_iter.iter().map(|x| x.round()).collect::<Vec<_>>());
        println!("   price cg={}MB nom={}MB structs cg={} nom={} | next avg cg={:.0} nom={:.0}",
            d.price_bytes(engine.catalog()) >> 20, dn.price_bytes(engine.catalog()) >> 20,
            d.len(), dn.len(),
            engine.workload_cost(test, &d).avg_ms, engine.workload_cost(test, &dn).avg_ms);
    }
}
