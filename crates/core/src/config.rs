//! CliffGuard configuration.

/// A rejected [`CliffGuardConfig`] parameter.
///
/// Construction sites (`CliffGuard::new`, the CLI, the bench harness)
/// surface this instead of panicking, so a bad flag combination is an
/// error message, not an abort.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `gamma` was negative.
    NegativeGamma(f64),
    /// `lambda_success` was not > 1.
    BadLambdaSuccess(f64),
    /// `lambda_failure` was not in (0, 1).
    BadLambdaFailure(f64),
    /// `worst_fraction` was not in (0, 1].
    BadWorstFraction(f64),
    /// `alpha0` was not positive.
    BadAlpha0(f64),
    /// `alpha_range` was inverted (min > max).
    BadAlphaRange(f64, f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::NegativeGamma(g) => {
                write!(f, "gamma must be non-negative, got {g}")
            }
            ConfigError::BadLambdaSuccess(l) => {
                write!(f, "lambda_success must exceed 1, got {l}")
            }
            ConfigError::BadLambdaFailure(l) => {
                write!(f, "lambda_failure must be in (0,1), got {l}")
            }
            ConfigError::BadWorstFraction(w) => {
                write!(f, "worst_fraction must be in (0,1], got {w}")
            }
            ConfigError::BadAlpha0(a) => write!(f, "alpha0 must be positive, got {a}"),
            ConfigError::BadAlphaRange(lo, hi) => {
                write!(f, "alpha_range is inverted: ({lo}, {hi})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Tuning knobs of [`crate::CliffGuard`] (Algorithm 2).
///
/// Defaults follow the paper's Section 6.1: "unless otherwise specified, we
/// used n=20 samples in all algorithms involving sampling, and 5
/// iterations, λ_success = 5, and λ_failure = 0.5 in CliffGuard."
#[derive(Debug, Clone)]
pub struct CliffGuardConfig {
    /// The robustness knob Γ: the radius of the uncertainty region around
    /// the target workload, in units of the workload distance metric.
    pub gamma: f64,
    /// Number of perturbed workloads sampled in the Γ-neighborhood (`n`).
    pub n_samples: usize,
    /// Maximum robust-move iterations.
    pub max_iters: usize,
    /// Initial scaling factor α for the worst-neighbor mixture weights.
    pub alpha0: f64,
    /// Step-size growth on a successful move (`λ_success > 1`).
    pub lambda_success: f64,
    /// Step-size shrink on a failed move (`0 < λ_failure < 1`).
    pub lambda_failure: f64,
    /// Fraction of sampled neighbors treated as "worst" (the paper loosens
    /// the ArgMax to "top-K or top 20%" to mitigate finite-sample bias).
    pub worst_fraction: f64,
    /// Stop after this many consecutive non-improving iterations.
    pub patience: usize,
    /// α is clamped to this range to keep the mixture weights finite (the
    /// paper leaves the numeric range of α unspecified).
    pub alpha_range: (f64, f64),
    /// Seed for the neighborhood sampler.
    pub seed: u64,
}

impl CliffGuardConfig {
    /// The paper's defaults for a given Γ.
    pub fn new(gamma: f64) -> Self {
        Self {
            gamma,
            n_samples: 20,
            max_iters: 5,
            alpha0: 1.0,
            lambda_success: 5.0,
            lambda_failure: 0.5,
            worst_fraction: 0.3,
            patience: 3,
            alpha_range: (1.0 / 64.0, 4.0),
            seed: 0,
        }
    }

    /// Validates invariants, reporting the first violated one.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gamma < 0.0 {
            return Err(ConfigError::NegativeGamma(self.gamma));
        }
        if self.lambda_success <= 1.0 {
            return Err(ConfigError::BadLambdaSuccess(self.lambda_success));
        }
        if self.lambda_failure <= 0.0 || self.lambda_failure >= 1.0 {
            return Err(ConfigError::BadLambdaFailure(self.lambda_failure));
        }
        if self.worst_fraction <= 0.0 || self.worst_fraction > 1.0 {
            return Err(ConfigError::BadWorstFraction(self.worst_fraction));
        }
        if self.alpha0 <= 0.0 {
            return Err(ConfigError::BadAlpha0(self.alpha0));
        }
        if self.alpha_range.0 > self.alpha_range.1 {
            return Err(ConfigError::BadAlphaRange(
                self.alpha_range.0,
                self.alpha_range.1,
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CliffGuardConfig::new(0.002);
        assert_eq!(c.n_samples, 20);
        assert_eq!(c.max_iters, 5);
        assert_eq!(c.lambda_success, 5.0);
        assert_eq!(c.lambda_failure, 0.5);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn bad_lambda_rejected() {
        let mut c = CliffGuardConfig::new(0.1);
        c.lambda_failure = 1.5;
        assert_eq!(c.validate(), Err(ConfigError::BadLambdaFailure(1.5)));
    }

    #[test]
    fn negative_gamma_rejected() {
        assert_eq!(
            CliffGuardConfig::new(-0.1).validate(),
            Err(ConfigError::NegativeGamma(-0.1))
        );
    }

    #[test]
    fn errors_render_the_offending_value() {
        let e = CliffGuardConfig::new(-0.25).validate().unwrap_err();
        assert!(e.to_string().contains("-0.25"));
        let mut c = CliffGuardConfig::new(0.1);
        c.alpha_range = (2.0, 1.0);
        assert!(c.validate().unwrap_err().to_string().contains("inverted"));
    }
}
