//! Algorithm 2: the CliffGuard robust designer.

use crate::config::{CliffGuardConfig, ConfigError};
use crate::session::{DesignSession, SessionOptions};
use cliffguard_designer::{NominalDesigner, Reliable};
use cliffguard_distance::WorkloadDistance;
use cliffguard_sim::{Engine, PlanningEngine};
use cliffguard_workload::{Query, Workload};
use std::sync::Arc;

/// Per-iteration trace of a CliffGuard run (for the Figure 13 experiment
/// and for debugging), plus the session's resilience audit counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CliffGuardTrace {
    /// Worst-case (over the sampled neighborhood) average latency after
    /// each iteration, starting with the nominal design's.
    pub worst_case_per_iter: Vec<f64>,
    /// Number of *logical* designer invocations (1 nominal + 1 per
    /// iteration); retries of a flaky designer do not inflate this.
    pub designer_calls: usize,
    /// Number of neighborhood samples actually obtained.
    pub samples: usize,
    /// Extra designer attempts spent on retries.
    pub retries: usize,
    /// Fault events observed (injected faults, timeouts, and validation
    /// gate rejections).
    pub faults: usize,
    /// Rendered [`DegradedReason`](cliffguard_resilience::DegradedReason)
    /// when the session finished on a fallback path; `None` for a clean
    /// run.
    pub degraded: Option<String>,
    /// Whether this trace continues a checkpointed session.
    pub resumed: bool,
}

/// The CliffGuard meta-designer: wraps a black-box nominal designer `D` and
/// a workload distance `δ`, and produces designs robust against workload
/// changes of up to Γ (the paper's Algorithm 2).
pub struct CliffGuard<'a, E: Engine, D, M> {
    engine: &'a E,
    designer: &'a D,
    metric: M,
    config: CliffGuardConfig,
}

impl<'a, E, D, M> CliffGuard<'a, E, D, M>
where
    E: PlanningEngine,
    D: NominalDesigner<E>,
    M: WorkloadDistance + Copy,
{
    /// Creates a CliffGuard instance.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`try_new`](Self::try_new)
    /// to handle that as a value.
    pub fn new(engine: &'a E, designer: &'a D, metric: M, config: CliffGuardConfig) -> Self {
        match Self::try_new(engine, designer, metric, config) {
            Ok(cg) => cg,
            Err(e) => panic!("invalid CliffGuardConfig: {e}"),
        }
    }

    /// Creates a CliffGuard instance, rejecting invalid configurations.
    pub fn try_new(
        engine: &'a E,
        designer: &'a D,
        metric: M,
        config: CliffGuardConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self {
            engine,
            designer,
            metric,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CliffGuardConfig {
        &self.config
    }

    /// Finds a robust design for `w0` within `budget_bytes`.
    ///
    /// `pool` is the candidate-query universe the Γ-neighborhood sampler
    /// may draw perturbations from (e.g. the queries of all *past*
    /// windows). Returns the design and a trace.
    ///
    /// This is the trusting entry point: the descent runs as a
    /// [`DesignSession`] in [`SessionOptions::legacy`] mode — the
    /// designer is assumed infallible, nothing retries, no deadline
    /// applies. Flaky designers belong behind a [`DesignSession`]
    /// constructed directly.
    pub fn design(
        &self,
        w0: &Workload,
        budget_bytes: u64,
        pool: &[Arc<Query>],
    ) -> (E::Design, CliffGuardTrace) {
        let session = DesignSession::new(
            self.engine,
            Reliable(self.designer),
            self.metric,
            self.config.clone(),
            SessionOptions::legacy(),
        )
        .unwrap_or_else(|e| {
            // `new`/`try_new` already validated this exact config.
            panic!("validated config re-validated as invalid: {e}")
        });
        session.run(w0, budget_bytes, pool).into_design()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_designer::{ColumnarCandidates, GreedyDesigner};
    use cliffguard_distance::DeltaEuclidean;
    use cliffguard_sim::{ColumnarEngine, PhysicalDesign};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..12)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 8_000_000,
        }])
    }

    fn query(sel: &[u32], filt: u32) -> cliffguard_workload::Query {
        QueryBuilder::new(TableId(0))
            .select(sel)
            .filter(filt, PredOp::Eq, 0.001)
            .build()
    }

    #[test]
    fn gamma_zero_equals_nominal() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.0));
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 10.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> =
            (4..10).map(|i| Arc::new(query(&[i as u32], 3))).collect();
        let (robust, trace) = cg.design(&w0, 10_000_000_000, &pool);
        let nominal_design = nominal.design(&w0, 10_000_000_000);
        assert_eq!(trace.designer_calls, 1);
        assert_eq!(
            robust.price_bytes(e.catalog()),
            nominal_design.price_bytes(e.catalog())
        );
    }

    #[test]
    fn robust_design_covers_neighborhood_better() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        // W0 uses columns {1,2}; the pool (≈ likely future) uses {5,6}.
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 100.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> = vec![
            Arc::new(query(&[5, 6], 7)),
            Arc::new(query(&[5, 8], 7)),
            Arc::new(query(&[6, 9], 7)),
        ];
        let cfg = CliffGuardConfig::new(0.01);
        let cg = CliffGuard::new(&e, &nominal, metric, cfg);
        let (robust, trace) = cg.design(&w0, 10_000_000_000, &pool);
        assert!(trace.designer_calls >= 2);
        assert!(trace.samples > 0);

        // The drifted workload: what the pool foreshadowed (the sampler
        // mixes in a random subset of the pool, so test on all of it).
        let drifted = Workload::from_queries([
            (query(&[5, 6], 7), 100.0),
            (query(&[5, 8], 7), 100.0),
            (query(&[6, 9], 7), 100.0),
        ]);
        let nominal_design = nominal.design(&w0, 10_000_000_000);
        let robust_cost = e.workload_cost(&drifted, &robust).avg_ms;
        let nominal_cost = e.workload_cost(&drifted, &nominal_design).avg_ms;
        assert!(
            robust_cost < nominal_cost,
            "robust {robust_cost} should beat nominal {nominal_cost} on drifted workload"
        );
    }

    #[test]
    fn worst_case_trace_is_monotone_nonincreasing() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 50.0), (query(&[2, 4], 3), 50.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> = (5..11)
            .map(|i| Arc::new(query(&[i as u32, i as u32 + 1], 3)))
            .collect();
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.005));
        let (_, trace) = cg.design(&w0, 10_000_000_000, &pool);
        for w in trace.worst_case_per_iter.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "worst case increased: {:?}",
                trace.worst_case_per_iter
            );
        }
    }

    #[test]
    fn empty_workload_returns_empty_design() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.01));
        let (d, _) = cg.design(&Workload::new(), 1_000_000, &[]);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_pool_degrades_to_nominal() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.01));
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 10.0)]);
        let (d, trace) = cg.design(&w0, 10_000_000_000, &[]);
        assert_eq!(trace.designer_calls, 1);
        assert_eq!(trace.samples, 0);
        assert!(!d.is_empty());
    }

    #[test]
    fn budget_respected() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 10.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> =
            (4..10).map(|i| Arc::new(query(&[i as u32], 3))).collect();
        let budget = 400_000_000;
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.01));
        let (d, _) = cg.design(&w0, budget, &pool);
        assert!(d.price_bytes(e.catalog()) <= budget);
    }
}
