//! Algorithm 2: the CliffGuard robust designer.

use crate::config::CliffGuardConfig;
use crate::move_workload::move_workload;
use cliffguard_designer::NominalDesigner;
use cliffguard_distance::{NeighborhoodSampler, WorkloadDistance};
use cliffguard_sim::Engine;
use cliffguard_workload::{Query, Workload};
use std::sync::Arc;

/// Per-iteration trace of a CliffGuard run (for the Figure 13 experiment
/// and for debugging).
#[derive(Debug, Clone)]
pub struct CliffGuardTrace {
    /// Worst-case (over the sampled neighborhood) average latency after
    /// each iteration, starting with the nominal design's.
    pub worst_case_per_iter: Vec<f64>,
    /// Number of designer invocations made (1 nominal + 1 per iteration).
    pub designer_calls: usize,
    /// Number of neighborhood samples actually obtained.
    pub samples: usize,
}

/// The CliffGuard meta-designer: wraps a black-box nominal designer `D` and
/// a workload distance `δ`, and produces designs robust against workload
/// changes of up to Γ (the paper's Algorithm 2).
pub struct CliffGuard<'a, E: Engine, D, M> {
    engine: &'a E,
    designer: &'a D,
    metric: M,
    config: CliffGuardConfig,
}

impl<'a, E, D, M> CliffGuard<'a, E, D, M>
where
    E: Engine,
    D: NominalDesigner<E>,
    M: WorkloadDistance + Copy,
{
    /// Creates a CliffGuard instance.
    pub fn new(engine: &'a E, designer: &'a D, metric: M, config: CliffGuardConfig) -> Self {
        config.validate();
        Self {
            engine,
            designer,
            metric,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CliffGuardConfig {
        &self.config
    }

    /// Finds a robust design for `w0` within `budget_bytes`.
    ///
    /// `pool` is the candidate-query universe the Γ-neighborhood sampler
    /// may draw perturbations from (e.g. the queries of all *past*
    /// windows). Returns the design and a trace.
    pub fn design(
        &self,
        w0: &Workload,
        budget_bytes: u64,
        pool: &[Arc<Query>],
    ) -> (E::Design, CliffGuardTrace) {
        let cfg = &self.config;
        // Line 1: nominal design for W0.
        let mut design = self.designer.design(w0, budget_bytes);
        let mut trace = CliffGuardTrace {
            worst_case_per_iter: Vec::new(),
            designer_calls: 1,
            samples: 0,
        };
        if w0.is_empty() || cfg.gamma <= 0.0 || cfg.max_iters == 0 {
            // Γ = 0 degenerates to the nominal designer, by construction.
            return (design, trace);
        }

        // Line 2: sample perturbed workloads in the Γ-neighborhood of W0.
        let mut sampler = NeighborhoodSampler::new(self.metric, pool.to_vec(), cfg.seed);
        let mut neighborhood = sampler.sample_neighborhood(w0, cfg.gamma, cfg.n_samples);
        trace.samples = neighborhood.len();
        if neighborhood.is_empty() {
            // Thin pool: nothing to guard against; behave nominally.
            return (design, trace);
        }
        // W0 itself lies in its own Γ-neighborhood (δ = 0 ≤ Γ), so the
        // worst-case objective must cover it: a candidate that regresses
        // the original workload is not a robust improvement.
        neighborhood.push(w0.clone());

        // Worst-case objective: max over the sampled neighborhood of the
        // average query latency (workloads differ in total weight, so the
        // weighted average is the comparable `f`). Each workload is costed
        // on a worker thread; the max is folded serially in sample order,
        // so the result is bit-identical at any thread count.
        let engine = self.engine;
        let worst_case = |d: &E::Design| -> f64 {
            cliffguard_parallel::par_map_fold(
                &neighborhood,
                |w| engine.workload_cost(w, d).avg_ms,
                0.0,
                f64::max,
            )
        };
        // Robustness is a *priced* trade of nominal optimality (Figure 2):
        // each accepted move may spend some of W0's cost, but the total
        // spend is bounded. This cap is what keeps CliffGuard "no worse
        // than ExistingDesigner" even at extreme Γ (the paper's Section
        // 6.5 observation): with scarce budget slots, unbounded minimax
        // moves could cannibalize the original workload's coverage.
        const MAX_NOMINAL_REGRESSION: f64 = 1.15;
        let w0_cost = |d: &E::Design| self.engine.workload_cost(w0, d).avg_ms;
        let w0_cap = w0_cost(&design) * MAX_NOMINAL_REGRESSION;

        let mut alpha = cfg.alpha0;
        let mut current_worst = worst_case(&design);
        trace.worst_case_per_iter.push(current_worst);
        let mut stale = 0usize;
        // Worst neighbors of every *accepted* iteration so far. Feeding the
        // accumulated set (not just the current worst) into MoveWorkload
        // keeps earlier robust gains from being designed away: a fresh
        // nominal design for "W0 + this iteration's worst only" would
        // regress on the previously covered neighbors and be rejected,
        // stalling the descent.
        let mut accumulated: Vec<usize> = Vec::new();

        for _ in 0..cfg.max_iters {
            // Line 6: the worst neighbors under the current design (top
            // worst_fraction, at least one). Scoring fans out per sample;
            // indices attach afterwards in input order, and the sort is
            // stable, so the ranking is independent of the thread count.
            let design_now = &design;
            let mut scored: Vec<(usize, f64)> = cliffguard_parallel::par_map(&neighborhood, |w| {
                engine.workload_cost(w, design_now).avg_ms
            })
            .into_iter()
            .enumerate()
            .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            let keep = ((neighborhood.len() as f64 * cfg.worst_fraction).ceil() as usize)
                .clamp(1, neighborhood.len());
            let current_worst_idx: Vec<usize> = scored[..keep].iter().map(|&(i, _)| i).collect();
            let mut merged_idx = accumulated.clone();
            for &i in &current_worst_idx {
                if !merged_idx.contains(&i) {
                    merged_idx.push(i);
                }
            }
            let worst_refs: Vec<&Workload> = merged_idx.iter().map(|&i| &neighborhood[i]).collect();

            // Line 8: move the workload toward the worst neighbors.
            let design_ref = &design;
            let moved = move_workload(
                w0,
                &worst_refs,
                |q| self.engine.query_latency_ms(q, design_ref),
                alpha,
            );

            // Line 9: nominal design for the moved workload.
            let candidate = self.designer.design(&moved, budget_bytes);
            trace.designer_calls += 1;

            // Lines 10–15: accept on worst-case improvement; adapt α.
            let candidate_worst = worst_case(&candidate);
            if candidate_worst < current_worst && w0_cost(&candidate) <= w0_cap {
                design = candidate;
                current_worst = candidate_worst;
                alpha = (alpha * cfg.lambda_success).clamp(cfg.alpha_range.0, cfg.alpha_range.1);
                stale = 0;
                for i in current_worst_idx {
                    if !accumulated.contains(&i) {
                        accumulated.push(i);
                    }
                }
            } else {
                alpha = (alpha * cfg.lambda_failure).clamp(cfg.alpha_range.0, cfg.alpha_range.1);
                stale += 1;
            }
            trace.worst_case_per_iter.push(current_worst);
            if stale >= cfg.patience {
                break; // Line 17: many iterations with no improvement.
            }
        }
        (design, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliffguard_designer::{ColumnarCandidates, GreedyDesigner};
    use cliffguard_distance::DeltaEuclidean;
    use cliffguard_sim::{ColumnarEngine, PhysicalDesign};
    use cliffguard_storage::{Catalog, ColumnDef, ColumnStats, TableDef};
    use cliffguard_workload::{PredOp, QueryBuilder, TableId};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableDef {
            name: "fact".into(),
            columns: (0..12)
                .map(|i| ColumnDef {
                    name: format!("c{i}"),
                    width_bytes: 8,
                    stats: ColumnStats::uniform(10_000),
                })
                .collect(),
            rows: 8_000_000,
        }])
    }

    fn query(sel: &[u32], filt: u32) -> cliffguard_workload::Query {
        QueryBuilder::new(TableId(0))
            .select(sel)
            .filter(filt, PredOp::Eq, 0.001)
            .build()
    }

    #[test]
    fn gamma_zero_equals_nominal() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.0));
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 10.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> =
            (4..10).map(|i| Arc::new(query(&[i as u32], 3))).collect();
        let (robust, trace) = cg.design(&w0, 10_000_000_000, &pool);
        let nominal_design = nominal.design(&w0, 10_000_000_000);
        assert_eq!(trace.designer_calls, 1);
        assert_eq!(
            robust.price_bytes(e.catalog()),
            nominal_design.price_bytes(e.catalog())
        );
    }

    #[test]
    fn robust_design_covers_neighborhood_better() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        // W0 uses columns {1,2}; the pool (≈ likely future) uses {5,6}.
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 100.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> = vec![
            Arc::new(query(&[5, 6], 7)),
            Arc::new(query(&[5, 8], 7)),
            Arc::new(query(&[6, 9], 7)),
        ];
        let cfg = CliffGuardConfig::new(0.01);
        let cg = CliffGuard::new(&e, &nominal, metric, cfg);
        let (robust, trace) = cg.design(&w0, 10_000_000_000, &pool);
        assert!(trace.designer_calls >= 2);
        assert!(trace.samples > 0);

        // The drifted workload: what the pool foreshadowed (the sampler
        // mixes in a random subset of the pool, so test on all of it).
        let drifted = Workload::from_queries([
            (query(&[5, 6], 7), 100.0),
            (query(&[5, 8], 7), 100.0),
            (query(&[6, 9], 7), 100.0),
        ]);
        let nominal_design = nominal.design(&w0, 10_000_000_000);
        let robust_cost = e.workload_cost(&drifted, &robust).avg_ms;
        let nominal_cost = e.workload_cost(&drifted, &nominal_design).avg_ms;
        assert!(
            robust_cost < nominal_cost,
            "robust {robust_cost} should beat nominal {nominal_cost} on drifted workload"
        );
    }

    #[test]
    fn worst_case_trace_is_monotone_nonincreasing() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 50.0), (query(&[2, 4], 3), 50.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> = (5..11)
            .map(|i| Arc::new(query(&[i as u32, i as u32 + 1], 3)))
            .collect();
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.005));
        let (_, trace) = cg.design(&w0, 10_000_000_000, &pool);
        for w in trace.worst_case_per_iter.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "worst case increased: {:?}",
                trace.worst_case_per_iter
            );
        }
    }

    #[test]
    fn empty_workload_returns_empty_design() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.01));
        let (d, _) = cg.design(&Workload::new(), 1_000_000, &[]);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_pool_degrades_to_nominal() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.01));
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 10.0)]);
        let (d, trace) = cg.design(&w0, 10_000_000_000, &[]);
        assert_eq!(trace.designer_calls, 1);
        assert_eq!(trace.samples, 0);
        assert!(!d.is_empty());
    }

    #[test]
    fn budget_respected() {
        let e = ColumnarEngine::new(catalog());
        let nominal = GreedyDesigner::new(&e, ColumnarCandidates, "DBD");
        let metric = DeltaEuclidean::new(12);
        let w0 = Workload::from_queries([(query(&[1, 2], 3), 10.0)]);
        let pool: Vec<Arc<cliffguard_workload::Query>> =
            (4..10).map(|i| Arc::new(query(&[i as u32], 3))).collect();
        let budget = 400_000_000;
        let cg = CliffGuard::new(&e, &nominal, metric, CliffGuardConfig::new(0.01));
        let (d, _) = cg.design(&w0, budget, &pool);
        assert!(d.price_bytes(e.catalog()) <= budget);
    }
}
